//! Property-based tests (proptest) for the toolkit's core invariants.
//!
//! The headline property is the paper's §5.2 theorem: **any** topological
//! order of the Coloring Precedence Graph preserves the colorability
//! established by simplification — selection in any CPG order finds a
//! color for every node when simplification needed no optimistic spills.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pdgc::core::cpg::Cpg;
use pdgc::core::ifg::InterferenceGraph;
use pdgc::core::node::NodeId;
use pdgc::core::simplify::{simplify, SimplifyMode};
use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;

/// A random interference graph over `n` live-range nodes (no precolored)
/// with the given edge probability.
fn random_ifg(n: usize, edge_prob: f64, seed: u64) -> InterferenceGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = InterferenceGraph::new(n, 0);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(edge_prob) {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
    }
    g
}

/// Colors the CPG in a random topological order with a first-fit rule;
/// returns false if any node finds no free color.
fn color_in_random_topo_order(
    ifg: &InterferenceGraph,
    cpg: &Cpg,
    k: usize,
    seed: u64,
) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = ifg.num_nodes();
    let mut pred_remaining: Vec<usize> = (0..n)
        .map(|i| cpg.preds(NodeId::new(i)).len())
        .collect();
    let mut queue: Vec<NodeId> = cpg.initial_queue();
    let mut color: Vec<Option<usize>> = vec![None; n];
    let mut done = 0;
    let total = cpg.nodes().count();
    while !queue.is_empty() {
        let pick = rng.gen_range(0..queue.len());
        let node = queue.swap_remove(pick);
        let mut used = vec![false; k];
        for x in ifg.neighbors(node) {
            if let Some(c) = color[x.index()] {
                used[c] = true;
            }
        }
        match (0..k).find(|&c| !used[c]) {
            Some(c) => color[node.index()] = Some(c),
            None => return false,
        }
        done += 1;
        for &s in cpg.succs(node) {
            pred_remaining[s.index()] -= 1;
            if pred_remaining[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    done == total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §5.2's guarantee: when simplification succeeds without optimistic
    /// removals, *every* topological order of the CPG colors successfully.
    #[test]
    fn any_cpg_topological_order_preserves_colorability(
        n in 2usize..40,
        edge_prob in 0.05f64..0.6,
        k in 2usize..8,
        graph_seed in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        let mut g = random_ifg(n, edge_prob, graph_seed);
        let costs = vec![1u64; n];
        let sr = simplify(&mut g, k, &costs, SimplifyMode::Optimistic);
        g.restore_all();
        let cpg = Cpg::build(&g, &sr.stack, &sr.optimistic, k);
        prop_assert!(cpg.is_acyclic());
        // Every stack node participates in the CPG.
        for &s in &sr.stack {
            prop_assert!(cpg.contains(s));
        }
        if sr.optimistic.is_empty() {
            // Three independent random orders must all succeed.
            for i in 0..3 {
                prop_assert!(
                    color_in_random_topo_order(&g, &cpg, k, order_seed.wrapping_add(i)),
                    "a topological order failed to color (n={n}, k={k})"
                );
            }
        }
    }

    /// The interference graph is symmetric and irreflexive under arbitrary
    /// edge insertions and merges.
    #[test]
    fn ifg_symmetric_irreflexive_after_merges(
        n in 2usize..30,
        edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80),
        merges in proptest::collection::vec((0usize..30, 0usize..30), 0..8),
    ) {
        let mut g = InterferenceGraph::new(n, 0);
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        for (a, b) in merges {
            let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
            if g.rep(a) != g.rep(b) && !g.interferes(a, b) {
                g.merge(a, b);
            }
        }
        for i in 0..n {
            let a = NodeId::new(i);
            // interferes(a, a) resolves through reps and must be false.
            prop_assert!(!g.interferes(a, a));
            for j in 0..n {
                let b = NodeId::new(j);
                prop_assert_eq!(g.interferes(a, b), g.interferes(b, a));
            }
            if !g.is_merged(a) && !g.is_removed(a) {
                // Degree equals the number of distinct live neighbors.
                prop_assert_eq!(g.degree(a), g.live_neighbors(a).len());
            }
        }
    }

    /// Degree accounting under random interleavings of `add_edge`,
    /// `merge`, `remove`, and `restore_all`:
    ///
    /// * every **live** node's degree equals its live-neighbor count;
    /// * every **removed** node's degree stays *frozen* at its
    ///   removal-time value until `restore_all` recomputes it.
    ///
    /// The frozen half is the sharp edge: the pre-fix `merge()` guarded
    /// its degree decrements on the merged node `b` (asserted unremoved
    /// four lines up — a dead check) instead of on the affected neighbor,
    /// so a shared neighbor that was already removed had its meaningless-
    /// but-frozen degree mutated. This test fails on that version.
    #[test]
    fn ifg_degree_accounting_under_random_interleavings(
        n in 2usize..20,
        ops in proptest::collection::vec((0usize..6, 0usize..20, 0usize..20), 1..60),
    ) {
        let mut g = InterferenceGraph::new(n, 0);
        // frozen[i] = the degree node i carried when it was removed.
        let mut frozen: Vec<Option<usize>> = vec![None; n];
        for (kind, x, y) in ops {
            let (a, b) = (NodeId::new(x % n), NodeId::new(y % n));
            match kind {
                // add_edge weighted 3x so graphs grow dense enough for
                // merges to hit the shared-neighbor path.
                0 | 1 | 2 => {
                    g.add_edge(a, b);
                }
                3 => {
                    let (ra, rb) = (g.rep(a), g.rep(b));
                    if ra != rb
                        && !g.interferes(ra, rb)
                        && !g.is_removed(ra)
                        && !g.is_removed(rb)
                    {
                        g.merge(ra, rb);
                    }
                }
                4 => {
                    let r = g.rep(a);
                    if !g.is_removed(r) {
                        g.remove(r);
                        frozen[r.index()] = Some(g.degree(r));
                    }
                }
                _ => {
                    g.restore_all();
                    frozen.iter_mut().for_each(|f| *f = None);
                }
            }
            for i in 0..n {
                let node = NodeId::new(i);
                if g.is_merged(node) {
                    continue;
                }
                if g.is_removed(node) {
                    prop_assert_eq!(
                        Some(g.degree(node)),
                        frozen[i],
                        "removed node {}'s frozen degree mutated (op {:?})",
                        i,
                        (kind, x, y)
                    );
                } else {
                    prop_assert_eq!(
                        g.degree(node),
                        g.live_neighbors(node).len(),
                        "live node {}'s degree drifted (op {:?})",
                        i,
                        (kind, x, y)
                    );
                }
            }
        }
    }

    /// Allocation is semantics-preserving on randomly generated programs
    /// for every allocator (beyond the fixed-seed differential suite).
    #[test]
    fn random_programs_allocate_equivalently(
        seed in any::<u64>(),
        ops in 10usize..60,
        call_density in 0.0f64..0.5,
        pressure in 4usize..14,
        loop_depth in 0u32..3,
    ) {
        let prof = WorkloadProfile {
            name: "prop".into(),
            seed,
            num_funcs: 1,
            ops_per_func: ops,
            loop_depth,
            call_density,
            float_ratio: 0.3,
            paired_density: 0.3,
            byte_density: 0.15,
            pressure,
            diamond_density: 0.3,
            pair_stride: 8,
            pair_align: 1,
        };
        let w = generate(&prof);
        let func = &w.funcs[0];
        prop_assume!(func.verify().is_ok());
        let args = default_args(func);
        let reference = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        let target = TargetDesc::ia64_like(PressureModel::High);
        for alloc in pdgc::all_allocators() {
            let out = alloc.allocate(func, &target).unwrap();
            let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
            prop_assert!(
                check_equivalent(&reference, &mach).is_ok(),
                "{} diverged on seed {seed}",
                alloc.name()
            );
        }
    }

    /// The textual printer and parser round-trip structurally on any
    /// generated program (φs, floats, byte loads, calls, loops included).
    #[test]
    fn printer_parser_roundtrip(seed in any::<u64>(), ops in 10usize..70) {
        let prof = WorkloadProfile {
            name: "rt".into(),
            seed,
            num_funcs: 1,
            ops_per_func: ops,
            loop_depth: 2,
            call_density: 0.25,
            float_ratio: 0.35,
            paired_density: 0.2,
            byte_density: 0.2,
            pressure: 9,
            diamond_density: 0.35,
            pair_stride: 8,
            pair_align: 1,
        };
        let w = generate(&prof);
        let func = &w.funcs[0];
        let text = func.to_string();
        let reparsed = pdgc::ir::parse_function(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        // Textual round-trip: printing the reparse reproduces the text
        // exactly. (Structural equality can differ in callee-table
        // interning order, which is not observable.)
        prop_assert_eq!(reparsed.to_string(), text);
        // And the reparse behaves identically.
        let args = default_args(func);
        let a = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        let b = run_ir(&reparsed, &args, DEFAULT_FUEL).unwrap();
        prop_assert!(check_equivalent(&a, &b).is_ok());
    }

    /// φ-lowering preserves semantics.
    #[test]
    fn phi_lowering_preserves_semantics(seed in any::<u64>(), ops in 10usize..50) {
        let prof = WorkloadProfile {
            name: "phi".into(),
            seed,
            num_funcs: 1,
            ops_per_func: ops,
            loop_depth: 1,
            call_density: 0.1,
            float_ratio: 0.2,
            paired_density: 0.1,
            byte_density: 0.0,
            pressure: 8,
            diamond_density: 0.6, // many φs
            pair_stride: 8,
            pair_align: 1,
        };
        let w = generate(&prof);
        let func = &w.funcs[0];
        let args = default_args(func);
        let before = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        let mut lowered = func.clone();
        pdgc::ir::lower_phis(&mut lowered);
        prop_assert!(lowered.verify().is_ok());
        let after = run_ir(&lowered, &args, DEFAULT_FUEL).unwrap();
        prop_assert!(check_equivalent(&before, &after).is_ok());
    }

    /// Spill-code insertion preserves semantics for arbitrary spill
    /// choices (any subset of defined, unpinned registers).
    #[test]
    fn spill_insertion_preserves_semantics(
        seed in any::<u64>(),
        spill_mask in any::<u64>(),
    ) {
        let prof = WorkloadProfile {
            name: "spill".into(),
            seed,
            num_funcs: 1,
            ops_per_func: 30,
            loop_depth: 1,
            call_density: 0.15,
            float_ratio: 0.2,
            paired_density: 0.2,
            byte_density: 0.1,
            pressure: 8,
            diamond_density: 0.2,
            pair_stride: 8,
            pair_align: 1,
        };
        let w = generate(&prof);
        let mut func = w.funcs[0].clone();
        pdgc::ir::lower_phis(&mut func);
        let args = default_args(&func);
        let before = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
        // Spill every defined vreg whose bit is set in the mask.
        let mut has_def = vec![false; func.num_vregs()];
        for b in func.block_ids() {
            for inst in &func.block(b).insts {
                if let Some(d) = inst.def() {
                    has_def[d.index()] = true;
                }
            }
        }
        let spilled: Vec<VReg> = (0..func.num_vregs())
            .filter(|&i| has_def[i] && (spill_mask >> (i % 64)) & 1 == 1)
            .map(VReg::new)
            .collect();
        let mut slot = 0;
        pdgc::core::spill::insert_spill_code(&mut func, &spilled, &mut slot);
        prop_assert!(func.verify().is_ok());
        let after = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
        prop_assert!(check_equivalent(&before, &after).is_ok());
    }
}
