//! Differential and hardening properties for the `pdgc serve` cache.
//!
//! * **Hit/fresh bit-identity** — a cached response must carry exactly
//!   the machine code, fingerprint, and scorecard a fresh
//!   `allocate_scratch` run produces for the same function, on every
//!   builtin target that can allocate generated workloads, under
//!   `CheckMode::Always` so the checker countersigns both sides.
//! * **Key canonicalization** — the content-addressed cache key must be
//!   invariant under a print → parse round trip on randomly generated
//!   programs: `key(f) == key(parse(print(f)))`. A regression here
//!   silently splits the cache by builder artifacts.
//! * **Hostile input** — a request nested 100k arrays deep must come
//!   back as an `{"ok":false}` response through the full serve path, not
//!   blow the stack.
//!
//! Failing seeds persist to `serve_cache.proptest-regressions` and
//! replay before fresh cases.

use proptest::prelude::*;

use pdgc::obs::json::Json;
use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;
use pdgc_bench::serve::{cache_key, request_line, ServeConfig, ServeSession};
use pdgc_bench::{fingerprint_mach, stats_json};

fn profile(seed: u64, ops: usize, loop_depth: u32, call_density: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "serve-prop".into(),
        seed,
        num_funcs: 2,
        ops_per_func: ops,
        loop_depth,
        call_density,
        float_ratio: 0.3,
        paired_density: 0.3,
        byte_density: 0.15,
        pressure: 9,
        diamond_density: 0.3,
        pair_stride: 8,
        pair_align: 1,
    }
}

fn session() -> ServeSession {
    ServeSession::new(ServeConfig {
        // Never sample hit re-checks here: the point is that the *stored*
        // response is already proven, and sampling would skew no fields.
        sample_rate: 0,
        ..ServeConfig::default()
    })
}

/// Every builtin target that can allocate generated workloads (figure7
/// is the paper's three-register walkthrough machine and cannot).
fn serving_targets() -> Vec<TargetDesc> {
    TargetRegistry::builtin()
        .iter()
        .filter(|t| t.name != "figure7")
        .cloned()
        .collect()
}

/// A cache hit must be byte-identical to a fresh checked allocation: the
/// differential evidence that the cache never serves stale or divergent
/// code. One generated function, every serving target.
#[test]
fn cache_hit_matches_fresh_allocation_on_every_target() {
    let alloc = PreferenceAllocator::full();
    let mut scratch = PhaseScratch::new();
    for target in serving_targets() {
        let w = pdgc::workloads::generate(&profile(7, 60, 1, 0.2).for_target(&target));
        let func = &w.funcs[0];
        let mut s = session();
        let line = request_line(&func.to_string(), &target.name, "full", CheckMode::Always);
        let miss = Json::parse(&s.handle_line(&line).response).unwrap();
        let hit = Json::parse(&s.handle_line(&line).response).unwrap();
        assert_eq!(miss["ok"].as_bool(), Some(true), "{}: miss failed", target.name);
        assert_eq!(miss["cached"].as_bool(), Some(false));
        assert_eq!(hit["cached"].as_bool(), Some(true));

        // Fresh allocation outside the daemon, checker on.
        let fresh = alloc
            .allocate_scratch(
                func,
                &target,
                &mut NoopTracer,
                CheckMode::Always,
                CheckScope::Full,
                &mut scratch,
            )
            .unwrap_or_else(|e| panic!("{}: fresh allocation failed: {e}", target.name));

        for (name, response) in [("miss", &miss), ("hit", &hit)] {
            assert_eq!(
                response["mach"].as_str(),
                Some(fresh.mach.to_string().as_str()),
                "{}: served {name} machine code differs from a fresh run",
                target.name
            );
            assert_eq!(
                response["fingerprint"].as_str(),
                Some(format!("{:016x}", fingerprint_mach(&fresh.mach)).as_str()),
                "{}: served {name} fingerprint differs from a fresh run",
                target.name
            );
            // `stats` is embedded raw, so its text is exactly stats_json.
            assert_eq!(
                response["stats"].get("spill_loads"),
                Json::parse(&stats_json(&fresh.stats)).unwrap().get("spill_loads"),
                "{}: served {name} scorecard differs from a fresh run",
                target.name
            );
        }
        fresh.recycle(&mut scratch);
    }
}

/// A deep-nesting request must produce an error *response* through the
/// full serve path — the depth limit in `Json::parse` holding the line —
/// and leave the session serving normally afterwards.
#[test]
fn hostile_nesting_yields_an_error_response_not_a_crash() {
    let mut s = session();
    let hostile = format!("{{\"fn\": {}0{}}}", "[".repeat(100_000), "]".repeat(100_000));
    let out = s.handle_line(&hostile);
    let json = Json::parse(&out.response).unwrap();
    assert_eq!(json["ok"].as_bool(), Some(false));
    assert!(
        json["error"].as_str().unwrap().contains("nesting deeper"),
        "error should name the depth limit: {}",
        out.response
    );
    // The session is still healthy.
    let good = request_line(
        "fn id(v0: int) -> int {\nb0:\n    ret v0\n}\n",
        "ia64-24",
        "full",
        CheckMode::Always,
    );
    let ok = Json::parse(&s.handle_line(&good).response).unwrap();
    assert_eq!(ok["ok"].as_bool(), Some(true));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// `key(f) == key(parse(print(f)))`: the cache key must see through
    /// the textual round trip, or resubmitting printed IR would always
    /// miss against entries built from in-memory functions.
    #[test]
    fn cache_key_is_roundtrip_invariant(
        seed in any::<u64>(),
        ops in 8usize..120,
        loop_depth in 0u32..3,
        call_density in 0.0f64..0.5,
    ) {
        let w = pdgc::workloads::generate(&profile(seed, ops, loop_depth, call_density));
        for func in &w.funcs {
            let reparsed = pdgc::ir::parse_function(&func.to_string())
                .map_err(|e| TestCaseError::fail(format!("{}: reparse failed: {e}", func.name)))?;
            prop_assert_eq!(
                cache_key(func, "ia64-24", "full", CheckMode::Always),
                cache_key(&reparsed, "ia64-24", "full", CheckMode::Always),
                "cache key split by print→parse for {}", func.name
            );
            // And a second round trip is already a fixpoint.
            let twice = pdgc::ir::parse_function(&reparsed.to_string()).unwrap();
            prop_assert_eq!(
                cache_key(&reparsed, "x86-16", "chaitin", CheckMode::Off),
                cache_key(&twice, "x86-16", "chaitin", CheckMode::Off),
            );
        }
    }
}
