//! The paper's §4 problem scenarios — Figures 4, 5, and 6 — which
//! motivate integrating preference resolution into the select phase.
//! Each test builds the scenario and checks that the preference-directed
//! allocator avoids the failure mode the paper describes.

use pdgc::prelude::*;

/// **Figure 4**: live ranges B, C, D, E prefer non-volatile registers and
/// A/B are copy-related. Preference-unaware coalescing merges A and B; the
/// merged range then competes for non-volatile registers and, when those
/// run out, quality degrades. The preference-directed allocator resolves
/// volatility and coalescing *simultaneously*, so the call-crossing values
/// (its equivalent of the non-volatile preference) never end up paying
/// caller saves just because of a coalesce.
#[test]
fn figure4_coalescing_vs_nonvolatile_pressure() {
    // Toy target: 6 registers, 3 volatile (r0..r2, with r0/r1 args), 3
    // non-volatile (r3..r5).
    let target = TargetDesc::toy(6);

    // a is copy-related to b; b, c, d, e all cross calls (prefer
    // non-volatile); there are exactly 3 non-volatile registers for 4
    // preferring ranges.
    let mut f = FunctionBuilder::new("fig4", vec![RegClass::Int], Some(RegClass::Int));
    let p = f.param(0);
    let a = f.bin_imm(BinOp::Add, p, 1); // A
    let b = f.copy(a); // B = A (copy-related)
    let c = f.bin_imm(BinOp::Add, p, 2);
    let d = f.bin_imm(BinOp::Add, p, 3);
    let e = f.bin_imm(BinOp::Add, p, 4);
    // A dies before the call; B, C, D, E cross it.
    f.store(a, p, 256);
    f.call("g", vec![], None);
    let s1 = f.bin(BinOp::Add, b, c);
    let s2 = f.bin(BinOp::Add, d, e);
    let s = f.bin(BinOp::Add, s1, s2);
    f.ret(Some(s));
    let func = f.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // Four ranges cross the call but only three non-volatile registers
    // exist: exactly one range can need caller saving (2 instructions) —
    // integrated selection must not do worse.
    assert!(
        out.stats.caller_save_insts <= 2,
        "at most one crossing range may spill to a volatile register, got {} save/restores",
        out.stats.caller_save_insts
    );
    assert_eq!(out.stats.spill_instructions, 0);

    // And the result still computes the right thing.
    let reference = run_ir(&func, &[10], DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &[10], DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// **Figure 5(a)**: `v1 = [v0]; v2 = [v0+8]` is a paired-load candidate,
/// but v1 and v2 are also copied into call arguments arg0 and arg2. If
/// coalescing recklessly merges v1/arg0 and v2/arg2 (same parity on
/// IA-64!), the paired load becomes impossible. The preference-directed
/// allocator weighs both preferences and keeps the pairing.
#[test]
fn figure5a_reckless_coalescing_kills_paired_load() {
    let target = TargetDesc::ia64_like(PressureModel::High); // parity rule
    let mut f = FunctionBuilder::new("fig5a", vec![RegClass::Int], Some(RegClass::Int));
    let p = f.param(0);
    // Hot loop so the paired load dominates the cost model.
    let header = f.create_block();
    let body = f.create_block();
    let exit = f.create_block();
    let i = f.bin_imm(BinOp::Add, p, 4);
    f.jump(header);
    f.switch_to(header);
    f.branch_imm(CmpOp::Gt, i, 0, body, exit);
    f.switch_to(body);
    let v1 = f.load(p, 0);
    let v2 = f.load(p, 8);
    // arg0 and arg2 of the call: same parity registers (r0 and r2).
    let filler = f.iconst(7);
    f.call("h", vec![v1, filler, v2], None);
    f.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    f.jump(header);
    f.switch_to(exit);
    f.ret(Some(i));
    let func = f.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // The paired load must survive: v1/v2 get different-parity registers
    // even though their argument homes r0/r2 share parity.
    assert_eq!(
        out.stats.paired_loads, 1,
        "the paired load must be fused despite the same-parity argument homes"
    );

    let reference = run_ir(&func, &[1000], DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &[1000], DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// **Figure 5(b)**: `farg0 = v1; call` where v1 is also live across the
/// call. Coalescing v1 into the (volatile) argument register saves the
/// copy but costs a save/restore around the call — a net loss in a loop.
/// The integrated allocator keeps v1 in a non-volatile register and pays
/// the one copy.
#[test]
fn figure5b_coalesce_vs_call_crossing() {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let mut f = FunctionBuilder::new("fig5b", vec![RegClass::Int], Some(RegClass::Int));
    let p = f.param(0);
    let header = f.create_block();
    let body = f.create_block();
    let exit = f.create_block();
    let i = f.bin_imm(BinOp::Add, p, 3);
    let v1 = f.load(p, 0); // defined once, used as argument repeatedly
    f.jump(header);
    f.switch_to(header);
    f.branch_imm(CmpOp::Gt, i, 0, body, exit);
    f.switch_to(body);
    f.call("g", vec![v1], None); // v1 live across (used next iteration)
    f.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    f.jump(header);
    f.switch_to(exit);
    f.ret(Some(v1));
    let func = f.finish();

    let full = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // v1 must sit in a non-volatile register across the loop's calls: no
    // caller saves at all; the argument copy stays.
    assert_eq!(
        full.stats.caller_save_insts, 0,
        "v1 belongs in a non-volatile register, not coalesced into arg0"
    );
    assert!(full.stats.nonvolatiles_used >= 1);

    // Chaitin-aggressive does coalesce v1 into the argument register and
    // pays save/restore around every call — the paper's failure mode.
    use pdgc::core::baselines::ChaitinAllocator;
    let chaitin = ChaitinAllocator.allocate(&func, &target).unwrap();
    assert!(
        chaitin.stats.caller_save_insts > 0,
        "the base allocator should exhibit the Figure 5(b) pathology"
    );

    // Both remain correct; the full allocator is cheaper dynamically.
    let args = vec![64u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let m_full = run_mach(&full.mach, &target, &args, DEFAULT_FUEL).unwrap();
    let m_chaitin = run_mach(&chaitin.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &m_full).unwrap();
    check_equivalent(&reference, &m_chaitin).unwrap();
    assert!(
        m_full.cycles < m_chaitin.cycles,
        "integrated allocation must beat reckless coalescing here: {} vs {}",
        m_full.cycles,
        m_chaitin.cycles
    );
}

/// **Figure 6(a)**: `A = B; arg0 = A; call` where B prefers a
/// non-volatile register. Coalescing A with B forces AB toward a
/// non-volatile register and leaves the argument copy; coalescing A with
/// arg0 eliminates that copy and leaves the cheap A = B copy... the
/// paper's point is that the *order* of coalescing decisions depends on
/// the preferences. The integrated allocator must end with at most one
/// surviving copy and no caller saving for B.
#[test]
fn figure6a_coalesce_order_depends_on_preferences() {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let mut f = FunctionBuilder::new("fig6a", vec![RegClass::Int], Some(RegClass::Int));
    let p = f.param(0);
    let header = f.create_block();
    let body = f.create_block();
    let exit = f.create_block();
    let b_range = f.load(p, 0); // B: lives across calls (prefers non-vol)
    let i = f.bin_imm(BinOp::Add, p, 3);
    f.jump(header);
    f.switch_to(header);
    f.branch_imm(CmpOp::Gt, i, 0, body, exit);
    f.switch_to(body);
    let a = f.copy(b_range); // A = B
    f.call("g", vec![a], None); // arg0 = A; call
    f.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    f.jump(header);
    f.switch_to(exit);
    f.ret(Some(b_range));
    let func = f.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // B stays call-safe...
    assert_eq!(out.stats.caller_save_insts, 0);
    // ...and A coalesces with arg0 (the paper's preferred order): the only
    // surviving copies are the unavoidable ones — A = B in the loop body
    // and the final move of B into the return register.
    assert_eq!(
        out.stats.copies_remaining, 2,
        "A/arg0 must coalesce, leaving only A = B and the return move"
    );

    let reference = run_ir(&func, &[64], DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &[64], DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// **Figure 6(b)**: a copy chain `C0 = ret-of-call; T = C0 | T = C1;
/// C2 = T; ret = C2` where C1 prefers a non-volatile register. Coalescing
/// C1 with T would block the chain C0 = C2 = T = ret; the better order
/// coalesces {C0, C2, T, ret} and leaves C1's copy. The integrated
/// allocator should leave at most the copies the paper's best order
/// leaves (two: the T = C1 merge arm and C1's own definition).
#[test]
fn figure6b_copy_chain_through_return_register() {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let mut f = FunctionBuilder::new("fig6b", vec![RegClass::Int], Some(RegClass::Int));
    let p = f.param(0);
    let then_b = f.create_block();
    let else_b = f.create_block();
    let join = f.create_block();
    // C1 crosses a call (prefers non-volatile).
    let c1 = f.load(p, 0);
    f.call("warm", vec![], None);
    let c0 = f.call("g", vec![], Some(RegClass::Int)).unwrap(); // C0 = ret
    f.branch_imm(CmpOp::Gt, c0, 0, then_b, else_b);
    f.switch_to(then_b);
    let t_then = f.copy(c0); // T = C0
    f.jump(join);
    f.switch_to(else_b);
    let t_else = f.copy(c1); // T = C1
    f.jump(join);
    f.switch_to(join);
    let t = f.phi(RegClass::Int, vec![(then_b, t_then), (else_b, t_else)]);
    let c2 = f.copy(t); // C2 = T
    f.ret(Some(c2)); // ret = C2
    let func = f.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // The chain C0 → T → C2 → ret should collapse; at most the copies
    // touching C1 survive.
    assert!(
        out.stats.copies_remaining <= 2,
        "the C0/T/C2/ret chain should coalesce; {} copies survived",
        out.stats.copies_remaining
    );

    let reference = run_ir(&func, &[64], DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &[64], DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}
