//! Windowed paired-load fusion must beat the old adjacent-only scan on
//! real (generated) code: the machine-code rewriter scans up to the pair
//! rule's `window` instructions ahead, so paired candidates separated by
//! spill reloads or interleaved arithmetic still fuse, where an
//! adjacent-only rewriter (window 1) misses them.
//!
//! The two targets below are identical except for the fusion window, so
//! register assignment (which is window-independent — the RPG pairs by
//! stride, not instruction adjacency) matches exactly, and any difference
//! in `paired_loads` comes from the rewrite scan alone.

use pdgc::prelude::*;
use pdgc::workloads::specjvm_suite;
use pdgc_ir::RegClass;

/// An `ia64-24` twin whose only degree of freedom is the fusion window.
fn ia64_with_window(window: usize) -> TargetDesc {
    let rule = PairRule::new(PairedLoadRule::Parity, 8).with_window(window);
    let spec = || ClassSpec::new(24).volatile_prefix(12).pair(rule);
    TargetDesc::builder(format!("ia64-24-w{window}"))
        .class(RegClass::Int, spec())
        .class(RegClass::Float, spec())
        .finish()
        .expect("window twin is statically valid")
}

/// Total fused pairs across the suite for one target.
fn total_pairs(alloc: &dyn RegisterAllocator, target: &TargetDesc) -> usize {
    specjvm_suite()
        .iter()
        .flat_map(|p| generate(p).funcs)
        .map(|f| {
            alloc
                .allocate(&f, target)
                .unwrap_or_else(|e| panic!("{} failed on {}: {e}", alloc.name(), f.name))
                .stats
                .paired_loads
        })
        .sum()
}

#[test]
fn windowed_fusion_finds_strictly_more_pairs_than_adjacent_only() {
    let windowed = ia64_with_window(4);
    let adjacent = ia64_with_window(1);
    // Same file, same volatile split, same pair rule apart from the scan
    // window — so the assignments (and therefore the fusion *candidates*)
    // are identical.
    assert_eq!(windowed.num_regs(RegClass::Int), adjacent.num_regs(RegClass::Int));
    assert_eq!(
        windowed.pair_rule(RegClass::Int).unwrap().stride(),
        adjacent.pair_rule(RegClass::Int).unwrap().stride()
    );

    let alloc = PreferenceAllocator::full();
    let wide = total_pairs(&alloc, &windowed);
    let narrow = total_pairs(&alloc, &adjacent);
    eprintln!("paired loads fused: window=4 {wide}, window=1 {narrow}");
    assert!(
        wide > narrow,
        "windowed fusion ({wide}) must strictly beat adjacent-only ({narrow})"
    );
    // Sanity: both fuse something at all on the paired-load-dense suite.
    assert!(narrow > 0, "adjacent-only fusion found nothing");
}
