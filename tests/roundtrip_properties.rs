//! Property-based round-trip coverage for both textual forms.
//!
//! On randomly generated programs:
//!
//! * **IR level** — `parse(print(f))` must succeed, be structurally
//!   equal to `f.with_canonical_callees()` (the parser interns callees
//!   in order of appearance; the generator may not), and print back
//!   byte-identically, on every builtin target's adaptation of the
//!   profile.
//! * **machine level** — after allocation, `parse(print(m))` must
//!   reproduce the rewritten [`MachFunction`] exactly and reach the
//!   printed fixpoint, cycling through every shipped allocator.
//!
//! Failing seeds persist to `roundtrip_properties.proptest-regressions`
//! and replay before fresh cases.

use proptest::prelude::*;

use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;

fn profile(seed: u64, ops: usize, loop_depth: u32, call_density: f64, diamond_density: f64, float_ratio: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "roundtrip-prop".into(),
        seed,
        num_funcs: 2,
        ops_per_func: ops,
        loop_depth,
        call_density,
        float_ratio,
        paired_density: 0.3,
        byte_density: 0.15,
        pressure: 9,
        diamond_density,
        pair_stride: 8,
        pair_align: 1,
    }
}

/// Certifies the IR contract for one function; returns the canonical
/// reparse for further use.
fn ir_roundtrip(func: &Function) -> Result<Function, TestCaseError> {
    let printed = func.to_string();
    let reparsed = pdgc::ir::parse_function(&printed)
        .map_err(|e| TestCaseError::fail(format!("{}: reparse failed: {e}\n{printed}", func.name)))?;
    prop_assert_eq!(
        &reparsed,
        &func.with_canonical_callees(),
        "parse(print(f)) != canon(f) for {}",
        func.name
    );
    prop_assert_eq!(
        reparsed.to_string(),
        printed,
        "print-parse-print not a fixpoint for {}",
        func.name
    );
    Ok(reparsed)
}

/// Certifies the machine-level contract for one allocated function.
fn mach_roundtrip(mach: &MachFunction) -> Result<(), TestCaseError> {
    let printed = mach.to_string();
    let reparsed = pdgc::target::parse_mach_function(&printed).map_err(|e| {
        TestCaseError::fail(format!("{}: mach reparse failed: {e}\n{printed}", mach.name))
    })?;
    prop_assert_eq!(&reparsed, mach, "parse(print(m)) != m for {}", mach.name);
    prop_assert_eq!(
        reparsed.to_string(),
        printed,
        "mach print-parse-print not a fixpoint for {}",
        mach.name
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// IR text round-trips exactly on every builtin target's adaptation
    /// of a random profile (figure7 included — round-trip needs no
    /// allocation, so the three-register machine participates too).
    #[test]
    fn ir_text_roundtrips_on_every_builtin_target(
        seed in any::<u64>(),
        ops in 10usize..45,
        loop_depth in 0u32..3,
        call_density in 0.0f64..0.4,
        diamond_density in 0.0f64..0.5,
        float_ratio in 0.0f64..0.5,
    ) {
        let registry = TargetRegistry::builtin();
        for name in registry.names() {
            let target = registry.resolve(name).expect("registry target");
            let prof = profile(seed, ops, loop_depth, call_density, diamond_density, float_ratio)
                .for_target(target);
            for func in &generate(&prof).funcs {
                prop_assume!(func.verify().is_ok());
                let reparsed = ir_roundtrip(func)?;
                // The reparse is itself canonical: one more trip is the
                // identity at the structural level too.
                prop_assert_eq!(&reparsed.with_canonical_callees(), &reparsed);
            }
        }
    }

    /// Rewritten machine code round-trips exactly, cycling through
    /// every shipped allocator under the symbolic checker (figure7's
    /// three-register file cannot allocate generated workloads and is
    /// exempt, as in `tests/target_matrix.rs`).
    #[test]
    fn mach_text_roundtrips_for_every_allocator(
        seed in any::<u64>(),
        ops in 10usize..40,
        loop_depth in 0u32..3,
        call_density in 0.0f64..0.4,
        diamond_density in 0.0f64..0.5,
        which_alloc in 0usize..9,
        which_target in 0usize..2,
    ) {
        // One allocator × one non-toy target per case keeps a case cheap
        // while the strategy dimensions cover the full matrix across
        // cases.
        let name = ["ia64-24", "x86-24"][which_target];
        let target = TargetRegistry::builtin().resolve(name).expect("registry target").clone();
        let prof = profile(seed, ops, loop_depth, call_density, diamond_density, 0.25)
            .for_target(&target);
        let allocators = pdgc::all_allocators();
        let alloc = &allocators[which_alloc % allocators.len()];
        for func in &generate(&prof).funcs {
            prop_assume!(func.verify().is_ok());
            let out = alloc
                .allocate_checked(func, &target, &mut NoopTracer, CheckMode::Always)
                .map_err(|e| TestCaseError::fail(format!(
                    "{} on {} ({name}): {e}", alloc.name(), func.name
                )))?;
            mach_roundtrip(&out.mach)?;
        }
    }
}
