//! Property-based coverage for the post-allocation symbolic checker
//! (`pdgc-check`): on randomly generated programs, **every** allocator's
//! output on **every** builtin target must be provable in
//! `CheckMode::Always`. A checker rejection here means either a real
//! allocator bug or a checker unsoundness — both block the suite.
//!
//! The pinned counterexample at the bottom replays the generated `jack`
//! workload whose zero-trip loop broke the checker's first must-analysis:
//! vregs spilled inside a loop body and reloaded after the exit are
//! *not* written on the path that skips the loop — the IR itself reads
//! garbage there, so the reload is correct, and the checker must prove it
//! via its must-defined/may-written tracking rather than reject it.
//! Failing seeds are persisted to `check_properties.proptest-regressions`
//! and replayed before fresh cases.

use proptest::prelude::*;

use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;

/// Does `func` (post-lowering, post-spill) reload a slot that is not
/// must-written at the reload — i.e. some path from entry reaches the
/// `Reload` without passing any `Spill` to that slot? This is exactly the
/// zero-trip-loop shape that the checker's original strict rule rejected.
fn has_path_unwritten_reload(func: &Function) -> bool {
    use pdgc::ir::Inst;
    let cfg = pdgc::analysis::Cfg::compute(func);
    let nblocks = func.num_blocks();
    let nslots = 1 + func
        .block_ids()
        .flat_map(|b| func.block(b).insts.iter())
        .filter_map(|i| match i {
            Inst::Spill { slot, .. } | Inst::Reload { slot, .. } => Some(*slot),
            _ => None,
        })
        .max()
        .unwrap_or(0) as usize;
    // outs[b] = Some(set of slots written on every path from entry
    // through the end of b); None = not yet evaluated.
    let mut outs: Vec<Option<Vec<bool>>> = vec![None; nblocks];
    let rpo = cfg.reverse_postorder().to_vec();
    let mut hit = false;
    loop {
        let mut changed = false;
        for &b in &rpo {
            let mut inp: Option<Vec<bool>> = (b == Block::ENTRY).then(|| vec![false; nslots]);
            for &p in cfg.preds(b) {
                if let Some(o) = &outs[p.index()] {
                    inp = Some(match inp {
                        Some(a) => a.iter().zip(o).map(|(x, y)| *x && *y).collect(),
                        None => o.clone(),
                    });
                }
            }
            let Some(mut st) = inp else { continue };
            for inst in &func.block(b).insts {
                match inst {
                    Inst::Reload { slot, .. } if !st[*slot as usize] => hit = true,
                    Inst::Spill { slot, .. } => st[*slot as usize] = true,
                    _ => {}
                }
            }
            if outs[b.index()].as_ref() != Some(&st) {
                outs[b.index()] = Some(st);
                changed = true;
            }
        }
        if !changed {
            return hit;
        }
    }
}

/// Allocates `func` with every allocator and proves each allocation.
fn prove_all_allocators(func: &Function, target: &TargetDesc) -> Result<(), TestCaseError> {
    for alloc in pdgc::all_allocators() {
        let out = alloc
            .allocate_checked(func, target, &mut NoopTracer, CheckMode::Always)
            .map_err(|e| {
                TestCaseError::fail(format!(
                    "{} on {} ({}): {e}",
                    alloc.name(),
                    func.name,
                    target.name
                ))
            })?;
        // The checker's report is consistent with the statistics the
        // rewrite pass published.
        let report = check_allocation(&out.lowered, &out.assignment, &out.mach, target)
            .expect("allocate_checked already proved this allocation");
        prop_assert_eq!(report.paired_loads, out.stats.paired_loads as usize);
        prop_assert_eq!(report.blocks, out.mach.blocks.len());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every allocator × every builtin target (figure7's three-register
    /// file cannot allocate generated workloads and is exempt, as in
    /// `tests/target_matrix.rs`) on random programs, checker always on.
    #[test]
    fn checker_proves_every_allocator_on_every_builtin_target(
        seed in any::<u64>(),
        ops in 10usize..45,
        call_density in 0.0f64..0.4,
        loop_depth in 0u32..3,
        diamond_density in 0.0f64..0.5,
    ) {
        let registry = TargetRegistry::builtin();
        for name in registry.names() {
            if name == "figure7" {
                continue;
            }
            let target = registry.resolve(name).expect("registry target").clone();
            let prof = WorkloadProfile {
                name: "check-prop".into(),
                seed,
                num_funcs: 1,
                ops_per_func: ops,
                loop_depth,
                call_density,
                float_ratio: 0.25,
                paired_density: 0.3,
                byte_density: 0.15,
                pressure: 9,
                diamond_density,
                pair_stride: 8,
                pair_align: 1,
            }
            .for_target(&target);
            let w = generate(&prof);
            let func = &w.funcs[0];
            prop_assume!(func.verify().is_ok());
            prove_all_allocators(func, &target)?;
        }
    }
}

/// The pre-fix counterexample, pinned: the generated `jack` workload's
/// first function has a `b4 ↔ b5` loop whose body spills heavily, with
/// the spilled values reloaded after the zero-trip exit `b4 → b6`. The
/// checker's first version rejected the full-preference allocation with
/// 35 violations (`read before any write` / `stale-value`), all false:
/// on the skipping path the IR itself reads undefined vregs, so any
/// machine value refines it.
#[test]
fn jack_zero_trip_loop_is_provable() {
    let profiles = pdgc::workloads::specjvm_suite();
    let w = generate(&profiles[6]); // jack
    let func = &w.funcs[0];
    let target = TargetDesc::ia64_like(PressureModel::High);
    let out = PreferenceAllocator::full()
        .allocate_checked(func, &target, &mut NoopTracer, CheckMode::Always)
        .expect("the zero-trip-loop allocation is correct and must be provable");
    // The counterexample shape is still present — if workload generation
    // changes and this stops holding, the pin needs a new specimen.
    assert!(
        has_path_unwritten_reload(&out.lowered),
        "jack_0 no longer reloads a path-unwritten slot; re-pin the zero-trip counterexample"
    );
}
