//! Golden reproduction of the paper's Figure 7 — the worked example that
//! drives §5.
//!
//! ```text
//! i0:     v0 = [arg0]
//! i1: L1: v1 = [v0]
//! i2:     v2 = [v0+8]
//! i3:     v3 = v0
//! i4:     v4 = v1 + v2
//! i5:     arg0 = v3
//! i6:     call
//! i7:     v0 = v4 + 1
//! i8:     if v0 != 0 goto L1
//! i9:     ret
//! ```
//!
//! Expected outcome on the three-register machine (paper r1/r2/r3 = our
//! r0/r1/r2, with r0 = arg0/return volatile, r1 = arg1 volatile, r2
//! non-volatile):
//!
//! * RPG strengths: v1/v2 sequential± 50 (volatile) / 48 (non-volatile);
//!   v3 → v0 and v3 → arg0 coalesce 40/38; v4 prefers-non-volatile 28;
//! * final assignment: v0 = r0, v1 = r1, v2 = r2, v3 = r0, v4 = r2;
//! * final code (Figure 7(h)): every copy coalesced away, the two loads
//!   fused into one paired load, no spills, no caller saves.

use pdgc::core::build::collect_copies;
use pdgc::core::cost::CostModel;
use pdgc::core::lower::lower_abi;
use pdgc::core::node::NodeMap;
use pdgc::core::pipeline::analyze;
use pdgc::core::rpg::{build_rpg, PrefKind, PrefTarget};
use pdgc::prelude::*;
use pdgc::target::MInst;

/// Builds the Figure 7(a) program (SSA where the paper is SSA, one
/// multi-definition web for `v0` exactly as the paper draws it).
fn figure7_func() -> (Function, [VReg; 5]) {
    let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
    let arg0 = b.param(0);
    let header = b.create_block();
    let exit = b.create_block();
    let v0 = b.load(arg0, 0); // i0
    b.jump(header);
    b.switch_to(header);
    let v1 = b.load(v0, 0); // i1
    let v2 = b.load(v0, 8); // i2
    let v3 = b.copy(v0); // i3
    let v4 = b.bin(BinOp::Add, v1, v2); // i4
    b.call("g", vec![v3], None); // i5 + i6 (lowering adds the arg copy)
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Add,
        dst: v0,
        lhs: v4,
        imm: 1,
    }); // i7: the loop-carried redefinition of v0
    b.branch_imm(CmpOp::Ne, v0, 0, header, exit); // i8
    b.switch_to(exit);
    b.ret(None); // i9
    let f = b.finish();
    assert!(f.verify().is_ok());
    (f, [v0, v1, v2, v3, v4])
}

#[test]
fn rpg_strengths_match_the_paper() {
    let (func, [v0, v1, v2, v3, v4]) = figure7_func();
    let target = TargetDesc::figure7();
    let lowered = lower_abi(&func, &target).unwrap();
    let analyses = analyze(&lowered.func);
    let cost = CostModel::new(
        &lowered.func,
        &analyses.defuse,
        &analyses.loops,
        &analyses.crossings,
    );
    let nodes = NodeMap::build(&lowered.func, &target, RegClass::Int, &lowered.pinned);
    let copies = collect_copies(&lowered.func, &analyses.loops, &nodes);
    let rpg = build_rpg(&lowered.func, &nodes, &cost, &copies, PreferenceSet::full(), &target);

    let node = |v: VReg| nodes.node_of(v).unwrap();

    // v1 and v2: sequential± with strengths 50/48.
    let seq1 = rpg
        .prefs(node(v1))
        .iter()
        .find(|p| p.kind == PrefKind::SequentialPlus)
        .expect("v1 has a sequential+ preference");
    assert_eq!(seq1.target, PrefTarget::Node(node(v2)));
    assert_eq!(seq1.strength_vol, 50);
    assert_eq!(seq1.strength_nonvol, 48);
    let seq2 = rpg
        .prefs(node(v2))
        .iter()
        .find(|p| p.kind == PrefKind::SequentialMinus)
        .expect("v2 has a sequential- preference");
    assert_eq!(seq2.target, PrefTarget::Node(node(v1)));
    assert_eq!(seq2.strength_vol, 50);
    assert_eq!(seq2.strength_nonvol, 48);

    // v3: coalesce toward v0 with 40/38, and toward the dedicated arg0
    // register (the precolored r0 node) with the same strengths.
    let co_v0 = rpg
        .prefs(node(v3))
        .iter()
        .find(|p| p.kind == PrefKind::Coalesce && p.target == PrefTarget::Node(node(v0)))
        .expect("v3 coalesces toward v0");
    assert_eq!(co_v0.strength_vol, 40);
    assert_eq!(co_v0.strength_nonvol, 38);
    let r0_node = nodes.node_of_reg(PhysReg::int(0));
    let co_arg = rpg
        .prefs(node(v3))
        .iter()
        .find(|p| p.kind == PrefKind::Coalesce && p.target == PrefTarget::Node(r0_node))
        .expect("v3 coalesces toward arg0/r0");
    assert_eq!(co_arg.strength_vol, 40);
    assert_eq!(co_arg.strength_nonvol, 38);

    // v4: prefers a non-volatile register with strength 28 (and volatile
    // would be worthless: save/restore eats the whole benefit).
    let pref_nv = rpg
        .prefs(node(v4))
        .iter()
        .find(|p| p.kind == PrefKind::Prefers && p.target == PrefTarget::NonVolatile)
        .expect("v4 prefers non-volatile");
    assert_eq!(pref_nv.strength_nonvol, 28);
    let pref_v = rpg
        .prefs(node(v4))
        .iter()
        .find(|p| p.kind == PrefKind::Prefers && p.target == PrefTarget::Volatile)
        .expect("v4 has a volatile-preference entry");
    assert_eq!(pref_v.strength_vol, 0);
}

#[test]
fn final_allocation_matches_figure7_g() {
    let (func, [v0, v1, v2, v3, v4]) = figure7_func();
    let target = TargetDesc::figure7();
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();

    assert_eq!(out.assignment[v0.index()], Some(PhysReg::int(0)), "v0");
    assert_eq!(out.assignment[v1.index()], Some(PhysReg::int(1)), "v1");
    assert_eq!(out.assignment[v2.index()], Some(PhysReg::int(2)), "v2");
    assert_eq!(out.assignment[v3.index()], Some(PhysReg::int(0)), "v3");
    assert_eq!(out.assignment[v4.index()], Some(PhysReg::int(2)), "v4");
}

#[test]
fn final_code_matches_figure7_h() {
    let (func, _) = figure7_func();
    let target = TargetDesc::figure7();
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    let stats = out.stats;

    // Every copy coalesced: v3 = v0, the argument copy, the parameter copy.
    assert_eq!(stats.copies_remaining, 0, "no moves survive");
    assert_eq!(stats.moves_eliminated, stats.copies_before);
    assert!(stats.copies_before >= 3);
    // One paired load, no spills, no caller saves, one non-volatile (r2).
    assert_eq!(stats.paired_loads, 1);
    assert_eq!(stats.spill_instructions, 0);
    assert_eq!(stats.caller_save_insts, 0);
    assert_eq!(stats.nonvolatiles_used, 1);

    // Figure 7(h), instruction for instruction:
    //   b0: r0 = [r0];            jump L1
    //   L1: r1,r2 = [r0],[r0+8];  r2 = add r1,r2;  call g(r0);
    //       r0 = add r2,#1;       if ne r0,#0 goto L1
    //   b2: ret
    let b0 = &out.mach.blocks[0];
    assert!(
        matches!(
            b0[0],
            MInst::Load {
                dst,
                base,
                offset: 0
            } if dst == PhysReg::int(0) && base == PhysReg::int(0)
        ),
        "i0 should be r0 = [r0], got {:?}",
        b0[0]
    );
    let b1 = &out.mach.blocks[1];
    assert!(
        matches!(
            b1[0],
            MInst::LoadPair {
                dst1,
                dst2,
                base,
                offset: 0,
                offset2: 8,
            } if dst1 == PhysReg::int(1) && dst2 == PhysReg::int(2) && base == PhysReg::int(0)
        ),
        "the loop should start with the fused paired load, got {:?}",
        b1[0]
    );
    assert!(
        matches!(
            b1[1],
            MInst::Bin {
                op: BinOp::Add,
                dst,
                lhs,
                rhs,
            } if dst == PhysReg::int(2) && lhs == PhysReg::int(1) && rhs == PhysReg::int(2)
        ),
        "r2 = add r1, r2, got {:?}",
        b1[1]
    );
    assert!(
        matches!(&b1[2], MInst::Call { arg_regs, .. } if arg_regs == &[PhysReg::int(0)]),
        "call g(r0), got {:?}",
        b1[2]
    );
    assert!(
        matches!(
            b1[3],
            MInst::BinImm {
                op: BinOp::Add,
                dst,
                lhs,
                imm: 1,
            } if dst == PhysReg::int(0) && lhs == PhysReg::int(2)
        ),
        "r0 = add r2, #1, got {:?}",
        b1[3]
    );
    assert!(
        matches!(
            b1[4],
            MInst::BranchImm {
                op: CmpOp::Ne,
                lhs,
                imm: 0,
                ..
            } if lhs == PhysReg::int(0)
        ),
        "loop branch on r0, got {:?}",
        b1[4]
    );
    assert_eq!(b1.len(), 5, "loop body is exactly five instructions");
    assert!(matches!(out.mach.blocks[2][..], [MInst::Ret]));
}

/// The paper's premise: preference-unaware allocation of the same program
/// cannot express the paired load *and* the non-volatile placement at the
/// same time — the full-preference result strictly dominates on dynamic
/// cycles (the quantity behind Figures 10/11).
#[test]
fn full_preferences_beat_coalescing_only_on_figure7() {
    let (func, _) = figure7_func();
    let target = TargetDesc::figure7();
    let full = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    let only = PreferenceAllocator::coalescing_only()
        .allocate(&func, &target)
        .unwrap();
    // Static count: full fuses the pair; coalescing-only has no reason to.
    assert_eq!(full.stats.paired_loads, 1);
    // Weighted loop-body cost must favour the full configuration (or tie
    // it if coalescing-only got lucky): compare per-iteration machine
    // cycles of the loop block.
    let loop_cost = |m: &MachFunction| -> u64 {
        m.blocks[1]
            .iter()
            .map(pdgc::sim::cycles::minst_cycles)
            .sum()
    };
    assert!(
        loop_cost(&full.mach) <= loop_cost(&only.mach),
        "full {} vs only {}",
        loop_cost(&full.mach),
        loop_cost(&only.mach)
    );
}
