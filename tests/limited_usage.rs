//! The paper's second preference type — *limited register usage* (§3.1):
//! x86-style quarter-word loads that only certain registers can receive
//! directly; any other destination needs a zero-extension afterwards.
//!
//! The preference-directed allocator records a register-set preference for
//! byte-load destinations and avoids the extensions where colorability
//! allows; preference-unaware allocators pay them. The machine interpreter
//! makes the preference *semantically* meaningful: a byte load into a
//! non-byte-capable register leaves dirty high bits, so a missing
//! extension is an observable bug, not just a cost.

use pdgc::all_allocators;
use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;

/// A hot loop with two byte loads folded into an accumulator.
fn byte_kernel() -> Function {
    let mut b = FunctionBuilder::new("bytes", vec![RegClass::Int, RegClass::Int], Some(RegClass::Int));
    let base = b.param(0);
    let n = b.param(1);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let acc = b.iconst(0);
    let i = b.copy(n);
    b.jump(header);
    b.switch_to(header);
    b.branch_imm(CmpOp::Gt, i, 0, body, exit);
    b.switch_to(body);
    let x = b.load8(base, 0);
    let y = b.load8(base, 16);
    let s = b.bin(BinOp::Add, x, y);
    b.emit(pdgc::ir::Inst::Bin {
        op: BinOp::Add,
        dst: acc,
        lhs: acc,
        rhs: s,
    });
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    b.jump(header);
    b.switch_to(exit);
    b.ret(Some(acc));
    let f = b.finish();
    assert!(f.verify().is_ok());
    f
}

#[test]
fn full_preferences_avoid_zero_extensions() {
    let func = byte_kernel();
    let target = TargetDesc::x86_like(PressureModel::Middle);
    let full = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    assert_eq!(
        full.stats.zero_extensions, 0,
        "byte-load destinations should land in byte-capable registers"
    );
    // Sanity: the result is correct.
    let args = vec![128u64, 5];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&full.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

#[test]
fn preference_unaware_allocators_stay_correct_via_extensions() {
    // Preference-unaware allocators may put byte destinations anywhere;
    // the rewriter's mandatory extension keeps them correct, and the
    // differential check proves it.
    let func = byte_kernel();
    let target = TargetDesc::x86_like(PressureModel::Middle);
    let args = vec![128u64, 5];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    for alloc in all_allocators() {
        let out = alloc.allocate(&func, &target).unwrap();
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach)
            .unwrap_or_else(|e| panic!("{} diverged: {e}", alloc.name()));
    }
}

#[test]
fn extensions_priced_into_dynamic_cycles() {
    // Force the byte registers to be unattractive for the coalescing-only
    // allocator (non-volatile-first fallback picks high registers), then
    // compare cycle counts: the full allocator must not be slower.
    let func = byte_kernel();
    let target = TargetDesc::x86_like(PressureModel::Middle);
    let args = vec![128u64, 50];
    let full = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    let only = PreferenceAllocator::coalescing_only()
        .allocate(&func, &target)
        .unwrap();
    let full_exec = run_mach(&full.mach, &target, &args, DEFAULT_FUEL).unwrap();
    let only_exec = run_mach(&only.mach, &target, &args, DEFAULT_FUEL).unwrap();
    assert!(
        full_exec.cycles <= only_exec.cycles,
        "full {} vs coalescing-only {}",
        full_exec.cycles,
        only_exec.cycles
    );
}

#[test]
fn byte_dense_workload_differentially_verified() {
    // A byte-heavy synthetic workload on the x86-like target, across all
    // allocators.
    let prof = WorkloadProfile {
        name: "x86demo".into(),
        seed: 0xB17E,
        num_funcs: 4,
        ops_per_func: 70,
        loop_depth: 1,
        call_density: 0.2,
        float_ratio: 0.0,
        paired_density: 0.0,
        byte_density: 0.5,
        pressure: 10,
        diamond_density: 0.25,
        pair_stride: 8,
        pair_align: 1,
    };
    let w = generate(&prof);
    let target = TargetDesc::x86_like(PressureModel::High);
    for func in &w.funcs {
        let args = default_args(func);
        let reference = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        for alloc in all_allocators() {
            let out = alloc.allocate(func, &target).unwrap();
            let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
            check_equivalent(&reference, &mach)
                .unwrap_or_else(|e| panic!("{} diverged on {}: {e}", alloc.name(), func.name));
        }
    }
}

#[test]
fn ia64_target_has_no_byte_restriction() {
    // On targets without the restriction, no extensions ever appear and
    // no Set preferences are recorded.
    let func = byte_kernel();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    assert!(!target.has_byte_restriction(RegClass::Int));
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    assert_eq!(out.stats.zero_extensions, 0);
    let args = vec![128u64, 5];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// §3.1's dedicated-operation registers: on the x86-like target, integer
/// division results appear in the fixed division register (r0). The copy
/// out of it is a dedicated-register coalescing opportunity the
/// preference-directed allocator takes when profitable.
#[test]
fn dedicated_division_register() {
    use pdgc::target::MInst;
    let target = TargetDesc::x86_like(PressureModel::Middle);
    assert_eq!(target.div_reg, Some(PhysReg::int(0)));

    let mut b = FunctionBuilder::new("f", vec![RegClass::Int, RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let q = b.param(1);
    let d = b.bin(BinOp::Div, p, q);
    let s = b.bin_imm(BinOp::Add, d, 1);
    b.ret(Some(s));
    let func = b.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // The division's destination register must be r0.
    let div_dst = out
        .mach
        .blocks
        .iter()
        .flatten()
        .find_map(|i| match i {
            MInst::Bin {
                op: BinOp::Div,
                dst,
                ..
            } => Some(*dst),
            _ => None,
        })
        .expect("division survives to machine code");
    assert_eq!(div_dst, PhysReg::int(0));
    // The copy out of the pinned register coalesces away.
    assert_eq!(out.stats.copies_remaining, 0);

    for args in [[48u64, 6], [7, 0], [u64::MAX, 3]] {
        let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach).unwrap();
    }
}

/// Division in a loop with the divisor live across: the dedicated
/// register constraint must not break correctness under pressure, for
/// every allocator.
#[test]
fn dedicated_division_under_pressure_all_allocators() {
    let target = TargetDesc::x86_like(PressureModel::High);
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int, RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let n = b.param(1);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let acc = b.iconst(1000000);
    let i = b.copy(n);
    b.jump(header);
    b.switch_to(header);
    b.branch_imm(CmpOp::Gt, i, 0, body, exit);
    b.switch_to(body);
    let x = b.load(p, 0);
    let d = b.bin(BinOp::Div, acc, x);
    b.emit(pdgc::ir::Inst::Bin {
        op: BinOp::Add,
        dst: acc,
        lhs: acc,
        rhs: d,
    });
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    b.jump(header);
    b.switch_to(exit);
    b.ret(Some(acc));
    let func = b.finish();

    let args = vec![512u64, 6];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    for alloc in pdgc::all_allocators() {
        let out = alloc.allocate(&func, &target).unwrap();
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach)
            .unwrap_or_else(|e| panic!("{} diverged: {e}", alloc.name()));
    }
}
