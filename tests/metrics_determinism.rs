//! The always-on metrics registry must obey the same determinism
//! contract as the allocations themselves: worker count and claim order
//! may change *where* each counter bump happens, but the slot-keyed
//! merge makes the deterministic sections (counters and scorecard
//! histograms) bit-identical at every job count. Latency histograms are
//! wall-clock and explicitly excluded from the contract.
//!
//! The second half pins the Figure 7 scorecard the same way
//! `tests/trace_golden.rs` pins the decision stream: these counts *are*
//! the paper's walkthrough (one fused paired load, no spills, every
//! preference screen resolved in round 1), so a change here means the
//! algorithm changed, never drift.

use pdgc::obs::{Counter, ValueHist};
use pdgc::prelude::*;
use pdgc_bench::batch::run_batch;

fn suite() -> Vec<Workload> {
    let profiles = specjvm_suite();
    profiles.iter().take(3).map(generate).collect()
}

#[test]
fn jobs4_metrics_merge_bit_identical_to_jobs1() {
    let workloads = suite();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let serial = run_batch(&alloc, &workloads, &target, 1);
    let parallel = run_batch(&alloc, &workloads, &target, 4);

    assert!(serial.metrics.deterministic_eq(&parallel.metrics));
    // The JSON forms of the deterministic sections must match byte for
    // byte — this is what `pdgc report` ultimately diffs.
    assert_eq!(
        serial.metrics.counters_json(),
        parallel.metrics.counters_json()
    );
    assert_eq!(
        serial.metrics.scorecard_hists_json(),
        parallel.metrics.scorecard_hists_json()
    );
    // And they are not trivially empty.
    let total: usize = workloads.iter().map(|w| w.funcs.len()).sum();
    assert_eq!(
        serial.metrics.get(Counter::FuncsAllocated),
        total as u64,
        "one FuncsAllocated bump per function"
    );
    assert!(serial.metrics.get(Counter::SelectAssigned) > 0);
    assert_eq!(
        serial
            .metrics
            .value_hist(ValueHist::RoundsPerFunc)
            .count,
        total as u64
    );
}

#[test]
fn per_function_metrics_ride_their_slots() {
    let workloads = suite();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let r = run_batch(&alloc, &workloads, &target, 3);
    // Each slot carries exactly its own function's scorecard, and the
    // merged registry is their sum.
    let mut merged = pdgc::obs::MetricsRegistry::default();
    for f in &r.funcs {
        assert_eq!(f.metrics.get(Counter::FuncsAllocated), 1);
        assert_eq!(
            f.metrics.get(Counter::SpillLoads) as usize,
            f.stats.spill_loads,
            "scorecard matches per-function stats on {}",
            f.func
        );
        merged.merge(&f.metrics);
    }
    assert!(merged.deterministic_eq(&r.metrics));
}

/// The Figure 7(a) program (same construction as `tests/figure7.rs`).
fn figure7_func() -> Function {
    let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
    let arg0 = b.param(0);
    let header = b.create_block();
    let exit = b.create_block();
    let v0 = b.load(arg0, 0);
    b.jump(header);
    b.switch_to(header);
    let v1 = b.load(v0, 0);
    let v2 = b.load(v0, 8);
    let v3 = b.copy(v0);
    let v4 = b.bin(BinOp::Add, v1, v2);
    b.call("g", vec![v3], None);
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Add,
        dst: v0,
        lhs: v4,
        imm: 1,
    });
    b.branch_imm(CmpOp::Ne, v0, 0, header, exit);
    b.switch_to(exit);
    b.ret(None);
    b.finish()
}

#[test]
fn figure7_scorecard_is_golden() {
    let func = figure7_func();
    let target = TargetDesc::figure7();
    let mut scratch = pdgc::core::PhaseScratch::new();
    PreferenceAllocator::full()
        .allocate_scratch(
            &func,
            &target,
            &mut NoopTracer,
            CheckMode::Always,
            CheckScope::Full,
            &mut scratch,
        )
        .unwrap();
    let m = &scratch.metrics;

    // Allocation shape: one function, one round, no spilling.
    assert_eq!(m.get(Counter::FuncsAllocated), 1);
    assert_eq!(m.get(Counter::RoundsTotal), 1);
    assert_eq!(m.get(Counter::SpillInstructions), 0);
    assert_eq!(m.get(Counter::SelectSpilledNoRegister), 0);
    assert_eq!(m.get(Counter::SelectSpilledPreferMemory), 0);
    assert_eq!(m.get(Counter::SelectAssigned), 6);

    // Figure 7(h): the v1/v2 loads fuse into one paired load.
    assert_eq!(m.get(Counter::PairedLoadCandidates), 1);
    assert_eq!(m.get(Counter::PairedLoadsFused), 1);

    // Screening outcomes, per the golden decision stream in
    // `tests/trace_golden.rs`: three coalesce screens honored, one
    // deferred (v3's partner not yet colored on first sight); the
    // sequential pair honors seq- after deferring seq+; six
    // volatility/prefers screens honored, three skipped.
    assert_eq!(m.get(Counter::PrefCoalesceHonored), 3);
    assert_eq!(m.get(Counter::PrefCoalesceDeferred), 1);
    assert_eq!(m.get(Counter::PrefCoalesceSkipped), 0);
    assert_eq!(m.get(Counter::PrefSeqPlusDeferred), 1);
    assert_eq!(m.get(Counter::PrefSeqMinusHonored), 1);
    assert_eq!(m.get(Counter::PrefPrefersHonored), 6);
    assert_eq!(m.get(Counter::PrefPrefersSkipped), 3);

    // The checker ran once, full scope, zero violations.
    assert_eq!(m.get(Counter::CheckRuns), 1);
    assert_eq!(m.get(Counter::CheckScopeFull), 1);
    assert_eq!(m.get(Counter::CheckScopeRewritten), 0);
    assert_eq!(m.get(Counter::CheckViolations), 0);
    assert!(m.get(Counter::CheckIrInsts) > 0);
}
