//! Pins the arena/scratch contract with a counting global allocator: the
//! pooled analysis phases must stop touching the heap entirely once their
//! scratch is warm, and the pooled full pipeline must allocate far less
//! than the unpooled one while producing bit-identical output.
//!
//! This file is its own crate (integration tests always are), so the
//! workspace-wide `#![forbid(unsafe_code)]` on the library crates does not
//! apply; the one `unsafe impl` below is the standard delegating
//! `GlobalAlloc` wrapper around [`System`].
//!
//! Counters are thread-local, so the concurrent tests in this binary
//! (each on its own harness thread) never pollute each other's counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use pdgc_analysis::{Cfg, Liveness};
use pdgc_core::build::build_ifg_in;
use pdgc_core::node::NodeMap;
use pdgc_core::{CheckMode, CheckScope, PhaseScratch, PreferenceAllocator, RegisterAllocator};
use pdgc_ir::{Function, RegClass};
use pdgc_obs::NoopTracer;
use pdgc_target::{PhysReg, PressureModel, TargetDesc};

struct CountingAlloc;

thread_local! {
    // const-init: reading the counter from inside `alloc` never triggers a
    // lazy initializer (which could itself allocate and recurse).
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (including reallocs) made by `f` on this thread.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let r = f();
    (ALLOCS.with(Cell::get) - before, r)
}

fn bench_function() -> Function {
    let profiles = pdgc_workloads::specjvm_suite();
    let mut w = pdgc_workloads::generate(&profiles[0]);
    w.funcs.swap_remove(0)
}

/// One liveness + node-map + interference-graph pass drawing every buffer
/// from `scratch` and returning all of them to it.
fn analysis_pass(
    func: &Function,
    cfg: &Cfg,
    target: &TargetDesc,
    pinned: &[Option<PhysReg>],
    scratch: &mut PhaseScratch,
) {
    let liveness = Liveness::compute_in(func, cfg, &mut scratch.liveness);
    let nodes = NodeMap::build_in(func, target, RegClass::Int, pinned, &mut scratch.node);
    let ifg = build_ifg_in(func, &liveness, &nodes, &mut scratch.ifg, &mut scratch.build);
    ifg.recycle(&mut scratch.ifg);
    nodes.recycle(&mut scratch.node);
    liveness.recycle(&mut scratch.liveness);
}

#[test]
fn warm_analysis_phases_make_zero_heap_allocations() {
    let func = bench_function();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let cfg = Cfg::compute(&func);
    let pinned: Vec<Option<PhysReg>> = vec![None; func.num_vregs()];
    let mut scratch = PhaseScratch::new();

    // Warm-up: the pools grow to the function's high-water marks here.
    analysis_pass(&func, &cfg, &target, &pinned, &mut scratch);
    analysis_pass(&func, &cfg, &target, &pinned, &mut scratch);

    let (allocs, ()) = count_allocs(|| {
        for _ in 0..5 {
            analysis_pass(&func, &cfg, &target, &pinned, &mut scratch);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm liveness/node/IFG passes must not touch the heap"
    );
}

#[test]
fn pooled_pipeline_allocates_a_fraction_of_the_unpooled_one() {
    let func = bench_function();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let mut scratch = PhaseScratch::new();
    let mut tracer = NoopTracer;

    let run_pooled = |scratch: &mut PhaseScratch, tracer: &mut NoopTracer| {
        alloc
            .allocate_scratch(
                &func,
                &target,
                tracer,
                CheckMode::Off,
                CheckScope::Full,
                scratch,
            )
            .expect("allocation succeeds")
    };

    // Warm-up run grows the pools; it is not measured.
    let warm = run_pooled(&mut scratch, &mut tracer);

    let (pooled, pooled_out) = count_allocs(|| run_pooled(&mut scratch, &mut tracer));
    let (fresh, fresh_out) =
        count_allocs(|| alloc.allocate_traced(&func, &target, &mut tracer).unwrap());

    // Pooling must not change the allocation: same stats, same rewrite.
    assert_eq!(warm.stats, fresh_out.stats);
    assert_eq!(pooled_out.stats, fresh_out.stats);
    assert_eq!(
        format!("{}", pooled_out.mach),
        format!("{}", fresh_out.mach)
    );

    // The steady-state pooled pipeline still heap-allocates parts of its
    // *results* (the lowered function, name/signature strings) but none of
    // its scratch; require a decisive reduction so a regression that
    // quietly drops a pool from the reuse path fails loudly.
    assert!(
        pooled * 2 <= fresh,
        "pooled pipeline made {pooled} allocations vs {fresh} unpooled — scratch reuse regressed"
    );
}

#[test]
fn recycling_results_cuts_warm_run_allocations_further() {
    let func = bench_function();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let mut tracer = NoopTracer;

    let run = |scratch: &mut PhaseScratch, tracer: &mut NoopTracer| {
        alloc
            .allocate_scratch(
                &func,
                &target,
                tracer,
                CheckMode::Off,
                CheckScope::Full,
                scratch,
            )
            .expect("allocation succeeds")
    };

    // Baseline: warm scratch pools, but every run's results are dropped,
    // so the assignment vector and machine-code block storage are fresh
    // heap allocations each time.
    let mut dropped = PhaseScratch::new();
    let baseline_out = run(&mut dropped, &mut tracer);
    run(&mut dropped, &mut tracer);
    let (unrecycled, _) = count_allocs(|| run(&mut dropped, &mut tracer));

    // Recycled: each run returns its output's buffers to the pools, so
    // the next run's results reuse their capacity.
    let mut recycled = PhaseScratch::new();
    run(&mut recycled, &mut tracer).recycle(&mut recycled);
    run(&mut recycled, &mut tracer).recycle(&mut recycled);
    let (with_recycle, out) = count_allocs(|| run(&mut recycled, &mut tracer));

    // Recycling must not change the allocation.
    assert_eq!(out.stats, baseline_out.stats);
    assert_eq!(format!("{}", out.mach), format!("{}", baseline_out.mach));
    out.recycle(&mut recycled);

    // The recycled buffers are one assignment vector plus one Vec<MInst>
    // per block (the bench function has ~60 blocks, measured gap ~67
    // allocations); pin roughly half that so the assertion fails loudly if
    // recycling silently stops feeding the pools, yet survives a workload
    // regeneration that changes the block count.
    assert!(
        with_recycle + 30 <= unrecycled,
        "recycled warm run made {with_recycle} allocations vs {unrecycled} without recycling — \
         result recycling regressed"
    );
}
