//! Golden round-trip fixtures: committed text covering every IR
//! instruction variant and every machine instruction variant must
//! parse, verify, and round-trip exactly.
//!
//! The coverage assertions make the fixtures self-policing: adding an
//! instruction variant without extending the fixture (and both parsers)
//! fails here.

use pdgc::ir::{parse_functions, Function, Inst};
use pdgc::target::{parse_mach_function, MInst};
use std::collections::BTreeSet;

const IR_FIXTURE: &str = include_str!("golden/ir_all_insts.pdgc");
const MACH_FIXTURE: &str = include_str!("golden/mach_all_insts.txt");

fn inst_variant(inst: &Inst) -> &'static str {
    match inst {
        Inst::Copy { .. } => "Copy",
        Inst::Iconst { .. } => "Iconst",
        Inst::Fconst { .. } => "Fconst",
        Inst::Load { .. } => "Load",
        Inst::Load8 { .. } => "Load8",
        Inst::Store { .. } => "Store",
        Inst::Bin { .. } => "Bin",
        Inst::BinImm { .. } => "BinImm",
        Inst::Call { .. } => "Call",
        Inst::Jump { .. } => "Jump",
        Inst::Branch { .. } => "Branch",
        Inst::BranchImm { .. } => "BranchImm",
        Inst::Ret { .. } => "Ret",
        Inst::Reload { .. } => "Reload",
        Inst::Spill { .. } => "Spill",
    }
}

fn minst_variant(inst: &MInst) -> &'static str {
    match inst {
        MInst::Copy { .. } => "Copy",
        MInst::Iconst { .. } => "Iconst",
        MInst::Fconst { .. } => "Fconst",
        MInst::Load { .. } => "Load",
        MInst::Load8 { .. } => "Load8",
        MInst::LoadPair { .. } => "LoadPair",
        MInst::Store { .. } => "Store",
        MInst::SpillLoad { .. } => "SpillLoad",
        MInst::SpillStore { .. } => "SpillStore",
        MInst::Bin { .. } => "Bin",
        MInst::BinImm { .. } => "BinImm",
        MInst::Call { .. } => "Call",
        MInst::Jump { .. } => "Jump",
        MInst::Branch { .. } => "Branch",
        MInst::BranchImm { .. } => "BranchImm",
        MInst::Ret => "Ret",
    }
}

/// Asserts the full print → parse → print contract for one function.
/// `structural` is off for the NaN fixture (NaN breaks derived
/// equality), where the printed fixpoint is the whole contract.
fn assert_ir_roundtrip(f: &Function, structural: bool) {
    let printed = f.to_string();
    let reparsed = pdgc::ir::parse_function(&printed)
        .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{printed}", f.name));
    if structural {
        assert_eq!(reparsed, f.with_canonical_callees(), "{}", f.name);
    }
    assert_eq!(reparsed.to_string(), printed, "{} fixpoint", f.name);
}

#[test]
fn ir_fixture_covers_every_inst_variant_and_roundtrips() {
    let funcs = parse_functions(IR_FIXTURE).expect("golden IR fixture parses");
    assert_eq!(funcs.len(), 3);
    let mut seen = BTreeSet::new();
    let mut phis = 0usize;
    for f in &funcs {
        f.verify().unwrap_or_else(|e| panic!("{}: {e}", f.name));
        for b in f.block_ids() {
            phis += f.block(b).phis.len();
            for inst in &f.block(b).insts {
                seen.insert(inst_variant(inst));
            }
        }
        assert_ir_roundtrip(f, f.name != "nonfinite_floats");
    }
    let want: BTreeSet<&str> = [
        "Copy", "Iconst", "Fconst", "Load", "Load8", "Store", "Bin", "BinImm", "Call", "Jump",
        "Branch", "BranchImm", "Ret", "Reload", "Spill",
    ]
    .into();
    assert_eq!(seen, want, "fixture must cover every Inst variant");
    assert!(phis > 0, "fixture must cover phis");
}

#[test]
fn ir_fixture_parses_identically_through_a_second_trip() {
    // parse ∘ print is idempotent from the first trip on: the first
    // reparse is canonical, so the second is the identity.
    for f in parse_functions(IR_FIXTURE).expect("golden IR fixture parses") {
        let once = pdgc::ir::parse_function(&f.to_string()).expect("first trip");
        let twice = pdgc::ir::parse_function(&once.to_string()).expect("second trip");
        assert_eq!(once.to_string(), twice.to_string(), "{}", f.name);
    }
}

#[test]
fn mach_fixture_covers_every_minst_variant_and_roundtrips() {
    let m = parse_mach_function(MACH_FIXTURE).expect("golden mach fixture parses");
    let seen: BTreeSet<&str> = m.blocks.iter().flatten().map(minst_variant).collect();
    let want: BTreeSet<&str> = [
        "Copy", "Iconst", "Fconst", "Load", "Load8", "LoadPair", "Store", "SpillLoad",
        "SpillStore", "Bin", "BinImm", "Call", "Jump", "Branch", "BranchImm", "Ret",
    ]
    .into();
    assert_eq!(seen, want, "fixture must cover every MInst variant");
    assert_eq!(m.num_slots, 2);
    assert_eq!(m.used_nonvolatiles.len(), 2);
    assert_eq!(m.callees, vec!["g".to_string(), "log".to_string()]);

    let printed = m.to_string();
    let reparsed = parse_mach_function(&printed).expect("reparse of printed mach");
    assert_eq!(reparsed, m);
    assert_eq!(reparsed.to_string(), printed, "mach fixpoint");
}
