//! SPL decomposition contract, proven end to end.
//!
//! * **Bit-identity** — on every builtin target's adaptation of random
//!   generated workloads, the region-composed liveness and loop
//!   structure (`Spl::liveness_in`, `Spl::loops`) must equal the
//!   iterative solvers exactly, block for block and bit for bit.
//! * **Coverage** — the structured workload generator emits reducible,
//!   SPL-shaped CFGs; the fast path must actually engage on them, and
//!   the pipeline's `spl_analyses_fast` counter must record it.
//! * **Fallback** — an irreducible CFG (two distinct entries into one
//!   cycle) must decline the fast path at the analysis level and take
//!   the iterative fallback through the *full* pipeline, with the
//!   allocation still symbolically proven and the `spl_analyses_fallback`
//!   counter recording the decline.

use proptest::prelude::*;

use pdgc::analysis::{Cfg, Dominators, Liveness, LivenessScratch, Loops, Spl};
use pdgc::obs::Counter;
use pdgc::prelude::*;
use pdgc::workloads::WorkloadProfile;

fn profile(seed: u64, ops: usize, loop_depth: u32, call_density: f64, diamond_density: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "spl-prop".into(),
        seed,
        num_funcs: 2,
        ops_per_func: ops,
        loop_depth,
        call_density,
        float_ratio: 0.2,
        paired_density: 0.3,
        byte_density: 0.15,
        pressure: 9,
        diamond_density,
        pair_stride: 8,
        pair_align: 1,
    }
}

/// Asserts the SPL fast paths on `func` (φ-lowered against `target`,
/// exactly as the pipeline analyzes it) agree exactly with the
/// iterative solvers, reusing `scratch` so the pooled path is the one
/// under test. Returns whether the function was SPL-shaped.
fn assert_bit_identical(
    raw: &Function,
    target: &TargetDesc,
    scratch: &mut LivenessScratch,
) -> Result<bool, TestCaseError> {
    let lowered = match pdgc::core::lower::lower_abi(raw, target) {
        Ok(l) => l,
        // Tiny targets (figure7 has two argument registers) legitimately
        // reject some generated signatures; there is no lowered body to
        // compare on, so there is nothing to prove for this pair.
        Err(_) => return Ok(false),
    };
    let func = &lowered.func;
    let cfg = Cfg::compute(func);
    let spl = Spl::compute(&cfg);
    match spl.liveness_in(func, &cfg, scratch) {
        Some(fast) => {
            let slow = Liveness::compute(func, &cfg);
            for b in func.block_ids() {
                prop_assert_eq!(fast.live_in(b), slow.live_in(b),
                    "live_in({}) diverges in {}", b, func.name);
                prop_assert_eq!(fast.live_out(b), slow.live_out(b),
                    "live_out({}) diverges in {}", b, func.name);
            }
        }
        None => prop_assert!(!spl.is_spl(), "{}: SPL shape but no composed liveness", func.name),
    }
    match spl.loops() {
        Some(fast) => {
            let dom = Dominators::compute(&cfg);
            let slow = Loops::compute(&cfg, &dom);
            prop_assert_eq!(fast.headers(), slow.headers(), "headers diverge in {}", func.name);
            for b in func.block_ids() {
                prop_assert_eq!(fast.depth(b), slow.depth(b),
                    "depth({}) diverges in {}", b, func.name);
                prop_assert_eq!(fast.freq(b), slow.freq(b),
                    "freq({}) diverges in {}", b, func.name);
            }
        }
        None => prop_assert!(!spl.depth_fast_ok(), "{}: depth ok but no composed loops", func.name),
    }
    Ok(spl.is_spl())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Region-composed liveness and frequency are bit-identical to the
    /// iterative solvers on every builtin target's adaptation of random
    /// generated workloads (figure7's three-register machine included —
    /// the comparison needs analyses, not an allocation).
    #[test]
    fn spl_composition_bit_identical_on_every_builtin_target(
        seed in any::<u64>(),
        ops in 10usize..45,
        loop_depth in 0u32..3,
        call_density in 0.0f64..0.4,
        diamond_density in 0.0f64..0.5,
    ) {
        let registry = TargetRegistry::builtin();
        let mut scratch = LivenessScratch::new();
        for name in registry.names() {
            let target = registry.resolve(name).expect("registry target");
            let prof = profile(seed, ops, loop_depth, call_density, diamond_density)
                .for_target(target);
            for func in &generate(&prof).funcs {
                prop_assume!(func.verify().is_ok());
                assert_bit_identical(func, target, &mut scratch)?;
            }
        }
    }
}

/// The structured generator's output is the workload the fast path
/// exists for: every function of the default suite must be SPL-shaped,
/// not just bit-identical-when-it-happens-to-match.
#[test]
fn generated_workloads_take_the_fast_path() {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let mut scratch = LivenessScratch::new();
    let mut total = 0usize;
    for prof in specjvm_suite().iter().take(3) {
        for func in &generate(prof).funcs {
            let shaped = assert_bit_identical(func, &target, &mut scratch).expect("bit-identity");
            assert!(shaped, "{}: generator emitted a non-SPL CFG", func.name);
            total += 1;
        }
    }
    assert!(total > 0, "suite produced no functions");
}

/// Two distinct entries into one cycle: `entry → {a, c}`, `a ⇄ c`.
/// No block dominates the cycle, so it has no natural-loop header and
/// no SPL decomposition.
fn irreducible() -> Function {
    let mut b = FunctionBuilder::new(
        "irreducible",
        vec![RegClass::Int, RegClass::Int],
        Some(RegClass::Int),
    );
    let p = b.param(0);
    let q = b.param(1);
    let a = b.create_block();
    let c = b.create_block();
    let exit = b.create_block();
    b.branch_imm(CmpOp::Gt, p, 0, a, c);
    b.switch_to(a);
    let x = b.bin(BinOp::Add, p, q);
    b.branch_imm(CmpOp::Gt, x, 9, c, exit);
    b.switch_to(c);
    let y = b.bin(BinOp::Mul, p, q);
    b.branch_imm(CmpOp::Lt, y, 5, a, exit);
    b.switch_to(exit);
    let r = b.bin(BinOp::Add, p, q);
    b.ret(Some(r));
    let f = b.finish();
    assert!(f.verify().is_ok());
    f
}

/// The irreducible fixture declines the fast path at the analysis level.
#[test]
fn irreducible_cfg_declines_the_fast_path() {
    let f = irreducible();
    let cfg = Cfg::compute(&f);
    let spl = Spl::compute(&cfg);
    assert!(!spl.is_spl(), "irreducible CFG must not decompose");
    assert!(spl.liveness_in(&f, &cfg, &mut LivenessScratch::new()).is_none());
    assert!(spl.loops().is_none());
}

/// …and through the full pipeline the fallback engages, is recorded in
/// the metrics registry, and the allocation is still symbolically
/// proven.
#[test]
fn irreducible_cfg_takes_the_fallback_through_the_pipeline() {
    let f = irreducible();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let mut scratch = PhaseScratch::default();
    let out = alloc
        .allocate_scratch(
            &f,
            &target,
            &mut NoopTracer,
            CheckMode::Always,
            CheckScope::Full,
            &mut scratch,
        )
        .expect("irreducible function allocates via the fallback");
    assert!(
        scratch.metrics.get(Counter::SplAnalysesFallback) > 0,
        "fallback path not recorded"
    );
    assert_eq!(
        scratch.metrics.get(Counter::SplAnalysesFast),
        0,
        "irreducible CFG must never take the fast path"
    );
    // The allocation itself is behaviorally correct.
    let args = default_args(&f);
    let reference = run_ir(&f, &args, DEFAULT_FUEL).expect("IR execution");
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).expect("mach execution");
    check_equivalent(&reference, &mach).expect("IR/mach equivalence");
}

/// An SPL-shaped loop function takes the fast path through the full
/// pipeline and the coverage counters show it.
#[test]
fn spl_shaped_function_is_counted_as_fast() {
    let mut b = FunctionBuilder::new("spl", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    let z = b.iconst(0);
    b.jump(header);
    b.switch_to(header);
    b.branch_imm(CmpOp::Gt, p, 0, body, exit);
    b.switch_to(body);
    let s = b.bin(BinOp::Add, p, z);
    let _ = b.bin_imm(BinOp::Sub, s, 1);
    b.jump(header);
    b.switch_to(exit);
    b.ret(Some(p));
    let f = b.finish();
    assert!(f.verify().is_ok());

    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let mut scratch = PhaseScratch::default();
    alloc
        .allocate_scratch(
            &f,
            &target,
            &mut NoopTracer,
            CheckMode::Always,
            CheckScope::Full,
            &mut scratch,
        )
        .expect("allocation succeeds");
    assert!(scratch.metrics.get(Counter::SplAnalysesFast) > 0);
    assert!(scratch.metrics.get(Counter::SplFreqFast) > 0);
    assert!(scratch.metrics.get(Counter::SplRegions) > 0);
    assert!(scratch.metrics.get(Counter::SplLoopRegions) > 0);
    assert_eq!(scratch.metrics.get(Counter::SplAnalysesFallback), 0);
}
