//! Differential correctness: every allocator, on every workload function,
//! under every pressure model, must produce machine code observably
//! equivalent to the virtual-register original — same return value, same
//! call trace (callee + argument values, in order), same final memory.
//!
//! The machine interpreter clobbers every volatile register at calls and
//! delivers arguments only through the convention's argument registers, so
//! caller-save omissions, argument mis-routing, bad coalescing, and spill
//! bugs all surface here. Every allocation additionally runs under the
//! symbolic checker (`pdgc-check`, `CheckMode::Always`), which proves the
//! same properties statically over all paths, not just the executed one.
//!
//! The suite is sharded **per allocator** (one `#[test]` each, generated
//! by `differential_tests!`), so the test harness runs allocators in
//! parallel and a failure names the culprit directly. Generated workloads
//! and reference interpretations are computed once and shared across
//! shards. Run with `--nocapture` to see per-case allocator timings.

use pdgc::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The generated SPECjvm98-analog workloads, computed once per process.
fn workloads() -> &'static [Workload] {
    static W: OnceLock<Vec<Workload>> = OnceLock::new();
    W.get_or_init(|| specjvm_suite().iter().map(generate).collect())
}

/// The reference (virtual-register) interpretation of one workload
/// function, memoized so the nine allocator shards don't re-interpret
/// the same functions nine times.
fn reference_for(wi: usize, fi: usize) -> Arc<pdgc::sim::ExecOutcome> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Arc<pdgc::sim::ExecOutcome>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().unwrap().get(&(wi, fi)) {
        return Arc::clone(hit);
    }
    let func = &workloads()[wi].funcs[fi];
    let outcome = run_ir(func, &default_args(func), DEFAULT_FUEL)
        .unwrap_or_else(|e| panic!("{}: reference failed: {e}", func.name));
    let outcome = Arc::new(outcome);
    cache
        .lock()
        .unwrap()
        .insert((wi, fi), Arc::clone(&outcome));
    outcome
}

/// Checks one allocator against every workload function (up to
/// `per_workload` each) under one pressure model, timing each case.
fn check_allocator_with(alloc: &dyn RegisterAllocator, pressure: PressureModel, per_workload: usize) {
    let target = TargetDesc::ia64_like(pressure);
    let started = Instant::now();
    let mut cases = 0usize;
    let mut slowest: (Duration, String) = (Duration::ZERO, String::new());
    for (wi, w) in workloads().iter().enumerate() {
        for (fi, func) in w.funcs.iter().take(per_workload).enumerate() {
            let args = default_args(func);
            let reference = reference_for(wi, fi);
            let case_started = Instant::now();
            let out = alloc
                .allocate_checked(func, &target, &mut NoopTracer, CheckMode::Always)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", alloc.name(), func.name));
            let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap_or_else(|e| {
                panic!("{} on {}: machine run failed: {e}", alloc.name(), func.name)
            });
            check_equivalent(reference.as_ref(), &mach).unwrap_or_else(|e| {
                panic!(
                    "{} mis-allocated {} ({:?}): {e}",
                    alloc.name(),
                    func.name,
                    pressure
                )
            });
            let elapsed = case_started.elapsed();
            eprintln!(
                "  case {:<22} {:<16} {:?} {:>9.2?}",
                alloc.name(),
                func.name,
                pressure,
                elapsed
            );
            if elapsed > slowest.0 {
                slowest = (elapsed, func.name.clone());
            }
            cases += 1;
        }
    }
    eprintln!(
        "differential {:<22} {:?}: {cases} cases in {:.2?} (slowest {} at {:.2?})",
        alloc.name(),
        pressure,
        started.elapsed(),
        slowest.1,
        slowest.0
    );
}

/// The toy-8-register scenario: heavy spilling on real code. (Smaller
/// files can make Chaitin-style allocation infeasible outright: one
/// instruction's reload temporaries plus pinned argument registers can
/// exceed the file, which no allocator in this family can fix.)
fn check_allocator_tiny(alloc: &dyn RegisterAllocator) {
    let target = TargetDesc::toy(8);
    let wi = 0; // compress: highest pressure
    for (fi, func) in workloads()[wi].funcs.iter().take(3).enumerate() {
        let args = default_args(func);
        let reference = reference_for(wi, fi);
        let out = alloc
            .allocate_checked(func, &target, &mut NoopTracer, CheckMode::Always)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", alloc.name(), func.name));
        assert!(out.stats.spill_instructions > 0, "toy(8) must force spills");
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach)
            .unwrap_or_else(|e| panic!("{} mis-allocated {}: {e}", alloc.name(), func.name));
    }
}

/// One `#[test]` per allocator and scenario, so shards parallelize and
/// failures name the allocator. High pressure covers every workload
/// function; middle/low cover 2 per workload (the pressure-independent
/// bulk is already covered by high, and the per-target matrix in
/// `tests/target_matrix.rs` adds further coverage per registered
/// target, so the low-pressure shards stay trimmed to keep CI
/// wall-clock flat).
macro_rules! differential_tests {
    ($($mod_name:ident => $alloc:expr;)+) => {
        $(
            mod $mod_name {
                use super::*;

                #[test]
                fn preserves_semantics_high_pressure() {
                    check_allocator_with(&$alloc, PressureModel::High, usize::MAX);
                }

                #[test]
                fn preserves_semantics_middle_pressure() {
                    check_allocator_with(&$alloc, PressureModel::Middle, 2);
                }

                #[test]
                fn preserves_semantics_low_pressure() {
                    check_allocator_with(&$alloc, PressureModel::Low, 2);
                }

                #[test]
                fn preserves_semantics_tiny_register_file() {
                    check_allocator_tiny(&$alloc);
                }
            }
        )+

        /// The allocator set above must stay in sync with
        /// [`pdgc::all_allocators`]; this guard fails when an allocator
        /// is added there without a differential shard here.
        #[test]
        fn shards_cover_all_allocators() {
            let sharded = [$($alloc.name()),+];
            let all: Vec<&str> = pdgc::all_allocators().iter().map(|a| a.name()).collect();
            for name in &all {
                assert!(
                    sharded.contains(name),
                    "allocator {name} has no differential shard"
                );
            }
            assert_eq!(sharded.len(), all.len(), "stale shard list");
        }
    };
}

differential_tests! {
    chaitin => ChaitinAllocator;
    briggs => BriggsAllocator;
    iterated => IteratedAllocator;
    optimistic => OptimisticAllocator;
    callcost => CallCostAllocator;
    priority => PriorityAllocator;
    pdgc_coalescing => PreferenceAllocator::coalescing_only();
    pdgc_full => PreferenceAllocator::full();
    pdgc_full_precoalesce => PreferenceAllocator::full().with_precoalesce();
}
