//! Differential correctness: every allocator, on every workload function,
//! under every pressure model, must produce machine code observably
//! equivalent to the virtual-register original — same return value, same
//! call trace (callee + argument values, in order), same final memory.
//!
//! The machine interpreter clobbers every volatile register at calls and
//! delivers arguments only through the convention's argument registers, so
//! caller-save omissions, argument mis-routing, bad coalescing, and spill
//! bugs all surface here.

use pdgc::all_allocators;
use pdgc::prelude::*;

fn check_workload_with(pressure: PressureModel, per_workload: usize) {
    let target = TargetDesc::ia64_like(pressure);
    for prof in specjvm_suite() {
        let w = generate(&prof);
        for func in w.funcs.iter().take(per_workload) {
            let args = default_args(func);
            let reference = run_ir(func, &args, DEFAULT_FUEL)
                .unwrap_or_else(|e| panic!("{}: reference failed: {e}", func.name));
            for alloc in all_allocators() {
                let out = alloc
                    .allocate(func, &target)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", alloc.name(), func.name));
                let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL)
                    .unwrap_or_else(|e| {
                        panic!("{} on {}: machine run failed: {e}", alloc.name(), func.name)
                    });
                check_equivalent(&reference, &mach).unwrap_or_else(|e| {
                    panic!(
                        "{} mis-allocated {} ({:?}): {e}",
                        alloc.name(),
                        func.name,
                        pressure
                    )
                });
            }
        }
    }
}

#[test]
fn all_allocators_preserve_semantics_high_pressure() {
    check_workload_with(PressureModel::High, usize::MAX);
}

#[test]
fn all_allocators_preserve_semantics_middle_pressure() {
    check_workload_with(PressureModel::Middle, 3);
}

#[test]
fn all_allocators_preserve_semantics_low_pressure() {
    check_workload_with(PressureModel::Low, 3);
}

/// An eight-register toy machine exercises heavy spilling on real code.
/// (Smaller files can make Chaitin-style allocation infeasible outright:
/// one instruction's reload temporaries plus pinned argument registers can
/// exceed the file, which no allocator in this family can fix.)
#[test]
fn all_allocators_preserve_semantics_tiny_register_file() {
    let target = TargetDesc::toy(8);
    let prof = &specjvm_suite()[0]; // compress: highest pressure
    let w = generate(prof);
    for func in w.funcs.iter().take(3) {
        let args = default_args(func);
        let reference = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        for alloc in all_allocators() {
            let out = alloc
                .allocate(func, &target)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", alloc.name(), func.name));
            assert!(out.stats.spill_instructions > 0, "toy(8) must force spills");
            let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
            check_equivalent(&reference, &mach).unwrap_or_else(|e| {
                panic!("{} mis-allocated {}: {e}", alloc.name(), func.name)
            });
        }
    }
}
