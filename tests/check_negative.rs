//! Negative paths for the symbolic checker, through the public facade:
//! take a *real* allocation (proven correct first), hand-corrupt one
//! aspect of it — assignment class, register file bounds, interference,
//! the paired-load rule, spill-slot bookkeeping, caller-save code — and
//! prove the checker rejects it with the right violation category. These
//! complement the unit suite in `crates/check`: here the baseline
//! artifacts come from the actual pipeline, so a corruption that the
//! checker misses would mean a real allocator bug could slip through.

use pdgc::ir::Inst;
use pdgc::prelude::*;
use pdgc::target::MInst;

fn sum2() -> Function {
    let mut b = FunctionBuilder::new("sum2", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let x = b.load(p, 0);
    let y = b.load(p, 8);
    let s = b.bin(BinOp::Add, x, y);
    b.ret(Some(s));
    b.finish()
}

fn proven(f: &Function, t: &TargetDesc) -> AllocOutput {
    let out = PreferenceAllocator::full().allocate(f, t).expect("allocation");
    check_allocation(&out.lowered, &out.assignment, &out.mach, t)
        .expect("the uncorrupted allocation must be provable");
    out
}

fn kinds(err: &CheckError) -> Vec<&'static str> {
    err.violations.iter().map(Violation::kind).collect()
}

fn rep(r: &mut PhysReg, from: PhysReg, to: PhysReg) {
    if *r == from {
        *r = to;
    }
}

/// Replaces every occurrence of `from` with `to` across the machine code,
/// so a corruption stays self-consistent and only the targeted property
/// breaks.
fn subst(m: &mut MachFunction, from: PhysReg, to: PhysReg) {
    for blk in &mut m.blocks {
        for inst in blk {
            match inst {
                MInst::Copy { dst, src } => {
                    rep(dst, from, to);
                    rep(src, from, to);
                }
                MInst::Iconst { dst, .. } | MInst::Fconst { dst, .. } => rep(dst, from, to),
                MInst::Load { dst, base, .. } | MInst::Load8 { dst, base, .. } => {
                    rep(dst, from, to);
                    rep(base, from, to);
                }
                MInst::LoadPair {
                    dst1, dst2, base, ..
                } => {
                    rep(dst1, from, to);
                    rep(dst2, from, to);
                    rep(base, from, to);
                }
                MInst::Store { src, base, .. } => {
                    rep(src, from, to);
                    rep(base, from, to);
                }
                MInst::Bin { dst, lhs, rhs, .. } => {
                    rep(dst, from, to);
                    rep(lhs, from, to);
                    rep(rhs, from, to);
                }
                MInst::BinImm { dst, lhs, .. } => {
                    rep(dst, from, to);
                    rep(lhs, from, to);
                }
                MInst::Call {
                    arg_regs, ret_reg, ..
                } => {
                    for r in arg_regs {
                        rep(r, from, to);
                    }
                    if let Some(r) = ret_reg {
                        rep(r, from, to);
                    }
                }
                MInst::SpillLoad { dst, .. } => rep(dst, from, to),
                MInst::SpillStore { src, .. } => rep(src, from, to),
                MInst::Branch { lhs, rhs, .. } => {
                    rep(lhs, from, to);
                    rep(rhs, from, to);
                }
                MInst::BranchImm { lhs, .. } => rep(lhs, from, to),
                MInst::Jump { .. } | MInst::Ret => {}
            }
        }
    }
}

#[test]
fn rejects_a_wrong_class_corruption_of_a_real_allocation() {
    let f = sum2();
    let t = TargetDesc::ia64_like(PressureModel::Middle);
    let out = proven(&f, &t);
    let mut a = out.assignment.clone();
    let victim = a
        .iter()
        .position(|r| matches!(r, Some(r) if r.class() == RegClass::Int))
        .expect("an int-assigned vreg");
    a[victim] = Some(PhysReg::float(1));
    let err = check_allocation(&out.lowered, &a, &out.mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"bad-register"), "{err}");
}

#[test]
fn rejects_an_out_of_file_corruption_of_a_real_allocation() {
    let f = sum2();
    let t = TargetDesc::ia64_like(PressureModel::Middle); // 24 int registers
    let out = proven(&f, &t);
    let mut a = out.assignment.clone();
    let victim = a.iter().position(Option::is_some).unwrap();
    a[victim] = Some(PhysReg::int(63));
    let err = check_allocation(&out.lowered, &a, &out.mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"bad-register"), "{err}");
}

#[test]
fn rejects_interfering_vregs_forced_into_one_register() {
    // Offsets 0 and 4 cannot fuse under the stride-8 parity rule, so the
    // machine code keeps two plain loads whose destinations we can retarget.
    let mut b = FunctionBuilder::new("nofuse", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let x = b.load(p, 0);
    let y = b.load(p, 4);
    let s = b.bin(BinOp::Add, x, y);
    b.ret(Some(s));
    let f = b.finish();
    let t = TargetDesc::ia64_like(PressureModel::Middle);
    let out = proven(&f, &t);

    // The two loaded values are simultaneously live (both feed the add).
    let loads: Vec<VReg> = out
        .lowered
        .blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter_map(|i| match i {
            Inst::Load { dst, .. } => Some(*dst),
            _ => None,
        })
        .collect();
    assert_eq!(loads.len(), 2);
    let (x, y) = (loads[0], loads[1]);
    let (rx, ry) = (out.assignment[x.index()].unwrap(), out.assignment[y.index()].unwrap());
    assert_ne!(rx, ry);
    // Force y into x's register — in the assignment and, surgically, at
    // y's machine definition and use, leaving everything else (notably
    // the load base) untouched, so only interference is broken.
    let mut a = out.assignment.clone();
    a[y.index()] = Some(rx);
    let mut mach = out.mach.clone();
    let mut patched = 0;
    for inst in &mut mach.blocks[0] {
        match inst {
            MInst::Load { dst, offset: 4, .. } if *dst == ry => {
                *dst = rx;
                patched += 1;
            }
            MInst::Bin { rhs, .. } if *rhs == ry => {
                *rhs = rx;
                patched += 1;
            }
            _ => {}
        }
    }
    assert_eq!(patched, 2, "expected to retarget y's definition and its use");
    let err = check_allocation(&out.lowered, &a, &mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"interference"), "{err}");
}

#[test]
fn rejects_a_clobbered_pair_in_a_real_allocation() {
    let f = sum2();
    let t = TargetDesc::ia64_like(PressureModel::Middle);
    let out = proven(&f, &t);
    assert_eq!(out.stats.paired_loads, 1, "sum2 must fuse on the parity target");
    let (d1, d2) = out
        .mach
        .blocks
        .iter()
        .flatten()
        .find_map(|i| match i {
            MInst::LoadPair { dst1, dst2, .. } => Some((*dst1, *dst2)),
            _ => None,
        })
        .unwrap();
    // A register unused anywhere in the code and not adjacent to dst1, so
    // the substitution can only break the pairing rule.
    let used: Vec<PhysReg> = out.mach.blocks.iter().flatten().flat_map(|i| i.regs()).collect();
    let bad = (0..24u8)
        .map(PhysReg::int)
        .find(|r| !used.contains(r) && r.index().abs_diff(d1.index()) > 1)
        .unwrap();
    let mut mach = out.mach.clone();
    subst(&mut mach, d2, bad);
    let mut a = out.assignment.clone();
    for slot in a.iter_mut() {
        if *slot == Some(d2) {
            *slot = Some(bad);
        }
    }
    let err = check_allocation(&out.lowered, &a, &mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"bad-pair"), "{err}");
}

#[test]
fn rejects_a_slot_read_before_any_possible_write() {
    // Hand-built through the facade: the machine code reloads a frame
    // slot no path ever spills to, which can only yield garbage.
    let mut b = FunctionBuilder::new("rbw", vec![], Some(RegClass::Int));
    let v = b.iconst(7);
    b.ret(Some(v));
    let mut f = b.finish();
    f.blocks[0].insts[0] = Inst::Reload { dst: v, slot: 0 };
    let a = vec![Some(PhysReg::int(0)); f.num_vregs()];
    let mach = MachFunction {
        name: f.name.clone(),
        sig: f.sig.clone(),
        blocks: vec![vec![MInst::SpillLoad { dst: PhysReg::int(0), slot: 0 }, MInst::Ret]],
        num_slots: 1,
        used_nonvolatiles: Vec::new(),
        callees: f.callees.clone(),
    };
    let t = TargetDesc::ia64_like(PressureModel::Middle);
    let err = check_allocation(&f, &a, &mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"bad-slot"), "{err}");
    assert!(err.to_string().contains("read before any possible write"), "{err}");
}

#[test]
fn rejects_a_real_allocation_with_its_caller_save_code_removed() {
    // A value live across a call: whichever allocator parks it in a
    // volatile register must emit save/restore code around the call.
    // Deleting that pair (machine-only instructions, so the IR <-> machine
    // correspondence is untouched) must surface as a stale value at the
    // use after the call.
    // Figure 7's three-register file (one non-volatile) cannot hold two
    // values across a call without saving one of them.
    let mut b = FunctionBuilder::new("across", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let q = b.load(p, 0);
    let q2 = b.load(p, 8);
    b.call("g", vec![], None);
    let s = b.bin(BinOp::Add, q, q2);
    b.ret(Some(s));
    let f = b.finish();
    let t = TargetDesc::figure7();

    let out = PreferenceAllocator::full().allocate(&f, &t).expect("allocation");
    assert!(out.stats.caller_save_insts > 0, "expected caller-save traffic");
    check_allocation(&out.lowered, &out.assignment, &out.mach, &t)
        .expect("the uncorrupted allocation must be provable");

    let mut mach = out.mach.clone();
    let blk = mach
        .blocks
        .iter_mut()
        .find(|b| b.iter().any(|i| matches!(i, MInst::Call { .. })))
        .unwrap();
    let call = blk.iter().position(|i| matches!(i, MInst::Call { .. })).unwrap();
    assert!(
        matches!(blk[call - 1], MInst::SpillStore { .. })
            && matches!(blk[call + 1], MInst::SpillLoad { .. }),
        "expected save/restore bracketing the call"
    );
    blk.remove(call + 1);
    blk.remove(call - 1);

    let err = check_allocation(&out.lowered, &out.assignment, &mach, &t).unwrap_err();
    assert!(kinds(&err).contains(&"stale-value"), "{err}");
}
