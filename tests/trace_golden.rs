//! Golden trace of the paper's Figure 7 walkthrough: the decision-event
//! sequence emitted by the integrated select phase is part of the
//! observable behavior this repo pins down. A change here means the
//! allocator visits nodes in a different order or resolves preferences
//! differently — which must be a deliberate algorithmic change, never
//! drift. (The paper's §5.3 narrative is exactly this sequence.)

use pdgc::obs::{event_json, Event, Phase};
use pdgc::prelude::*;

/// The Figure 7(a) program (same construction as `tests/figure7.rs`).
fn figure7_func() -> Function {
    let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
    let arg0 = b.param(0);
    let header = b.create_block();
    let exit = b.create_block();
    let v0 = b.load(arg0, 0);
    b.jump(header);
    b.switch_to(header);
    let v1 = b.load(v0, 0);
    let v2 = b.load(v0, 8);
    let v3 = b.copy(v0);
    let v4 = b.bin(BinOp::Add, v1, v2);
    b.call("g", vec![v3], None);
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Add,
        dst: v0,
        lhs: v4,
        imm: 1,
    });
    b.branch_imm(CmpOp::Ne, v0, 0, header, exit);
    b.switch_to(exit);
    b.ret(None);
    b.finish()
}

fn traced_run() -> (pdgc::core::AllocOutput, RecordingTracer) {
    let func = figure7_func();
    let target = TargetDesc::figure7();
    let mut rec = RecordingTracer::default();
    let out = PreferenceAllocator::full()
        .allocate_traced(&func, &target, &mut rec)
        .unwrap();
    (out, rec)
}

/// The exact decision lines the JSON sink emits for Figure 7 — one per
/// selected node, in CPG walk order. Decision events carry no timings,
/// so their serialized form is fully deterministic.
const GOLDEN_DECISIONS: [&str; 6] = [
    // v4: volatility screening narrows {r1,r2} to the non-volatile r2.
    r#"{"type":"decision","round":1,"class":"int","node":8,"members":[5],"frontier":4,"differential":28,"available":2,"considered":[{"kind":"prefers","target":"non-volatile","strength":28,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"volatile","strength":0,"deferred":false,"narrowed":false,"survivors":1}],"verdict":"assigned","reg":"r2"}"#,
    r#"{"type":"decision","round":1,"class":"int","node":7,"members":[4],"frontier":3,"differential":10,"available":2,"considered":[{"kind":"coalesce","target":"r0","strength":40,"deferred":false,"narrowed":true,"survivors":1},{"kind":"coalesce","target":"node:4","strength":40,"deferred":true,"narrowed":true,"survivors":1},{"kind":"prefers","target":"volatile","strength":30,"deferred":false,"narrowed":true,"survivors":1}],"verdict":"assigned","reg":"r0"}"#,
    r#"{"type":"decision","round":1,"class":"int","node":3,"members":[0],"frontier":3,"differential":3,"available":3,"considered":[{"kind":"coalesce","target":"r0","strength":4,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"volatile","strength":3,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"non-volatile","strength":1,"deferred":false,"narrowed":false,"survivors":1}],"verdict":"assigned","reg":"r0"}"#,
    // v1/v2: the seq+/seq- pair lands in adjacent registers r1/r2.
    r#"{"type":"decision","round":1,"class":"int","node":5,"members":[2],"frontier":2,"differential":2,"available":2,"considered":[{"kind":"seq+","target":"node:6","strength":50,"deferred":true,"narrowed":true,"survivors":2},{"kind":"prefers","target":"volatile","strength":30,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"non-volatile","strength":28,"deferred":false,"narrowed":false,"survivors":1}],"verdict":"assigned","reg":"r1"}"#,
    r#"{"type":"decision","round":1,"class":"int","node":6,"members":[3],"frontier":1,"differential":0,"available":1,"considered":[{"kind":"seq-","target":"node:5","strength":48,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"non-volatile","strength":28,"deferred":false,"narrowed":true,"survivors":1}],"verdict":"assigned","reg":"r2"}"#,
    // v3 coalesces into v0's register across the call.
    r#"{"type":"decision","round":1,"class":"int","node":4,"members":[1],"frontier":1,"differential":0,"available":1,"considered":[{"kind":"coalesce","target":"node:7","strength":101,"deferred":false,"narrowed":true,"survivors":1},{"kind":"prefers","target":"volatile","strength":91,"deferred":false,"narrowed":true,"survivors":1}],"verdict":"assigned","reg":"r0"}"#,
];

#[test]
fn figure7_decision_sequence_is_stable() {
    let (_, rec) = traced_run();
    let got: Vec<String> = rec
        .events()
        .iter()
        .filter(|e| matches!(e, Event::Decision(_)))
        .map(|e| event_json(e, false).unwrap())
        .collect();
    assert_eq!(got.len(), GOLDEN_DECISIONS.len(), "decision count changed");
    for (i, (got, want)) in got.iter().zip(GOLDEN_DECISIONS).enumerate() {
        assert_eq!(got, want, "decision {i} diverged from the golden trace");
    }
}

#[test]
fn figure7_phase_spans_cover_the_pipeline() {
    let (_, rec) = traced_run();
    let spans: Vec<(Phase, u32, Option<RegClass>)> = rec
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Span { phase, round, class, nanos: _ } => Some((*phase, *round, *class)),
            _ => None,
        })
        .collect();
    let int = Some(RegClass::Int);
    let float = Some(RegClass::Float);
    assert_eq!(
        spans,
        vec![
            (Phase::Lower, 0, None),
            (Phase::Analyze, 1, None),
            (Phase::Build, 1, int),
            (Phase::Simplify, 1, int),
            (Phase::Select, 1, int),
            (Phase::Build, 1, float),
            (Phase::Simplify, 1, float),
            (Phase::Select, 1, float),
            (Phase::Rewrite, 1, None),
        ],
        "phase span sequence changed"
    );
    // Figure 7 colors without spilling, so exactly one round and no
    // spill-code events.
    assert!(rec
        .events()
        .iter()
        .all(|e| !matches!(e, Event::SpillCode { .. })));
    assert!(rec.events().iter().any(|e| matches!(
        e,
        Event::Finish { rounds: 1, spill_instructions: 0, .. }
    )));
}

#[test]
fn json_sink_emits_one_line_per_event() {
    let func = figure7_func();
    let target = TargetDesc::figure7();
    let mut sink = JsonLinesSink::new(Vec::new());
    PreferenceAllocator::full()
        .allocate_traced(&func, &target, &mut sink)
        .unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains("\"type\":\""), "line missing type: {line}");
    }
    // One decision per selected node, with spans and the terminator
    // interleaved in pipeline order.
    let decisions: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"decision\""))
        .collect();
    assert_eq!(decisions.len(), GOLDEN_DECISIONS.len());
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"span\""))
            .count(),
        9
    );
    assert!(lines.last().unwrap().contains("\"type\":\"finish\""));
}

/// With no tracer attached the allocator must produce bit-identical
/// results — tracing is pure observation.
#[test]
fn tracing_does_not_perturb_the_allocation() {
    let func = figure7_func();
    let target = TargetDesc::figure7();
    let plain = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    let (traced, _) = traced_run();
    assert_eq!(plain.assignment, traced.assignment);
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(format!("{}", plain.mach), format!("{}", traced.mach));
}

/// Graph dumps are gated on `wants_graphs`, not `enabled`: a DOT-only
/// tracer gets the three per-round graphs and nothing else.
#[test]
fn graph_dumps_fire_only_when_requested() {
    let (_, rec) = traced_run();
    assert!(rec
        .events()
        .iter()
        .all(|e| !matches!(e, Event::GraphDump { .. })));

    struct GraphsOnly(Vec<(pdgc::obs::GraphKind, String)>);
    impl Tracer for GraphsOnly {
        fn wants_graphs(&self) -> bool {
            true
        }
        fn record(&mut self, event: &Event) {
            if let Event::GraphDump { kind, dot, .. } = event {
                self.0.push((*kind, dot.clone()));
            }
        }
    }
    let func = figure7_func();
    let mut g = GraphsOnly(Vec::new());
    PreferenceAllocator::full()
        .allocate_traced(&func, &TargetDesc::figure7(), &mut g)
        .unwrap();
    // One IFG/RPG/CPG triple per class per round: two classes, one round.
    let kinds: Vec<pdgc::obs::GraphKind> = g.0.iter().map(|(k, _)| *k).collect();
    use pdgc::obs::GraphKind::*;
    assert_eq!(kinds, vec![Ifg, Rpg, Cpg, Ifg, Rpg, Cpg]);
    for (_, dot) in &g.0 {
        assert!(dot.starts_with("digraph") || dot.starts_with("graph"), "{dot}");
    }
}
