//! Adversarial exercises of §5.3 step 4 — the strength-ordered screening
//! that resolves competing preferences — on the same-parity and
//! argument-home mixes ROADMAP's audit note asks about. Each scenario
//! runs `select_traced` with a [`RecordingTracer`] and asserts on the
//! *trace*: the `considered` list of every decision is the screening
//! order, so the tests check not just the final assignment but that the
//! right preference won for the right reason.
//!
//! The machine is `toy(4)` (r0/r1 volatile argument registers, r2/r3
//! non-volatile, parity-paired loads) unless noted.

use pdgc::core::cpg::Cpg;
use pdgc::core::ifg::InterferenceGraph;
use pdgc::core::node::{NodeId, NodeMap};
use pdgc::core::rpg::{PrefKind, PrefTarget, Preference, Rpg};
use pdgc::core::select::{select_traced, SelectConfig, SelectResult};
use pdgc::obs::Decision;
use pdgc::prelude::*;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// A node universe over `toy(4)`: nodes 0–3 are the precolored r0–r3,
/// node 4 is a base address, and nodes 5.. are `m` live ranges whose
/// interference is exactly `edges`.
fn setup(m: usize, edges: &[(usize, usize)]) -> (InterferenceGraph, NodeMap, TargetDesc) {
    let mut b = FunctionBuilder::new("t", vec![], None);
    let base = b.iconst(0);
    let vs: Vec<_> = (0..m).map(|i| b.load(base, (i * 16) as i32 + 128)).collect();
    for &v in &vs {
        b.store(v, base, 0);
    }
    b.ret(None);
    let f = b.finish();
    let target = TargetDesc::toy(4);
    let pinned = vec![None; f.num_vregs()];
    let nm = NodeMap::build(&f, &target, RegClass::Int, &pinned);
    let mut g = InterferenceGraph::new(nm.num_nodes(), nm.num_phys());
    for &(a, b2) in edges {
        g.add_edge(n(a), n(b2));
    }
    (g, nm, target)
}

/// Runs traced selection and returns the result plus its decisions.
fn run(
    g: &mut InterferenceGraph,
    nm: &NodeMap,
    target: &TargetDesc,
    rpg: &Rpg,
) -> (SelectResult, Vec<Decision>) {
    let costs = vec![10u64; nm.num_nodes()];
    let k = 4;
    let sr = pdgc::core::simplify::simplify(g, k, &costs, pdgc::core::simplify::SimplifyMode::Optimistic);
    g.restore_all();
    let cpg = Cpg::build(g, &sr.stack, &sr.optimistic, k);
    let no_spill = vec![false; nm.num_nodes()];
    let mut rec = RecordingTracer::default();
    let r = select_traced(
        g,
        nm,
        rpg,
        &cpg,
        target,
        &no_spill,
        &costs,
        SelectConfig::default(),
        1,
        &mut rec,
    );
    (r, rec.decisions().into_iter().cloned().collect())
}

fn decision_for<'d>(decisions: &'d [Decision], node: usize) -> &'d Decision {
    decisions
        .iter()
        .find(|d| d.node == node as u32)
        .unwrap_or_else(|| panic!("no decision for node {node}"))
}

fn seq_pref(kind: PrefKind, to: usize, s: i64) -> Preference {
    Preference {
        kind,
        target: PrefTarget::Node(n(to)),
        strength_vol: s,
        strength_nonvol: s - 2,
    }
}

/// An argument-homed value that is also half of a parity pair: node 5
/// would save a copy by moving into the argument register r0
/// (strength 30), but its pair partner node 6 interferes with r1 — the
/// only register of opposite parity to r0 — so taking the argument home
/// kills the stronger pairing (strength 50). Step 4 must screen the
/// *deferred* partner preference first, pushing node 5 off r0.
#[test]
fn deferred_pairing_outranks_argument_home() {
    let (mut g, nm, target) = setup(2, &[(6, 1)]);
    let mut rpg = Rpg::new(nm.num_nodes());
    rpg.add(
        n(5),
        Preference {
            kind: PrefKind::Coalesce,
            target: PrefTarget::Node(n(0)), // argument home r0
            strength_vol: 30,
            strength_nonvol: 28,
        },
    );
    rpg.add(n(5), seq_pref(PrefKind::SequentialPlus, 6, 50));
    rpg.add(n(6), seq_pref(PrefKind::SequentialMinus, 5, 50));

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    let (a, b) = (r.assignment[5].unwrap(), r.assignment[6].unwrap());
    assert_ne!(a, PhysReg::int(0), "argument home must lose to the pairing");
    assert!(target.pair_allows(a, b), "pair {a}/{b} must satisfy parity");

    // The trace shows why: the pairing screened first *as a deferred
    // partner preference* (node 6 not yet allocated) and narrowed the
    // candidates; the weaker argument-home coalesce then could not.
    let d = decision_for(&decisions, 5);
    assert_eq!(
        (d.considered[0].kind, d.considered[0].deferred, d.considered[0].strength),
        ("seq+", true, 50)
    );
    assert!(d.considered[0].narrowed, "pairing must narrow the candidate set");
    let home = d
        .considered
        .iter()
        .find(|c| c.kind == "coalesce")
        .expect("argument-home coalesce must still be screened");
    assert_eq!((home.target.as_str(), home.strength), ("r0", 30));
    assert!(!home.narrowed, "the screened-out home must not narrow");
}

/// The same mix with the strengths reversed: a *weak* pairing
/// (strength 20) must not veto the stronger argument home — node 5
/// takes r0 and the trace shows the coalesce screening first.
#[test]
fn weak_pairing_yields_to_argument_home() {
    let (mut g, nm, target) = setup(2, &[(6, 1)]);
    let mut rpg = Rpg::new(nm.num_nodes());
    rpg.add(
        n(5),
        Preference {
            kind: PrefKind::Coalesce,
            target: PrefTarget::Node(n(0)),
            strength_vol: 30,
            strength_nonvol: 28,
        },
    );
    rpg.add(n(5), seq_pref(PrefKind::SequentialPlus, 6, 20));
    rpg.add(n(6), seq_pref(PrefKind::SequentialMinus, 5, 20));

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    assert_eq!(r.assignment[5], Some(PhysReg::int(0)));

    let d = decision_for(&decisions, 5);
    assert_eq!((d.considered[0].kind, d.considered[0].strength), ("coalesce", 30));
    assert!(d.considered[0].narrowed);
    let pairing = d.considered.iter().find(|c| c.kind == "seq+").unwrap();
    assert!(pairing.deferred);
    assert!(
        !pairing.narrowed,
        "a pairing that would empty the candidate set is abandoned"
    );
}

/// Two interfering values both homed to the same argument register r0
/// (e.g. each is the first argument of a different call). The stronger
/// claim wins r0; the loser's home is not even *honorable* (r0 is gone
/// from its available set), so its decision shows an empty screening
/// list and a fallback register.
#[test]
fn argument_home_contention_resolves_by_strength() {
    let (mut g, nm, target) = setup(2, &[(5, 6)]);
    let mut rpg = Rpg::new(nm.num_nodes());
    for (node, s) in [(5usize, 60i64), (6, 20)] {
        rpg.add(
            n(node),
            Preference {
                kind: PrefKind::Coalesce,
                target: PrefTarget::Node(n(0)),
                strength_vol: s,
                strength_nonvol: s - 2,
            },
        );
    }

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    assert_eq!(r.assignment[5], Some(PhysReg::int(0)), "stronger claim takes r0");
    assert_ne!(r.assignment[6], Some(PhysReg::int(0)));

    let winner = decision_for(&decisions, 5);
    assert_eq!((winner.considered[0].kind, winner.considered[0].strength), ("coalesce", 60));
    assert!(winner.considered[0].narrowed);
    let loser = decision_for(&decisions, 6);
    assert!(
        loser.considered.is_empty(),
        "a home blocked by a prior selection is not honorable: {:?}",
        loser.considered
    );
    assert_eq!(loser.available, 3, "r0 must already be unavailable");
}

/// Two parity pairs squeezed into one four-register file, with one
/// member also argument-homed. All four values interfere pairwise, so
/// the pairs must land on {even, odd} × {even, odd} without collision —
/// and every decision's screening list must be sorted by strength, the
/// step-4 invariant the trace makes checkable.
#[test]
fn two_pairs_share_the_file_and_screens_stay_strength_sorted() {
    let (mut g, nm, target) = setup(
        4,
        &[(5, 6), (5, 7), (5, 8), (6, 7), (6, 8), (7, 8)],
    );
    let mut rpg = Rpg::new(nm.num_nodes());
    rpg.add(n(5), seq_pref(PrefKind::SequentialPlus, 6, 50));
    rpg.add(n(6), seq_pref(PrefKind::SequentialMinus, 5, 50));
    rpg.add(n(7), seq_pref(PrefKind::SequentialPlus, 8, 44));
    rpg.add(n(8), seq_pref(PrefKind::SequentialMinus, 7, 44));
    // Node 7 is also argument-homed, weaker than its pairing.
    rpg.add(
        n(7),
        Preference {
            kind: PrefKind::Coalesce,
            target: PrefTarget::Node(n(1)),
            strength_vol: 12,
            strength_nonvol: 10,
        },
    );

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    assert!(r.spilled.is_empty(), "4 mutually-interfering values fit 4 registers");
    let reg = |i: usize| r.assignment[i].unwrap();
    assert!(target.pair_allows(reg(5), reg(6)));
    assert!(target.pair_allows(reg(7), reg(8)));

    for d in &decisions {
        let strengths: Vec<i64> = d.considered.iter().map(|c| c.strength).collect();
        assert!(
            strengths.windows(2).all(|w| w[0] >= w[1]),
            "node {}: screening not strength-ordered: {strengths:?}",
            d.node
        );
    }
}

fn set_pref(mask: u64, s: i64) -> Preference {
    Preference {
        kind: PrefKind::Prefers,
        target: PrefTarget::Set(mask),
        strength_vol: s,
        strength_nonvol: s - 2,
    }
}

/// A set-mask preference (§3.1 limited register usage) competing with a
/// parity pairing, set stronger: node 5 is restricted to {r1, r2}
/// (strength 60) and paired with node 6 (strength 40), which interferes
/// with both odd registers — so the partner must land even and node 5
/// odd. Step 4 screens the set first (narrowing {r0..r3} → {r1, r2}),
/// then the deferred pairing narrows *within* it ({r1, r2} → {r1}): the
/// final register satisfies both, and the trace shows each screen
/// narrowing in strength order.
#[test]
fn set_mask_screens_before_weaker_pairing_and_both_narrow() {
    let (mut g, nm, target) = setup(2, &[(6, 1), (6, 3)]);
    let mut rpg = Rpg::new(nm.num_nodes());
    rpg.add(n(5), set_pref(0b0110, 60)); // {r1, r2}
    rpg.add(n(5), seq_pref(PrefKind::SequentialPlus, 6, 40));
    rpg.add(n(6), seq_pref(PrefKind::SequentialMinus, 5, 40));

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    let (a, b) = (r.assignment[5].unwrap(), r.assignment[6].unwrap());
    assert_eq!(a, PhysReg::int(1), "only r1 satisfies both set and pairing");
    assert!(target.pair_allows(a, b), "pair {a}/{b} must satisfy parity");

    let d = decision_for(&decisions, 5);
    assert_eq!(
        (d.considered[0].kind, d.considered[0].target.as_str(), d.considered[0].strength),
        ("prefers", "set:0x6", 60)
    );
    assert!(d.considered[0].narrowed, "the set must narrow the candidates");
    let pairing = d.considered.iter().find(|c| c.kind == "seq+").unwrap();
    assert_eq!((pairing.deferred, pairing.strength), (true, 40));
    assert!(pairing.narrowed, "the pairing must narrow within the set");
}

/// The same competition where honoring the set makes the pairing
/// *infeasible*: node 5 is pinned to {r0} alone, and node 6 interferes
/// with both odd registers — no opposite-parity partner can exist once
/// node 5 takes r0. The stronger set wins; the pairing screens but is
/// abandoned rather than allowed to empty the candidate set, and no
/// fused pair forms.
#[test]
fn set_mask_strands_an_infeasible_pairing() {
    let (mut g, nm, target) = setup(2, &[(6, 1), (6, 3)]);
    let mut rpg = Rpg::new(nm.num_nodes());
    rpg.add(n(5), set_pref(0b0001, 60)); // {r0} only
    rpg.add(n(5), seq_pref(PrefKind::SequentialPlus, 6, 40));
    rpg.add(n(6), seq_pref(PrefKind::SequentialMinus, 5, 40));

    let (r, decisions) = run(&mut g, &nm, &target, &rpg);
    let (a, b) = (r.assignment[5].unwrap(), r.assignment[6].unwrap());
    assert_eq!(a, PhysReg::int(0), "the set pin must be honored");
    assert!(
        !target.pair_allows(a, b),
        "no parity partner exists for r0 against {{r1, r3}} interference"
    );

    let d = decision_for(&decisions, 5);
    assert_eq!(
        (d.considered[0].kind, d.considered[0].target.as_str(), d.considered[0].narrowed),
        ("prefers", "set:0x1", true)
    );
    let pairing = d.considered.iter().find(|c| c.kind == "seq+").unwrap();
    assert!(pairing.deferred);
    assert!(
        !pairing.narrowed,
        "a pairing that would empty the candidate set is abandoned"
    );
}

/// The full allocator on a real function mixing both hazards: a parity
/// pair whose members are also call arguments. End to end, the trace
/// must still show strength-sorted screening and the pairing surviving
/// the argument homes.
#[test]
fn full_allocator_traces_stay_strength_sorted_on_arg_homed_pair() {
    let mut b = FunctionBuilder::new("mix", vec![RegClass::Int], None);
    let p = b.param(0);
    let lo = b.load(p, 0);
    let hi = b.load(p, 8);
    // Both halves of the pair escape as call arguments, acquiring
    // argument-home preferences that compete with the pairing.
    b.call("f", vec![lo, hi], None);
    let sum = b.bin(BinOp::Add, lo, hi);
    b.ret(Some(sum));
    let func = b.finish();

    let target = TargetDesc::toy(4);
    let mut rec = RecordingTracer::default();
    let out = PreferenceAllocator::full()
        .allocate_traced(&func, &target, &mut rec)
        .unwrap();
    assert_eq!(out.stats.spill_instructions, 0);

    let decisions = rec.decisions();
    assert!(!decisions.is_empty());
    for d in &decisions {
        let strengths: Vec<i64> = d.considered.iter().map(|c| c.strength).collect();
        assert!(
            strengths.windows(2).all(|w| w[0] >= w[1]),
            "node {}: screening not strength-ordered: {strengths:?}",
            d.node
        );
    }
    // At least one decision had to weigh a pairing against another
    // preference — the adversarial mix actually materialized.
    assert!(
        decisions.iter().any(|d| {
            d.considered.len() >= 2
                && d.considered.iter().any(|c| c.kind.starts_with("seq"))
        }),
        "expected a decision mixing a pairing with other preferences"
    );
}
