//! End-to-end tests of the `pdgc report` regression gate: two identical
//! snapshots must report zero regressions and exit 0, and a snapshot
//! with a corrupted counter must fail loudly, naming the offending
//! metric — that failure mode is what the CI `metrics-regression` job
//! relies on.

use std::path::PathBuf;
use std::process::Command;

const PDGC: &str = env!("CARGO_BIN_EXE_pdgc");

/// Runs `pdgc demo` in a fresh scratch directory and returns the
/// metrics snapshot it writes to `results/metrics.json` there.
fn make_snapshot(tag: &str) -> (PathBuf, String) {
    let dir = std::env::temp_dir().join(format!("pdgc-report-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(PDGC)
        .arg("demo")
        .current_dir(&dir)
        .output()
        .expect("run pdgc demo");
    assert!(
        out.status.success(),
        "pdgc demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let path = dir.join("results").join("metrics.json");
    let text = std::fs::read_to_string(&path).expect("demo wrote metrics.json");
    (dir, text)
}

fn run_report(baseline: &std::path::Path, current: &std::path::Path) -> std::process::Output {
    Command::new(PDGC)
        .arg("report")
        .arg("--baseline")
        .arg(baseline)
        .arg("--current")
        .arg(current)
        .output()
        .expect("run pdgc report")
}

#[test]
fn identical_snapshots_report_no_regressions() {
    let (dir, text) = make_snapshot("identical");
    let a = dir.join("baseline.json");
    let b = dir.join("current.json");
    std::fs::write(&a, &text).unwrap();
    std::fs::write(&b, &text).unwrap();

    let out = run_report(&a, &b);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "identical snapshots must pass: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("no regressions"),
        "missing success line in: {stdout}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_counter_fails_naming_the_metric() {
    let (dir, text) = make_snapshot("corrupt");
    let a = dir.join("baseline.json");
    let b = dir.join("current.json");
    std::fs::write(&a, &text).unwrap();

    // Bump spill_instructions far past its 2% tolerance in the copy.
    let key = "\"spill_instructions\":";
    let at = text.find(key).expect("snapshot has spill_instructions") + key.len();
    let end = at + text[at..].find(|c: char| !c.is_ascii_digit()).unwrap();
    let corrupted = format!("{}999999{}", &text[..at], &text[end..]);
    assert_ne!(corrupted, text);
    std::fs::write(&b, &corrupted).unwrap();

    let out = run_report(&a, &b);
    assert!(
        !out.status.success(),
        "corrupted snapshot must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("spill_instructions"),
        "error must name the regressed metric, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn missing_counter_in_current_is_a_regression() {
    let (dir, text) = make_snapshot("missing");
    let a = dir.join("baseline.json");
    let b = dir.join("current.json");
    std::fs::write(&a, &text).unwrap();

    // Rename funcs_allocated away so the gate sees it vanish.
    let gutted = text.replace("\"funcs_allocated\"", "\"funcs_allocated_renamed\"");
    assert_ne!(gutted, text);
    std::fs::write(&b, &gutted).unwrap();

    let out = run_report(&a, &b);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("funcs_allocated"),
        "error must name the missing metric"
    );
    let _ = std::fs::remove_dir_all(dir);
}
