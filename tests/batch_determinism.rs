//! The parallel batch driver must be bit-identical to the serial one: the
//! `--jobs N` worker pool may change *when* and *where* each function is
//! allocated, but never *what* it produces. This runs the differential
//! suite's workloads through the batch driver at `--jobs 1` and `--jobs 4`
//! and compares per-function statistics and rewrite fingerprints. The
//! serial leg runs with the symbolic checker live (`CheckMode::Always`),
//! so every batch allocation is also independently proven.

use pdgc::prelude::*;
use pdgc_bench::batch::{run_batch, run_batch_checked};

fn suite() -> Vec<Workload> {
    specjvm_suite().iter().map(generate).collect()
}

#[test]
fn jobs4_is_bit_identical_to_jobs1_on_full_allocator() {
    let workloads = suite();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let serial = run_batch_checked(&alloc, &workloads, &target, 1, CheckMode::Always);
    let parallel = run_batch(&alloc, &workloads, &target, 4);

    assert_eq!(serial.funcs.len(), parallel.funcs.len());
    assert!(serial.funcs.len() >= 60, "suite unexpectedly small");
    for (a, b) in serial.funcs.iter().zip(&parallel.funcs) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.func, b.func);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "rewrite output diverged on {} ({})",
            a.func, a.workload
        );
        assert_eq!(a.stats, b.stats, "stats diverged on {}", a.func);
    }
    assert!(serial.same_allocations(&parallel));
    assert_eq!(serial.stats, parallel.stats);
}

#[test]
fn jobs8_oversubscribed_stress_is_bit_identical_and_repeatable() {
    // More workers than the suite has cores (and, on small machines, more
    // than there are functions per claim window): workers race the atomic
    // cursor hard and finish out of order, stressing the slot-keyed merge.
    // `compare_jobs` also asserts that repeats of the same job count agree,
    // so each worker's reused PhaseScratch is proven not to leak state from
    // one function into the next.
    let mut workloads = suite();
    for w in &mut workloads {
        w.funcs.truncate(6);
    }
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let alloc = PreferenceAllocator::full();
    let cmp = pdgc_bench::batch::compare_jobs(&alloc, &workloads, &target, 8, 2);
    assert_eq!(cmp.parallel.jobs, 8);
    assert!(
        cmp.identical(),
        "jobs=8 diverged from serial on the stress sweep"
    );
    assert_eq!(cmp.serial.stats, cmp.parallel.stats);
    for (i, f) in cmp.parallel.funcs.iter().enumerate() {
        assert_eq!(f.index, i, "slot-keyed merge broke task order");
    }
}

#[test]
fn jobs4_is_bit_identical_to_jobs1_across_pressure_models() {
    // Lighter sweep (first functions of each workload) over the other two
    // pressure models, so every differential-suite target shape is covered.
    let mut workloads = suite();
    for w in &mut workloads {
        w.funcs.truncate(3);
    }
    let alloc = PreferenceAllocator::full();
    for pressure in [PressureModel::High, PressureModel::Low] {
        let target = TargetDesc::ia64_like(pressure);
        let serial = run_batch(&alloc, &workloads, &target, 1);
        let parallel = run_batch(&alloc, &workloads, &target, 4);
        assert!(
            serial.same_allocations(&parallel),
            "divergence under {pressure:?}"
        );
        assert_eq!(serial.stats, parallel.stats);
    }
}
