//! Per-target correctness matrix: every allocator must stay
//! semantics-preserving on every target in the builtin registry, not just
//! the default `ia64-24` — and the parallel batch driver must stay
//! bit-deterministic on each of them.
//!
//! Workloads are regenerated per target through
//! [`WorkloadProfile::for_target`], so paired-load candidates follow the
//! target's own stride/alignment and register pressure stays feasible on
//! small files (`tight8`). The deep per-function sweep lives in
//! `tests/differential.rs`; this matrix takes two functions per workload
//! per target, which is enough to exercise every target-dependent code
//! path (calling convention, byte restriction, div pinning, pair rules).
//!
//! `figure7` is exempt: its three-register file exists to replay the
//! paper's worked example and cannot allocate the generated workloads.

use pdgc::prelude::*;
use pdgc::workloads::specjvm_suite;

/// Workloads adapted to `target`, trimmed to two functions each.
fn workloads_for(target: &TargetDesc) -> Vec<Workload> {
    specjvm_suite()
        .iter()
        .map(|p| {
            let mut w = generate(&p.for_target(target));
            w.funcs.truncate(2);
            w
        })
        .collect()
}

/// Every allocator, on every (adapted) workload function, must produce
/// machine code observably equivalent to the virtual-register original —
/// and the symbolic checker must independently prove every allocation.
fn check_differential(target: &TargetDesc) {
    let allocators = pdgc::all_allocators();
    for w in &workloads_for(target) {
        for func in &w.funcs {
            let args = default_args(func);
            let reference = run_ir(func, &args, DEFAULT_FUEL)
                .unwrap_or_else(|e| panic!("{}: reference failed: {e}", func.name));
            for alloc in &allocators {
                let out = alloc
                    .allocate_checked(func, target, &mut NoopTracer, CheckMode::Always)
                    .unwrap_or_else(|e| {
                        panic!("{} on {} ({}): {e}", alloc.name(), func.name, target.name)
                    });
                let mach = run_mach(&out.mach, target, &args, DEFAULT_FUEL).unwrap_or_else(|e| {
                    panic!(
                        "{} on {} ({}): machine run failed: {e}",
                        alloc.name(),
                        func.name,
                        target.name
                    )
                });
                check_equivalent(&reference, &mach).unwrap_or_else(|e| {
                    panic!(
                        "{} mis-allocated {} on {}: {e}",
                        alloc.name(),
                        func.name,
                        target.name
                    )
                });
            }
        }
    }
}

/// The batch driver must produce bit-identical allocations at every job
/// count on this target (same statistics, same rewrite fingerprints),
/// with the symbolic checker live on every allocation of both runs.
fn check_batch_determinism(target: &TargetDesc) {
    let alloc = PreferenceAllocator::full();
    let workloads = workloads_for(target);
    let cmp =
        pdgc_bench::batch::compare_jobs_checked(&alloc, &workloads, target, 3, 1, CheckMode::Always);
    assert!(
        cmp.identical(),
        "parallel batch allocation diverged from serial on {}",
        target.name
    );
    assert_eq!(cmp.serial.target, target.name);
}

/// One module per registry target, so shards parallelize and a failure
/// names the target directly.
macro_rules! target_matrix {
    ($($mod_name:ident => $name:literal;)+) => {
        $(
            mod $mod_name {
                use super::*;

                fn target() -> TargetDesc {
                    TargetRegistry::builtin()
                        .resolve($name)
                        .expect("registry target")
                        .clone()
                }

                #[test]
                fn differential_preserves_semantics() {
                    check_differential(&target());
                }

                #[test]
                fn batch_allocation_is_deterministic() {
                    check_batch_determinism(&target());
                }
            }
        )+

        /// The matrix above must stay in sync with the builtin registry;
        /// this guard fails when a target is registered without a matrix
        /// shard here (figure7 is deliberately exempt — see module doc).
        #[test]
        fn matrix_covers_the_registry() {
            let covered = [$($name),+];
            let registry = TargetRegistry::builtin();
            for name in registry.names() {
                assert!(
                    covered.contains(&name) || name == "figure7",
                    "registry target {name} has no matrix shard"
                );
            }
            assert_eq!(covered.len() + 1, registry.len(), "stale matrix list");
        }
    };
}

target_matrix! {
    ia64_16 => "ia64-16";
    x86_16 => "x86-16";
    ia64_24 => "ia64-24";
    x86_24 => "x86-24";
    ia64_32 => "ia64-32";
    x86_32 => "x86-32";
    risc16 => "risc16";
    tight8 => "tight8";
}
