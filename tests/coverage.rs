//! Targeted integration tests for paths the unit suites touch lightly:
//! multi-register caller saves, save-slot reuse across calls, float
//! return values through the convention, byte-load semantics end to end,
//! the call-cost allocator's preference decision, and register-footprint
//! accounting.

use pdgc::prelude::*;
use pdgc::target::MInst;

/// Five values cross two calls on a machine with four non-volatile
/// registers. The overflow value's options: a volatile register costs two
/// save/restore pairs (2 × Save_Restore_Cost = 6 per call weighting);
/// memory costs its whole Mem_Cost of 6 but is cheaper once both calls
/// are counted — §5.4 active spilling must choose memory, not caller
/// saves.
#[test]
fn active_spill_beats_double_caller_save() {
    let target = TargetDesc::toy(8); // 4 volatile (r0..r3), 4 non-volatile
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let vals: Vec<_> = (0..5).map(|i| b.load(p, 16 * i)).collect();
    b.call("g", vec![], None);
    b.call("g", vec![], None);
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = b.bin(BinOp::Add, acc, v);
    }
    b.ret(Some(acc));
    let func = b.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    assert_eq!(
        out.stats.caller_save_insts, 0,
        "double save/restore is costlier than the value's Mem_Cost"
    );
    assert!(out.stats.spill_instructions > 0, "the overflow value spills");
    assert_eq!(out.stats.nonvolatiles_used, 4);

    let args = vec![0u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// The same shape crossing only ONE call: now a volatile register with a
/// single save/restore (cost 3) beats memory (Mem_Cost 6), so the
/// overflow value keeps a register and caller saves appear — with slot
/// reuse when a second, later value does the same at another call.
#[test]
fn single_crossing_prefers_caller_save_over_memory() {
    let target = TargetDesc::toy(8);
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let vals: Vec<_> = (0..5).map(|i| b.load(p, 16 * i)).collect();
    b.call("g", vec![], None);
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = b.bin(BinOp::Add, acc, v);
    }
    b.ret(Some(acc));
    let func = b.finish();

    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    // One overflow value, one call: exactly one save/restore pair.
    assert_eq!(out.stats.caller_save_insts, 2);
    assert_eq!(out.stats.spill_instructions, 0);
    assert_eq!(out.stats.frame_slots, 1);

    let args = vec![0u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// Float values flow through the float convention: argument in f0,
/// result in f0, both classes allocated independently.
#[test]
fn float_return_values_through_convention() {
    let target = TargetDesc::ia64_like(PressureModel::High);
    let mut b = FunctionBuilder::new("f", vec![RegClass::Float], Some(RegClass::Float));
    let q = b.param(0);
    let r = b.call("sqrt", vec![q], Some(RegClass::Float)).unwrap();
    let s = b.bin(BinOp::FAdd, r, r);
    b.ret(Some(s));
    let func = b.finish();
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();

    let args = vec![2.25f64.to_bits()];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
    // The call's argument and return registers are float-class.
    let call = out
        .mach
        .blocks
        .iter()
        .flatten()
        .find_map(|i| match i {
            MInst::Call {
                arg_regs, ret_reg, ..
            } => Some((arg_regs.clone(), *ret_reg)),
            _ => None,
        })
        .unwrap();
    assert_eq!(call.0, vec![PhysReg::float(0)]);
    assert_eq!(call.1, Some(PhysReg::float(0)));
}

/// Byte loads zero-extend in the IR semantics, and the machine semantics
/// match whether or not the destination needed an explicit extension.
#[test]
fn byte_load_semantics_end_to_end() {
    let target = TargetDesc::x86_like(PressureModel::High);
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    // Create pressure so some byte destination cannot get a byte register.
    let keep: Vec<_> = (0..6).map(|i| b.load8(p, 8 * i)).collect();
    let mut acc = keep[0];
    for &v in &keep[1..] {
        acc = b.bin(BinOp::Add, acc, v);
    }
    b.ret(Some(acc));
    let func = b.finish();

    for alloc in pdgc::all_allocators() {
        let out = alloc.allocate(&func, &target).unwrap();
        let args = vec![4096u64];
        let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach)
            .unwrap_or_else(|e| panic!("{} diverged: {e}", alloc.name()));
        // The result is a sum of bytes: small.
        assert!(reference.ret.unwrap() < 6 * 256);
    }
}

/// The call-cost allocator's preference decision: when call-crossing
/// ranges outnumber non-volatile registers, the overflow is annotated
/// prefer-volatile (caller-saved) rather than spilled.
#[test]
fn callcost_preference_decision_caps_nonvolatile_claims() {
    use pdgc::core::baselines::CallCostAllocator;
    let target = TargetDesc::toy(8); // 4 volatile, 4 non-volatile
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let vals: Vec<_> = (0..6).map(|i| b.load(p, 16 * i)).collect();
    b.call("g", vec![], None);
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = b.bin(BinOp::Add, acc, v);
    }
    b.ret(Some(acc));
    let func = b.finish();
    let out = CallCostAllocator.allocate(&func, &target).unwrap();
    // 6 crossing ranges, 4 non-volatile registers: at most 4 claims, the
    // rest volatile (2 ranges × save+restore) or spilled.
    assert!(out.stats.nonvolatiles_used <= 4);
    let args = vec![0u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// `MachFunction::regs_used` counts each register once across all operand
/// positions.
#[test]
fn regs_used_accounting() {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let x = b.bin(BinOp::Add, p, p);
    b.ret(Some(x));
    let func = b.finish();
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    let used = out.mach.regs_used();
    // Everything coalesces into r0.
    assert_eq!(used, vec![PhysReg::int(0)]);
}

/// Spill iteration interacts with caller saves: a spilled call-crossing
/// value must not ALSO be caller-saved (its temporaries die at the call
/// boundary).
#[test]
fn spilled_crossing_values_need_no_caller_saves() {
    let target = TargetDesc::toy(4); // 2 volatile, 2 non-volatile
    let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let vals: Vec<_> = (0..5).map(|i| b.load(p, 16 * i)).collect();
    b.call("g", vec![], None);
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = b.bin(BinOp::Add, acc, v);
    }
    b.ret(Some(acc));
    let func = b.finish();
    let out = PreferenceAllocator::full().allocate(&func, &target).unwrap();
    assert!(out.stats.spill_instructions > 0);
    let args = vec![0u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL).unwrap();
    let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
    check_equivalent(&reference, &mach).unwrap();
}

/// The pre-coalescing refinement stays semantics-preserving under
/// pressure and never does worse on spills than plain full preferences.
#[test]
fn precoalesce_variant_correct_under_pressure() {
    let target = TargetDesc::toy(8);
    let prof = &specjvm_suite()[1]; // jess
    let w = generate(prof);
    for func in w.funcs.iter().take(3) {
        let args = default_args(func);
        let reference = run_ir(func, &args, DEFAULT_FUEL).unwrap();
        let out = PreferenceAllocator::full()
            .with_precoalesce()
            .allocate(func, &target)
            .unwrap();
        let mach = run_mach(&out.mach, &target, &args, DEFAULT_FUEL).unwrap();
        check_equivalent(&reference, &mach).unwrap();
    }
}
