//! Quickstart: build a small function, allocate registers with the
//! preference-directed allocator, inspect the result, and prove the
//! allocation is semantics-preserving with the differential interpreters.
//!
//! Run with `cargo run --example quickstart`.

use pdgc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // dot2(p) = [p]*[p+16] + [p+8]*[p+24]
    let mut b = FunctionBuilder::new("dot2", vec![RegClass::Int], Some(RegClass::Int));
    let p = b.param(0);
    let a0 = b.load(p, 0);
    let a1 = b.load(p, 8);
    let b0 = b.load(p, 16);
    let b1 = b.load(p, 24);
    let m0 = b.bin(BinOp::Mul, a0, b0);
    let m1 = b.bin(BinOp::Mul, a1, b1);
    let s = b.bin(BinOp::Add, m0, m1);
    b.ret(Some(s));
    let func = b.finish();
    func.verify()?;

    println!("--- input IR ---\n{func}\n");

    // The paper's IA-64-like middle-pressure model: 24 registers per
    // class, half volatile, parity-paired loads.
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let out = PreferenceAllocator::full().allocate(&func, &target)?;

    println!("--- allocated machine code ---\n{}\n", out.mach);
    println!(
        "copies: {} before, {} eliminated; paired loads fused: {}; spills: {}",
        out.stats.copies_before,
        out.stats.moves_eliminated,
        out.stats.paired_loads,
        out.stats.spill_instructions,
    );

    // Differential check: virtual-register semantics == machine semantics.
    let args = vec![4096u64];
    let reference = run_ir(&func, &args, DEFAULT_FUEL)?;
    let allocated = run_mach(&out.mach, &target, &args, DEFAULT_FUEL)?;
    check_equivalent(&reference, &allocated).map_err(|e| format!("diverged: {e}"))?;
    println!(
        "\nequivalence verified: both return {:#x} in {} vs {} simulated cycles",
        reference.ret.unwrap(),
        reference.cycles,
        allocated.cycles,
    );
    Ok(())
}
