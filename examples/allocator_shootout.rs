//! A JIT-style pipeline over a whole synthetic workload: generate the
//! `jess` SPECjvm98 analog, push every function through all seven
//! allocators, and print a comparison table — move elimination, spill
//! code, caller saves, and simulated execution cycles.
//!
//! Run with `cargo run --release --example allocator_shootout`.

use pdgc::all_allocators;
use pdgc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prof = specjvm_suite()
        .into_iter()
        .find(|p| p.name == "jess")
        .expect("suite contains jess");
    let workload = generate(&prof);
    let target = TargetDesc::ia64_like(PressureModel::Middle);

    println!(
        "workload `{}`: {} functions, {} instructions\n",
        workload.name,
        workload.funcs.len(),
        workload.funcs.iter().map(|f| f.num_insts()).sum::<usize>()
    );
    println!(
        "{:<24}{:>8}{:>8}{:>8}{:>8}{:>10}",
        "allocator", "elim", "copies", "spills", "saves", "cycles"
    );

    for alloc in all_allocators() {
        let mut stats = AllocStats::default();
        let mut cycles = 0u64;
        for func in &workload.funcs {
            let out = alloc.allocate(func, &target)?;
            stats.accumulate(&out.stats);
            let args = default_args(func);
            // Re-verify equivalence while we are at it.
            let reference = run_ir(func, &args, DEFAULT_FUEL)?;
            let allocated = run_mach(&out.mach, &target, &args, DEFAULT_FUEL)?;
            check_equivalent(&reference, &allocated)
                .map_err(|e| format!("{} diverged on {}: {e}", alloc.name(), func.name))?;
            cycles += allocated.cycles;
        }
        println!(
            "{:<24}{:>8}{:>8}{:>8}{:>8}{:>10}",
            alloc.name(),
            stats.moves_eliminated,
            stats.copies_remaining,
            stats.spill_instructions,
            stats.caller_save_insts,
            cycles
        );
    }

    println!(
        "\nEvery row computed identical results (differentially verified); \
         the rows differ only in how well the allocator honored the \
         workload's preferences."
    );
    Ok(())
}
