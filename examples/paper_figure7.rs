//! The paper's Figure 7 walkthrough as an example program.
//!
//! Builds the sample loop of Figure 7(a), allocates it on the
//! three-register machine, and prints the assignment and final code —
//! which match Figure 7(g)/(h) exactly (see `tests/figure7.rs` for the
//! assertions, and `cargo run -p pdgc-bench --bin fig7` for the full
//! walkthrough including the RPG and CPG).
//!
//! Run with `cargo run --example paper_figure7`.

use pdgc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
    let arg0 = b.param(0);
    let header = b.create_block();
    let exit = b.create_block();
    let v0 = b.load(arg0, 0); // i0: v0 = [arg0]
    b.jump(header);
    b.switch_to(header);
    let v1 = b.load(v0, 0); // i1: v1 = [v0]
    let v2 = b.load(v0, 8); // i2: v2 = [v0+8]
    let v3 = b.copy(v0); // i3: v3 = v0
    let v4 = b.bin(BinOp::Add, v1, v2); // i4: v4 = v1 + v2
    b.call("g", vec![v3], None); // i5/i6: arg0 = v3; call
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Add,
        dst: v0,
        lhs: v4,
        imm: 1,
    }); // i7: v0 = v4 + 1
    b.branch_imm(CmpOp::Ne, v0, 0, header, exit); // i8
    b.switch_to(exit);
    b.ret(None); // i9
    let func = b.finish();

    println!("Figure 7(a):\n{func}\n");

    // Paper registers r1, r2, r3 are r0, r1, r2 here: r0 = arg0/return
    // (volatile), r1 = arg1 (volatile), r2 = non-volatile.
    let target = TargetDesc::figure7();
    let out = PreferenceAllocator::full().allocate(&func, &target)?;

    println!("Assignment (paper names):");
    for (v, name) in [(v0, "v0"), (v1, "v1"), (v2, "v2"), (v3, "v3"), (v4, "v4")] {
        println!("  {name} -> {}", out.assignment[v.index()].unwrap());
    }
    println!("\nFigure 7(h):\n{}", out.mach);
    println!(
        "\nAll {} copies coalesced, {} paired load fused, {} spills — \
         the paper's result, reproduced.",
        out.stats.moves_eliminated, out.stats.paired_loads, out.stats.spill_instructions
    );
    Ok(())
}
