//! Irregular-register preferences in action: paired loads (IA-64-style
//! parity rule) and volatile/non-volatile selection around calls.
//!
//! Compares the full preference-directed allocator against the
//! coalescing-only configuration on a kernel that needs *both* a paired
//! load and a call-surviving accumulator — the combination §4 of the paper
//! argues static approaches mishandle.
//!
//! Run with `cargo run --example irregular_registers`.

use pdgc::prelude::*;

/// A streaming kernel: each iteration loads a pair of adjacent words,
/// combines them, calls a helper, and accumulates its result.
fn kernel() -> Function {
    let mut b = FunctionBuilder::new("stream", vec![RegClass::Int, RegClass::Int], Some(RegClass::Int));
    let base = b.param(0);
    let n = b.param(1);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();

    let acc = b.iconst(0);
    let i = b.copy(n);
    b.jump(header);

    b.switch_to(header);
    b.branch_imm(CmpOp::Gt, i, 0, body, exit);

    b.switch_to(body);
    let x = b.load(base, 0); // paired-load candidate
    let y = b.load(base, 8);
    let s = b.bin(BinOp::Add, x, y);
    let r = b.call("combine", vec![s], Some(RegClass::Int)).unwrap();
    b.emit(pdgc::ir::Inst::Bin {
        op: BinOp::Add,
        dst: acc,
        lhs: acc,
        rhs: r,
    });
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    b.jump(header);

    b.switch_to(exit);
    b.ret(Some(acc));
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let func = kernel();
    let target = TargetDesc::ia64_like(PressureModel::High);
    println!("--- kernel ---\n{func}\n");

    for alloc in [
        PreferenceAllocator::coalescing_only(),
        PreferenceAllocator::full(),
    ] {
        let out = alloc.allocate(&func, &target)?;
        let exec = run_mach(&out.mach, &target, &[0, 8], DEFAULT_FUEL)?;
        println!(
            "{:<22} paired loads: {}  caller-saves: {}  non-volatiles: {}  cycles: {}",
            alloc.name(),
            out.stats.paired_loads,
            out.stats.caller_save_insts,
            out.stats.nonvolatiles_used,
            exec.cycles,
        );
        // Both must still compute the same thing as the reference.
        let reference = run_ir(&func, &[0, 8], DEFAULT_FUEL)?;
        check_equivalent(&reference, &exec).map_err(|e| format!("diverged: {e}"))?;
    }

    println!(
        "\nThe full allocator fuses the paired load (different-parity \
         destinations) and keeps the accumulator in a non-volatile register \
         across the call; the coalescing-only allocator leaves those cycles \
         on the table."
    );
    Ok(())
}
