//! Volatile vs non-volatile selection around calls: reproduces the §4
//! discussion comparing the integrated preference-directed approach with
//! a Lueh–Gross-style call-cost-directed allocator whose decisions are
//! static.
//!
//! The kernel interleaves two kinds of values: some live across many
//! calls (want non-volatile registers) and some are call-argument-bound
//! (want coalescing into the dedicated argument registers). Static
//! preference decisions interact badly with aggressive coalescing here
//! (Figure 5(b) of the paper); the integrated select phase handles both.
//!
//! Run with `cargo run --example callcost_compare`.

use pdgc::prelude::*;

fn call_heavy() -> Function {
    let mut b = FunctionBuilder::new("drive", vec![RegClass::Int, RegClass::Int], Some(RegClass::Int));
    let base = b.param(0);
    let n = b.param(1);
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();

    // Long-lived state: wants a non-volatile register.
    let state = b.load(base, 0);
    let i = b.copy(n);
    b.jump(header);

    b.switch_to(header);
    b.branch_imm(CmpOp::Gt, i, 0, body, exit);

    b.switch_to(body);
    // Argument-bound temporaries: want to be born in argument registers.
    let t1 = b.bin_imm(BinOp::Add, state, 1);
    let r1 = b.call("step", vec![t1], Some(RegClass::Int)).unwrap();
    let t2 = b.bin(BinOp::Xor, r1, state);
    let r2 = b.call("fold", vec![t2, r1], Some(RegClass::Int)).unwrap();
    b.emit(pdgc::ir::Inst::Bin {
        op: BinOp::Add,
        dst: state,
        lhs: state,
        rhs: r2,
    });
    b.emit(pdgc::ir::Inst::BinImm {
        op: BinOp::Sub,
        dst: i,
        lhs: i,
        imm: 1,
    });
    b.jump(header);

    b.switch_to(exit);
    b.ret(Some(state));
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    use pdgc::core::baselines::CallCostAllocator;

    let func = call_heavy();
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let args = vec![512u64, 6];
    let reference = run_ir(&func, &args, DEFAULT_FUEL)?;

    println!("--- kernel ---\n{func}\n");
    println!(
        "{:<24}{:>10}{:>10}{:>10}{:>12}",
        "allocator", "saves", "nonvols", "copies", "cycles"
    );
    let allocators: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(CallCostAllocator),
        Box::new(PreferenceAllocator::full()),
    ];
    for alloc in allocators {
        let out = alloc.allocate(&func, &target)?;
        let exec = run_mach(&out.mach, &target, &args, DEFAULT_FUEL)?;
        check_equivalent(&reference, &exec).map_err(|e| format!("diverged: {e}"))?;
        println!(
            "{:<24}{:>10}{:>10}{:>10}{:>12}",
            alloc.name(),
            out.stats.caller_save_insts,
            out.stats.nonvolatiles_used,
            out.stats.copies_remaining,
            exec.cycles
        );
    }
    println!(
        "\nOn a kernel this small both approaches find the good placement: \
         loop state in a non-volatile register, argument temporaries \
         coalesced. At workload scale their static-vs-integrated difference \
         shows up — run `cargo run -p pdgc-bench --bin fig11` to reproduce \
         the paper's Figure 11 comparison."
    );
    Ok(())
}
