//! `pdgc` — command-line driver for the preference-directed register
//! allocator.
//!
//! ```console
//! $ pdgc --help
//! $ pdgc allocate examples/ir/dot2.pdgc --allocator full --target ia64-24
//! $ pdgc run examples/ir/dot2.pdgc --args 4096 --allocator chaitin
//! $ pdgc demo
//! ```
//!
//! `allocate` parses a textual-IR file, runs the chosen allocator, and
//! prints the machine code plus statistics. `run` additionally executes
//! both the virtual-register original and the allocated code in the
//! simulator, checks equivalence, and reports cycles. `demo` prints the
//! paper's Figure 7 walkthrough on a built-in program.

use pdgc::prelude::*;
use std::process::ExitCode;

fn usage() -> &'static str {
    "pdgc — preference-directed graph coloring register allocation (PLDI 2002)

USAGE:
    pdgc allocate <FILE> [--allocator NAME] [--target NAME] [--check[=MODE]] [TRACING]
    pdgc run <FILE> [--allocator NAME] [--target NAME] [--args N,N,...] [--check[=MODE]] [TRACING]
    pdgc demo [--check[=MODE]] [TRACING]
    pdgc bench batch [--jobs N] [--allocator NAME] [--target NAME] [--check[=MODE]]
    pdgc corpus <DIR> [--allocator NAME] [--target NAME] [--check[=MODE]]
                      [--baseline FILE] [--write-baseline]
    pdgc report --baseline FILE --current FILE
    pdgc serve [--socket PATH] [--jobs N] [--allocator NAME] [--target NAME]
               [--check[=MODE]] [--cache-cap N] [--sample-rate N]
               [--emit-requests DIR]
    pdgc --help

ALLOCATORS:
    full (default), coalesce, chaitin, briggs, iterated, optimistic, callcost

TARGETS (the built-in registry; ia64-24 is the default):
    ia64-16, ia64-24, ia64-32    the paper's parity-paired machine at
                                 high/middle/low pressure
    x86-16, x86-24, x86-32       sequential pairs, byte-restricted,
                                 division pinned to r0
    figure7                      the paper's three-register walkthrough
                                 machine
    risc16                       16 named registers (a0..a5, s0..s9),
                                 aligned stride-16 sequential pairs
    tight8                       constrained 8-register high-pressure
                                 target, no float pairing

CHECKING:
    --check[=MODE]      run the post-allocation symbolic checker (pdgc-check)
                        on every allocation: it re-derives liveness, abstractly
                        interprets the machine code, and proves every use reads
                        the right value. MODE is `always` (default for a bare
                        --check), `debug` (debug builds only), or `off`.
                        A violation fails the command and prints the full list.

TRACING:
    --trace PATH        write a JSON-Lines allocation trace (phase spans,
                        per-node select decisions, spill events) to PATH
    --dump-graphs DIR   write per-round Graphviz dumps of the interference,
                        preference, and precedence graphs into DIR

BENCH:
    `bench batch` allocates the whole SPECjvm98 analog suite through the
    parallel batch driver at --jobs 1 and --jobs N (default: the machine's
    available parallelism), verifies the allocations are bit-identical,
    prints throughput, and writes results/bench_batch.json and
    results/metrics.json (the always-on counter/histogram snapshot).

CORPUS:
    `corpus` runs every function in the `.pdgc` files under DIR through
    every allocator (or just --allocator NAME): parse, verify, allocate,
    optionally prove with the symbolic checker, and certify the exact
    text round-trip at both levels (IR and rewritten machine code).
    Results are compared exactly against DIR/baseline.json (or
    --baseline FILE): any changed spill/copy/pair count or code
    fingerprint exits non-zero naming the function. --write-baseline
    regenerates the baseline instead of comparing.

SERVE:
    `serve` runs a long-lived allocation daemon with a content-addressed
    cache. It reads JSONL requests — one
    {\"fn\": \"<IR text>\", \"target\": …, \"allocator\": …, \"check\": …}
    object per line, all fields but `fn` optional — from stdin (or a Unix
    socket with --socket PATH) and answers each with one JSONL response
    carrying the rewritten machine code, its fingerprint, and the
    allocation scorecard. The cache key is the canonical printed IR plus
    target, allocator, and check mode; misses are proven by the symbolic
    checker before insertion and hits are re-proven every --sample-rate
    hits (default 16, 0 = never). --cache-cap N (default 1024, 0 =
    unbounded) bounds the cache with LRU eviction. With --jobs N > 1
    stdin is read to EOF and distinct misses allocate in parallel; the
    response stream is bit-identical at every job count. Serve and cache
    counters land in results/metrics.json on exit.
    --emit-requests DIR instead prints one request line per function of
    the `.pdgc` corpus under DIR — a self-contained request generator:
        pdgc serve --emit-requests corpus | pdgc serve

REPORT:
    `report` diffs two metrics.json snapshots (e.g. a committed baseline
    vs a fresh bench run) against per-metric regression thresholds:
    spill/copy/round counters may not grow by more than their tolerance,
    coalescing and preference-satisfaction counters may not shrink, and
    checker violations must stay zero. Exits non-zero naming every
    regressed metric, so CI can gate on allocation quality.

FILE FORMAT:
    The textual IR produced by the library's Display impl; see
    `pdgc demo` or the pdgc-ir documentation for the grammar."
}

fn pick_allocator(name: &str) -> Option<Box<dyn RegisterAllocator>> {
    use pdgc::core::baselines::*;
    Some(match name {
        "full" => Box::new(PreferenceAllocator::full()),
        "coalesce" => Box::new(PreferenceAllocator::coalescing_only()),
        "chaitin" => Box::new(ChaitinAllocator),
        "briggs" => Box::new(BriggsAllocator),
        "iterated" => Box::new(IteratedAllocator),
        "optimistic" => Box::new(OptimisticAllocator),
        "callcost" => Box::new(CallCostAllocator),
        _ => return None,
    })
}

fn pick_target(name: &str) -> Result<TargetDesc, String> {
    TargetRegistry::builtin()
        .resolve(name)
        .cloned()
        .map_err(|e| e.to_string())
}

struct Options {
    file: Option<String>,
    allocator: String,
    /// Whether --allocator was given explicitly (`corpus` defaults to
    /// every allocator when it was not).
    allocator_given: bool,
    target: String,
    args: Vec<u64>,
    trace: Option<String>,
    dump_graphs: Option<String>,
    jobs: Option<usize>,
    check: CheckMode,
    baseline: Option<String>,
    write_baseline: bool,
    socket: Option<String>,
    cache_cap: usize,
    sample_rate: u64,
    emit_requests: Option<String>,
}

fn parse_options(argv: &[String]) -> Result<Options, String> {
    let mut o = Options {
        file: None,
        allocator: "full".into(),
        allocator_given: false,
        target: "ia64-24".into(),
        args: Vec::new(),
        trace: None,
        dump_graphs: None,
        jobs: None,
        check: CheckMode::Off,
        baseline: None,
        write_baseline: false,
        socket: None,
        cache_cap: 1024,
        sample_rate: 16,
        emit_requests: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--allocator" => {
                o.allocator = it.next().ok_or("--allocator needs a value")?.clone();
                o.allocator_given = true;
            }
            "--target" => {
                o.target = it.next().ok_or("--target needs a value")?.clone();
            }
            "--args" => {
                let v = it.next().ok_or("--args needs a value")?;
                o.args = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|_| format!("bad arg `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--trace" => {
                o.trace = Some(it.next().ok_or("--trace needs a value")?.clone());
            }
            "--dump-graphs" => {
                o.dump_graphs = Some(it.next().ok_or("--dump-graphs needs a value")?.clone());
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = Some(v.parse().map_err(|_| format!("bad job count `{v}`"))?);
            }
            "--check" => {
                o.check = CheckMode::Always;
            }
            "--baseline" => {
                o.baseline = Some(it.next().ok_or("--baseline needs a value")?.clone());
            }
            "--write-baseline" => {
                o.write_baseline = true;
            }
            "--socket" => {
                o.socket = Some(it.next().ok_or("--socket needs a value")?.clone());
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                o.cache_cap = v.parse().map_err(|_| format!("bad cache cap `{v}`"))?;
            }
            "--sample-rate" => {
                let v = it.next().ok_or("--sample-rate needs a value")?;
                o.sample_rate = v.parse().map_err(|_| format!("bad sample rate `{v}`"))?;
            }
            "--emit-requests" => {
                o.emit_requests = Some(it.next().ok_or("--emit-requests needs a value")?.clone());
            }
            other => {
                // Also accept the --flag=value spelling.
                if let Some(v) = other.strip_prefix("--trace=") {
                    o.trace = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--dump-graphs=") {
                    o.dump_graphs = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--jobs=") {
                    o.jobs = Some(v.parse().map_err(|_| format!("bad job count `{v}`"))?);
                } else if let Some(v) = other.strip_prefix("--check=") {
                    o.check = CheckMode::parse(v)
                        .ok_or_else(|| format!("bad check mode `{v}` (off, debug, always)"))?;
                } else if let Some(v) = other.strip_prefix("--baseline=") {
                    o.baseline = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--allocator=") {
                    o.allocator = v.to_string();
                    o.allocator_given = true;
                } else if let Some(v) = other.strip_prefix("--target=") {
                    o.target = v.to_string();
                } else if let Some(v) = other.strip_prefix("--socket=") {
                    o.socket = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--cache-cap=") {
                    o.cache_cap = v.parse().map_err(|_| format!("bad cache cap `{v}`"))?;
                } else if let Some(v) = other.strip_prefix("--sample-rate=") {
                    o.sample_rate = v.parse().map_err(|_| format!("bad sample rate `{v}`"))?;
                } else if let Some(v) = other.strip_prefix("--emit-requests=") {
                    o.emit_requests = Some(v.to_string());
                } else if other.starts_with("--") {
                    return Err(format!("unknown flag {other}"));
                } else if o.file.replace(other.to_string()).is_some() {
                    return Err("more than one input file".into());
                }
            }
        }
    }
    Ok(o)
}

/// Builds the tracer requested on the command line: a JSONL sink for
/// `--trace`, a DOT-dump sink for `--dump-graphs`, fanned out when both
/// are given. `None` when tracing was not requested.
fn build_tracer(o: &Options) -> Result<Option<FanoutTracer>, String> {
    if o.trace.is_none() && o.dump_graphs.is_none() {
        return Ok(None);
    }
    let mut fan = FanoutTracer::new();
    if let Some(path) = &o.trace {
        let file =
            std::fs::File::create(path).map_err(|e| format!("creating trace {path}: {e}"))?;
        fan.push(Box::new(JsonLinesSink::new(std::io::BufWriter::new(file))));
    }
    if let Some(dir) = &o.dump_graphs {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        fan.push(Box::new(DotDirSink::new(dir)));
    }
    Ok(Some(fan))
}

fn allocate_maybe_traced(
    alloc: &dyn RegisterAllocator,
    func: &Function,
    target: &TargetDesc,
    o: &Options,
) -> Result<AllocOutput, String> {
    // The scratch path fills the always-on metrics registry; the
    // single-function CLI keeps the checker's full-replay scope.
    let mut scratch = pdgc::core::PhaseScratch::new();
    let scope = pdgc::core::CheckScope::Full;
    let out = match build_tracer(o)? {
        Some(mut tracer) => alloc
            .allocate_scratch(func, target, &mut tracer, o.check, scope, &mut scratch)
            .map_err(|e| e.to_string())?,
        None => alloc
            .allocate_scratch(func, target, &mut NoopTracer, o.check, scope, &mut scratch)
            .map_err(|e| e.to_string())?,
    };
    if o.check.should_check() {
        eprintln!("symbolic check passed ({} mode)", o.check);
    }
    if let Some(path) = &o.trace {
        eprintln!("trace written to {path}");
    }
    if let Some(dir) = &o.dump_graphs {
        eprintln!("graph dumps written to {dir}/");
    }
    match pdgc_bench::write_metrics("pdgc", alloc.name(), &target.name, &scratch.metrics) {
        Ok(path) => eprintln!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
    Ok(out)
}

fn load(o: &Options) -> Result<(Function, Box<dyn RegisterAllocator>, TargetDesc), String> {
    let file = o.file.as_ref().ok_or("missing input file")?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
    let func = pdgc::ir::parse_function(&text).map_err(|e| format!("{file}: {e}"))?;
    let alloc = pick_allocator(&o.allocator)
        .ok_or_else(|| format!("unknown allocator `{}`", o.allocator))?;
    let target = pick_target(&o.target)?;
    Ok((func, alloc, target))
}

fn cmd_allocate(o: &Options) -> Result<(), String> {
    let (func, alloc, target) = load(o)?;
    let out = allocate_maybe_traced(alloc.as_ref(), &func, &target, o)?;
    println!("{}", out.mach);
    let s = &out.stats;
    println!(
        "\nallocator: {}   target: {}\ncopies: {} -> {} ({} coalesced)   spills: {}   \
         caller-saves: {}   paired loads: {}   zero-exts: {}   rounds: {}",
        alloc.name(),
        target.name,
        s.copies_before,
        s.copies_remaining,
        s.moves_eliminated,
        s.spill_instructions,
        s.caller_save_insts,
        s.paired_loads,
        s.zero_extensions,
        s.rounds,
    );
    Ok(())
}

fn cmd_run(o: &Options) -> Result<(), String> {
    let (func, alloc, target) = load(o)?;
    if o.args.len() != func.sig.params.len() {
        return Err(format!(
            "{} takes {} arguments; pass them with --args (got {})",
            func.name,
            func.sig.params.len(),
            o.args.len()
        ));
    }
    let out = allocate_maybe_traced(alloc.as_ref(), &func, &target, o)?;
    let reference = run_ir(&func, &o.args, DEFAULT_FUEL).map_err(|e| e.to_string())?;
    let allocated =
        run_mach(&out.mach, &target, &o.args, DEFAULT_FUEL).map_err(|e| e.to_string())?;
    check_equivalent(&reference, &allocated)
        .map_err(|e| format!("allocation is NOT semantics-preserving: {e}"))?;
    println!("{}", out.mach);
    println!("\nresult: {:?} (equivalence verified)", allocated.ret);
    println!(
        "cycles: {} allocated vs {} reference-weighted ({} instructions executed)",
        allocated.cycles, reference.cycles, allocated.steps
    );
    Ok(())
}

/// Like [`pick_allocator`], but `Sync` so the batch driver can share the
/// allocator across worker threads. Every shipped allocator is stateless
/// between calls, so all of them qualify.
fn pick_allocator_sync(name: &str) -> Option<Box<dyn RegisterAllocator + Sync>> {
    use pdgc::core::baselines::*;
    Some(match name {
        "full" => Box::new(PreferenceAllocator::full()),
        "coalesce" => Box::new(PreferenceAllocator::coalescing_only()),
        "chaitin" => Box::new(ChaitinAllocator),
        "briggs" => Box::new(BriggsAllocator),
        "iterated" => Box::new(IteratedAllocator),
        "optimistic" => Box::new(OptimisticAllocator),
        "callcost" => Box::new(CallCostAllocator),
        _ => return None,
    })
}

fn cmd_bench_batch(o: &Options) -> Result<(), String> {
    let alloc = pick_allocator_sync(&o.allocator)
        .ok_or_else(|| format!("unknown allocator `{}`", o.allocator))?;
    let target = pick_target(&o.target)?;
    let jobs = o
        .jobs
        .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
        .unwrap_or(1)
        .max(1);
    let workloads: Vec<pdgc_workloads::Workload> = pdgc_workloads::specjvm_suite()
        .iter()
        .map(|p| pdgc_workloads::generate(&p.for_target(&target)))
        .collect();
    let total: usize = workloads.iter().map(|w| w.funcs.len()).sum();
    println!(
        "batch: {total} functions, allocator {}, target {}, jobs 1 vs {jobs}",
        o.allocator, target.name
    );
    let cmp =
        pdgc_bench::batch::compare_jobs_checked(alloc.as_ref(), &workloads, &target, jobs, 1, o.check);
    if o.check.should_check() {
        println!("symbolic check: every allocation of both runs proven ({} mode)", o.check);
    }
    for r in [&cmp.serial, &cmp.parallel] {
        println!(
            "jobs={:<3} {:8.1} ms   {:7.1} funcs/sec   {:.2}x",
            r.jobs,
            r.elapsed.as_secs_f64() * 1e3,
            r.funcs_per_sec(),
            r.funcs_per_sec() / cmp.serial.funcs_per_sec().max(1e-9),
        );
    }
    let path = cmp.write_json().map_err(|e| e.to_string())?;
    println!("wrote {}", path.display());
    let mpath = pdgc_bench::write_metrics(
        "bench_batch",
        cmp.serial.allocator,
        &target.name,
        &cmp.serial.metrics,
    )
    .map_err(|e| e.to_string())?;
    println!("wrote {}", mpath.display());
    if !cmp.identical() {
        return Err("parallel allocation diverged from serial".into());
    }
    if !cmp.serial.metrics.deterministic_eq(&cmp.parallel.metrics) {
        return Err("parallel metrics diverged from serial".into());
    }
    println!("allocations identical across job counts: yes");
    println!("metrics identical across job counts: yes");
    Ok(())
}

fn cmd_corpus(o: &Options) -> Result<(), String> {
    use pdgc_bench::corpus;
    let dir = o.file.as_ref().ok_or("missing corpus directory")?;
    let files = corpus::load_corpus_dir(std::path::Path::new(dir))
        .map_err(|e| format!("loading corpus {dir}: {e}"))?;
    let target = pick_target(&o.target)?;
    let allocators: Vec<Box<dyn RegisterAllocator>> = if o.allocator_given {
        vec![pick_allocator(&o.allocator)
            .ok_or_else(|| format!("unknown allocator `{}`", o.allocator))?]
    } else {
        pdgc::all_allocators()
    };
    let mut metrics = pdgc::obs::MetricsRegistry::default();
    let report = corpus::run_corpus(&files, &allocators, &target, o.check, &mut metrics);
    println!(
        "corpus: {} files, {} functions, {} allocators, target {}, check {}",
        files.len(),
        report.funcs,
        allocators.len(),
        target.name,
        o.check
    );

    // Aggregate one table row per allocator (per-function detail lives
    // in the baseline).
    let rows: Vec<Vec<String>> = allocators
        .iter()
        .map(|a| {
            let mine: Vec<_> = report
                .rows
                .iter()
                .filter(|r| r.allocator == a.name())
                .collect();
            let sum = |f: fn(&corpus::CorpusRow) -> u64| {
                mine.iter().map(|r| f(r)).sum::<u64>().to_string()
            };
            vec![
                a.name().to_string(),
                mine.len().to_string(),
                sum(|r| r.spills),
                sum(|r| r.copies),
                sum(|r| r.paired),
            ]
        })
        .collect();
    pdgc_bench::print_table(&["allocator", "funcs", "spills", "copies", "paired"], &rows);

    let label = if o.allocator_given { o.allocator.as_str() } else { "all" };
    match pdgc_bench::write_metrics("corpus", label, &target.name, &metrics) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }

    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("FAIL {f}");
        }
        return Err(format!("{} corpus failure(s)", report.failures.len()));
    }

    let bpath = o
        .baseline
        .clone()
        .unwrap_or_else(|| format!("{}/baseline.json", dir.trim_end_matches('/')));
    if o.write_baseline {
        let body = corpus::baseline_json(&target.name, &report.rows);
        std::fs::write(&bpath, body + "\n").map_err(|e| format!("writing {bpath}: {e}"))?;
        println!("baseline written to {bpath} ({} entries)", report.rows.len());
        return Ok(());
    }
    match std::fs::read_to_string(&bpath) {
        Ok(text) => {
            let (btarget, brows) =
                corpus::parse_baseline(&text).map_err(|e| format!("{bpath}: {e}"))?;
            let regressions =
                corpus::compare_baseline(&btarget, &brows, &target.name, &report.rows);
            if !regressions.is_empty() {
                for r in &regressions {
                    eprintln!("REGRESSION {r}");
                }
                return Err(format!(
                    "{} regression(s) against {bpath}",
                    regressions.len()
                ));
            }
            println!("baseline match: all {} entries identical to {bpath}", report.rows.len());
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("no baseline at {bpath}; run with --write-baseline to create one");
        }
        Err(e) => return Err(format!("reading {bpath}: {e}")),
    }
    Ok(())
}

fn cmd_demo(o: &Options) -> Result<(), String> {
    let text = "\
fn fig7(v0: int) {
b0:
    v1 = [v0+0]
    jump b1
b1:
    v2 = [v1+0]
    v3 = [v1+8]
    v4 = v1
    v5 = add v2, v3
    call g(v4)
    v1 = add v5, #1
    if ne v1, #0 goto b1 else b2
b2:
    ret
}";
    println!("input (the paper's Figure 7(a)):\n\n{text}\n");
    let func = pdgc::ir::parse_function(text).map_err(|e| e.to_string())?;
    let target = TargetDesc::figure7();
    let out = allocate_maybe_traced(&PreferenceAllocator::full(), &func, &target, o)?;
    println!("allocated on the paper's 3-register machine:\n\n{}", out.mach);
    println!(
        "\n{} copies coalesced, {} paired load fused — Figure 7(h) reproduced.",
        out.stats.moves_eliminated, out.stats.paired_loads
    );
    Ok(())
}

/// Which direction of change regresses a gated counter.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Gate {
    /// Growth beyond the tolerance is a regression (spills, rounds, …).
    HigherIsWorse,
    /// Shrinkage beyond the tolerance is a regression (coalesced moves,
    /// honored preferences, …).
    LowerIsWorse,
    /// Any change is a regression (workload shape).
    Exact,
}

/// The gated metrics: name in the snapshot's `counters` section, gate
/// direction, and tolerance in percent of the baseline value.
const GATES: &[(&str, Gate, u128)] = &[
    ("spill_instructions", Gate::HigherIsWorse, 2),
    ("spill_loads", Gate::HigherIsWorse, 2),
    ("spill_stores", Gate::HigherIsWorse, 2),
    ("copies_remaining", Gate::HigherIsWorse, 2),
    ("rounds_total", Gate::HigherIsWorse, 2),
    ("caller_save_insts", Gate::HigherIsWorse, 5),
    ("zero_extensions", Gate::HigherIsWorse, 5),
    ("check_violations", Gate::HigherIsWorse, 0),
    ("moves_eliminated", Gate::LowerIsWorse, 2),
    ("paired_loads_fused", Gate::LowerIsWorse, 2),
    ("pref_coalesce_honored", Gate::LowerIsWorse, 5),
    ("pref_seq_plus_honored", Gate::LowerIsWorse, 5),
    ("pref_seq_minus_honored", Gate::LowerIsWorse, 5),
    ("pref_prefers_honored", Gate::LowerIsWorse, 5),
    ("funcs_allocated", Gate::Exact, 0),
    // SPL fast-path coverage: fewer fast analyses / SPL-derived frequency
    // computations means the decomposition stopped recognizing shapes it
    // used to handle; more fallbacks means the same thing from the other
    // side. Region counts are workload shape, pinned exactly.
    ("spl_analyses_fast", Gate::LowerIsWorse, 0),
    ("spl_analyses_fallback", Gate::HigherIsWorse, 0),
    ("spl_freq_fast", Gate::LowerIsWorse, 0),
    ("spl_regions", Gate::Exact, 0),
    ("spl_loop_regions", Gate::Exact, 0),
];

fn read_snapshot(path: &str) -> Result<pdgc::obs::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    pdgc::obs::json::Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_serve(o: &Options) -> Result<(), String> {
    use pdgc::obs::Counter;
    use pdgc_bench::serve::{allocator_by_name, corpus_requests, ServeConfig, ServeSession};
    if let Some(dir) = &o.emit_requests {
        // Request-generator mode: render a corpus as a JSONL request
        // stream and exit, so a shell pipeline (or CI) can feed the
        // daemon without any external JSON tooling.
        let files = pdgc_bench::corpus::load_corpus_dir(std::path::Path::new(dir))
            .map_err(|e| format!("loading corpus {dir}: {e}"))?;
        let text = corpus_requests(&files, &o.target, &o.allocator, o.check)?;
        print!("{text}");
        return Ok(());
    }
    // Validate the default names up front so a typo fails at startup
    // rather than on every request.
    allocator_by_name(&o.allocator).ok_or_else(|| format!("unknown allocator `{}`", o.allocator))?;
    pick_target(&o.target)?;
    let mut session = ServeSession::new(ServeConfig {
        target: o.target.clone(),
        allocator: o.allocator.clone(),
        check: o.check,
        cache_cap: o.cache_cap,
        sample_rate: o.sample_rate,
        jobs: o.jobs.unwrap_or(1).max(1),
    });
    // Responses go to stdout; everything human-facing goes to stderr so
    // the JSONL stream stays machine-clean.
    if let Some(path) = &o.socket {
        eprintln!(
            "serving on {path} (allocator {}, target {})",
            o.allocator, o.target
        );
        session
            .run_socket(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        session
            .run(stdin.lock(), stdout.lock())
            .map_err(|e| e.to_string())?;
    }
    let m = session.metrics();
    eprintln!(
        "serve: {} requests, {} hits ({} re-checked), {} misses, {} errors, {} evictions, {} entries cached",
        m.get(Counter::ServeRequests),
        m.get(Counter::CacheHits),
        m.get(Counter::CacheHitChecks),
        m.get(Counter::CacheMisses),
        m.get(Counter::ServeErrors),
        m.get(Counter::CacheEvictions),
        session.cache_len(),
    );
    let mpath =
        pdgc_bench::write_metrics("serve", &o.allocator, &o.target, m).map_err(|e| e.to_string())?;
    eprintln!("wrote {}", mpath.display());
    Ok(())
}

fn cmd_report(argv: &[String]) -> Result<(), String> {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a value")?.clone()),
            "--current" => current = Some(it.next().ok_or("--current needs a value")?.clone()),
            other => {
                if let Some(v) = other.strip_prefix("--baseline=") {
                    baseline = Some(v.to_string());
                } else if let Some(v) = other.strip_prefix("--current=") {
                    current = Some(v.to_string());
                } else {
                    return Err(format!("unknown report flag {other}"));
                }
            }
        }
    }
    let bpath = baseline.ok_or("report needs --baseline FILE")?;
    let cpath = current.ok_or("report needs --current FILE")?;
    let base = read_snapshot(&bpath)?;
    let cur = read_snapshot(&cpath)?;
    let bc = &base["counters"];
    let cc = &cur["counters"];

    println!(
        "metrics report: {} ({}) vs {} ({})",
        bpath,
        base["source"].as_str().unwrap_or("?"),
        cpath,
        cur["source"].as_str().unwrap_or("?"),
    );
    println!(
        "{:<24} {:>12} {:>12} {:>8}   verdict",
        "metric", "baseline", "current", "tol%"
    );
    let mut regressions: Vec<String> = Vec::new();
    for &(name, gate, tol) in GATES {
        let Some(b) = bc[name].as_u64() else {
            println!("{name:<24} {:>12} {:>12} {tol:>8}   skipped (not in baseline)", "-", "-");
            continue;
        };
        let (c, verdict) = match cc[name].as_u64() {
            None => (None, "REGRESSION (missing in current)"),
            Some(c) => {
                // Integer threshold math: regressed iff the change exceeds
                // tol percent of the baseline, with no rounding slack.
                let regressed = match gate {
                    Gate::HigherIsWorse => u128::from(c) * 100 > u128::from(b) * (100 + tol),
                    Gate::LowerIsWorse => u128::from(c) * 100 < u128::from(b) * (100 - tol),
                    Gate::Exact => c != b,
                };
                (Some(c), if regressed { "REGRESSION" } else { "ok" })
            }
        };
        let cs = c.map_or("-".to_string(), |v| v.to_string());
        println!("{name:<24} {b:>12} {cs:>12} {tol:>8}   {verdict}");
        if verdict.starts_with("REGRESSION") {
            regressions.push(name.to_string());
        }
    }

    // Latency is wall-clock and machine-dependent: report it, never gate.
    let (bl, cl) = (&base["latency_hists"], &cur["latency_hists"]);
    let bl_fields = bl.fields().unwrap_or(&[]);
    if !bl_fields.is_empty() {
        println!("\nphase latency (informational, not gated):");
        for (phase, bh) in bl_fields {
            let bsum = bh["sum"].as_u64().unwrap_or(0);
            let csum = cl[phase.as_str()]["sum"].as_u64().unwrap_or(0);
            println!(
                "  {phase:<12} {:>10.3} ms -> {:>10.3} ms",
                bsum as f64 / 1e6,
                csum as f64 / 1e6
            );
        }
    }

    if regressions.is_empty() {
        println!("\nno regressions: every gated metric within tolerance");
        Ok(())
    } else {
        Err(format!(
            "metrics regression in: {} (see table above)",
            regressions.join(", ")
        ))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("allocate") => parse_options(&argv[1..]).and_then(|o| cmd_allocate(&o)),
        Some("run") => parse_options(&argv[1..]).and_then(|o| cmd_run(&o)),
        Some("demo") => parse_options(&argv[1..]).and_then(|o| cmd_demo(&o)),
        Some("corpus") => parse_options(&argv[1..]).and_then(|o| cmd_corpus(&o)),
        Some("report") => cmd_report(&argv[1..]),
        Some("serve") => parse_options(&argv[1..]).and_then(|o| cmd_serve(&o)),
        Some("bench") => match argv.get(1).map(String::as_str) {
            Some("batch") => parse_options(&argv[2..]).and_then(|o| cmd_bench_batch(&o)),
            other => Err(format!(
                "unknown bench subcommand {}\n\n{}",
                other.unwrap_or("(none)"),
                usage()
            )),
        },
        Some("--help") | Some("-h") | None => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
