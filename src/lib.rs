//! # pdgc — Preference-Directed Graph Coloring
//!
//! A complete, from-scratch reproduction of *Preference-Directed Graph
//! Coloring* (Akira Koseki, Hideaki Komatsu, Toshio Nakatani; PLDI 2002):
//! a Chaitin-style register allocator that resolves spill decisions,
//! register coalescing, and irregular-register preferences simultaneously
//! using two graphs — the **Register Preference Graph** (RPG) and the
//! **Coloring Precedence Graph** (CPG).
//!
//! This facade re-exports the whole toolkit:
//!
//! * [`ir`] — the register-transfer IR the allocator consumes;
//! * [`analysis`] — liveness, dominators, loops, frequencies;
//! * [`target`] — register files, conventions, pressure models, machine
//!   code;
//! * [`core`] — the allocator, the RPG/CPG machinery, and five baseline
//!   allocators from the literature;
//! * [`check`] — the post-allocation symbolic checker that independently
//!   proves an allocation correct (see `DESIGN.md` §6f);
//! * [`sim`] — IR/machine interpreters, differential checking, and the
//!   cycle model behind the paper's "elapsed time" figures;
//! * [`workloads`] — seeded SPECjvm98-analog program generation;
//! * [`obs`] — the allocation tracing layer: phase spans, per-node
//!   decision events, and JSONL / pretty / DOT sinks.
//!
//! ## Quick start
//!
//! ```
//! use pdgc::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a function: f(p) = [p] + [p+8]
//! let mut b = FunctionBuilder::new("sum2", vec![RegClass::Int], Some(RegClass::Int));
//! let p = b.param(0);
//! let x = b.load(p, 0);
//! let y = b.load(p, 8);
//! let s = b.bin(BinOp::Add, x, y);
//! b.ret(Some(s));
//! let func = b.finish();
//!
//! // Allocate with the paper's full-preference allocator.
//! let target = TargetDesc::ia64_like(PressureModel::Middle);
//! let out = PreferenceAllocator::full().allocate(&func, &target)?;
//!
//! // The adjacent loads were fused into an IA-64-style paired load.
//! assert_eq!(out.stats.paired_loads, 1);
//!
//! // And the allocation is semantics-preserving.
//! let reference = run_ir(&func, &[64], DEFAULT_FUEL)?;
//! let allocated = run_mach(&out.mach, &target, &[64], DEFAULT_FUEL)?;
//! check_equivalent(&reference, &allocated).map_err(|e| format!("diverged: {e}"))?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pdgc_analysis as analysis;
pub use pdgc_check as check;
pub use pdgc_core as core;
pub use pdgc_ir as ir;
pub use pdgc_obs as obs;
pub use pdgc_sim as sim;
pub use pdgc_target as target;
pub use pdgc_workloads as workloads;

/// The commonly-used names in one import.
pub mod prelude {
    pub use pdgc_core::baselines::{
        BriggsAllocator, CallCostAllocator, ChaitinAllocator, IteratedAllocator,
        OptimisticAllocator, PriorityAllocator,
    };
    pub use pdgc_check::{check_allocation, CheckError, CheckMode, CheckReport, Violation};
    pub use pdgc_core::{
        AllocError, AllocOutput, AllocStats, CheckScope, PhaseScratch, PreferenceAllocator,
        PreferenceSet, RegisterAllocator,
    };
    pub use pdgc_ir::{BinOp, Block, CmpOp, Function, FunctionBuilder, RegClass, VReg};
    pub use pdgc_obs::{
        DotDirSink, Event, FanoutTracer, JsonLinesSink, NoopTracer, Phase, PhaseTimes,
        PrettySink, RecordingTracer, Tracer,
    };
    pub use pdgc_sim::{check_equivalent, run_ir, run_mach, DEFAULT_FUEL};
    pub use pdgc_target::{
        ClassSpec, MachFunction, PairRule, PairedLoadRule, PhysReg, PressureModel, TargetBuilder,
        TargetDesc, TargetError, TargetRegistry,
    };
    pub use pdgc_workloads::{default_args, generate, specjvm_suite, Workload};
}

/// Every allocator of the paper's evaluation, boxed for uniform harness
/// iteration: the base (Chaitin+aggressive), Briggs+aggressive, iterated
/// coalescing, optimistic coalescing, aggressive+volatility, both
/// configurations of the preference-directed allocator, and the paper's
/// proposed conservative-pre-coalescing refinement.
pub fn all_allocators() -> Vec<Box<dyn core::RegisterAllocator>> {
    use prelude::*;
    vec![
        Box::new(ChaitinAllocator),
        Box::new(BriggsAllocator),
        Box::new(IteratedAllocator),
        Box::new(OptimisticAllocator),
        Box::new(CallCostAllocator),
        Box::new(PriorityAllocator),
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(PreferenceAllocator::full()),
        Box::new(PreferenceAllocator::full().with_precoalesce()),
    ]
}
