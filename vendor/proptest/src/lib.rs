//! A small offline stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, range and tuple strategies, `prop_map`,
//! and `collection::vec`.
//!
//! Cases are generated from a fixed-seed deterministic PRNG, so runs are
//! reproducible. Unlike the real crate there is **no shrinking** and no
//! persisted regression corpus: a failing case panics with the assertion
//! message straight away.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation and the pass/fail/reject protocol.

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// The case was vetoed by `prop_assume!`; generate another.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-case result used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Knobs honoured by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic case source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner with the fixed default seed.
        pub fn new() -> Self {
            TestRunner { state: 0x8537_1f2f_9a6d_0c41 }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n`; `n` must be non-zero.
        pub fn pick(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty set");
            (self.next_u64() % n as u64) as usize
        }

        /// A uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new()
        }
    }

    /// Drives `case` until `config.cases` cases pass. Rejections retry
    /// with fresh inputs; a failure panics with the case's message.
    pub fn run(config: ProptestConfig, mut case: impl FnMut(&mut TestRunner) -> TestCaseResult) {
        let mut runner = TestRunner::new();
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_cap = config.cases.saturating_mul(20).saturating_add(256);
        while passed < config.cases {
            match case(&mut runner) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < reject_cap,
                        "too many rejected cases ({rejected}) after {passed} passes"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed after {passed} passes: {msg}")
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRunner;

    /// Something that can produce values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrink tree: a strategy is just
    /// a sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// A strategy producing `f(value)`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0.new_value(runner)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// Uniform choice between alternatives; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`, each equally likely.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let i = runner.pick(self.options.len());
            self.options[i].new_value(runner)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add((runner.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return runner.next_u64() as $t;
                    }
                    lo.wrapping_add((runner.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + runner.f64_unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// One arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            runner.f64_unit()
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, runner: &mut TestRunner) -> A {
            A::arbitrary(runner)
        }
    }

    /// A strategy for any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A length bound for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + runner.pick(span.max(1));
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// A strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::test_runner::run($cfg, |runner| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), runner);)+
                    (|| -> $crate::test_runner::TestCaseResult { $body; Ok(()) })()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between the given strategies, which may be of
/// different types as long as they generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 2u8..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(p in (0usize..10, 0usize..10), z in (0u8..4).prop_map(|v| v * 2)) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert_eq!(z % 2, 0);
        }

        #[test]
        fn oneof_and_just(t in prop_oneof![Just(Tri::A), Just(Tri::B), (0u8..1).prop_map(|_| Tri::C)]) {
            prop_assert_ne!(format!("{t:?}").len(), 0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x was {}", x);
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        crate::test_runner::run(ProptestConfig::with_cases(5), |runner| {
            let x = Strategy::new_value(&(0usize..10), runner);
            prop_assert!(x >= 10, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn question_mark_works() {
        crate::test_runner::run(ProptestConfig::with_cases(5), |_runner| {
            let parsed: Result<u32, _> = "42".parse::<u32>();
            let v = parsed.map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(v, 42);
            Ok(())
        });
    }
}
