//! A small offline stand-in for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, `prop_assert*` / `prop_assume!`,
//! `prop_oneof!`, `Just`, `any`, range and tuple strategies, `prop_map`,
//! and `collection::vec`.
//!
//! Cases are generated from a fixed-seed deterministic PRNG, so runs are
//! reproducible. Unlike the real crate there is no integrated shrink
//! *tree*, but strategies implement value-level [`strategy::Strategy::shrink`]
//! (integers bisect toward their lower bound, vectors shorten and shrink
//! elements, tuples shrink componentwise) and the runner greedily applies
//! it to a failing case before panicking, so counterexamples come out
//! small.
//!
//! Failing seeds are persisted to the sibling
//! `<test-file>.proptest-regressions` file in the real crate's `cc <hex>`
//! line format (the first 16 hex digits hold the runner seed), and every
//! run replays the seeds found there before generating fresh cases.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case generation, the pass/fail/reject protocol, shrinking, and the
    //! regression corpus.

    use crate::strategy::Strategy;

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// The case was vetoed by `prop_assume!`; generate another.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Per-case result used by generated test bodies.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Knobs honoured by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config that runs `cases` passing cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic case source handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRunner {
        state: u64,
    }

    impl TestRunner {
        /// A runner with the fixed default seed.
        pub fn new() -> Self {
            TestRunner { state: 0x8537_1f2f_9a6d_0c41 }
        }

        /// A runner whose stream starts at `seed` (used to replay
        /// persisted regressions).
        pub fn from_seed(seed: u64) -> Self {
            TestRunner { state: seed }
        }

        /// The current PRNG state: capturing it before generating a case
        /// and passing it to [`TestRunner::from_seed`] replays that case.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform index in `0..n`; `n` must be non-zero.
        pub fn pick(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot pick from an empty set");
            (self.next_u64() % n as u64) as usize
        }

        /// A uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Default for TestRunner {
        fn default() -> Self {
            TestRunner::new()
        }
    }

    /// Drives `case` until `config.cases` cases pass. Rejections retry
    /// with fresh inputs; a failure panics with the case's message.
    ///
    /// This is the raw driver with no shrinking or regression corpus; the
    /// `proptest!` macro uses [`run_with_shrink`].
    pub fn run(config: ProptestConfig, mut case: impl FnMut(&mut TestRunner) -> TestCaseResult) {
        let mut runner = TestRunner::new();
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_cap = config.cases.saturating_mul(20).saturating_add(256);
        while passed < config.cases {
            match case(&mut runner) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < reject_cap,
                        "too many rejected cases ({rejected}) after {passed} passes"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed after {passed} passes: {msg}")
                }
            }
        }
    }

    /// Hard cap on case re-executions spent minimizing one failure.
    const SHRINK_BUDGET: usize = 4096;

    /// [`run`] with shrinking and regression-corpus support, driven by a
    /// single strategy for the whole input tuple:
    ///
    /// 1. every seed persisted in `<source_file>.proptest-regressions`
    ///    is replayed first;
    /// 2. fresh cases are generated until `config.cases` pass, capturing
    ///    the runner state before each one;
    /// 3. on failure, the failing seed is appended to the regression file
    ///    and the input is greedily shrunk via [`Strategy::shrink`] before
    ///    the final panic reports the minimal failing input.
    pub fn run_with_shrink<S: Strategy>(
        config: ProptestConfig,
        source_file: &str,
        strat: &S,
        case: impl Fn(&S::Value) -> TestCaseResult,
    ) where
        S::Value: Clone + std::fmt::Debug,
    {
        for seed in regressions::load(source_file) {
            let mut runner = TestRunner::from_seed(seed);
            let value = strat.new_value(&mut runner);
            if let Err(TestCaseError::Fail(msg)) = case(&value) {
                shrink_and_panic(strat, &case, value, msg, seed, 0);
            }
        }
        let mut runner = TestRunner::new();
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let reject_cap = config.cases.saturating_mul(20).saturating_add(256);
        while passed < config.cases {
            let seed = runner.state();
            let value = strat.new_value(&mut runner);
            match case(&value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < reject_cap,
                        "too many rejected cases ({rejected}) after {passed} passes"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    regressions::persist(source_file, seed);
                    shrink_and_panic(strat, &case, value, msg, seed, passed);
                }
            }
        }
    }

    /// Greedily minimizes `value` (keeping it failing), then panics with
    /// the shrunk input and the seed that reproduces it.
    fn shrink_and_panic<S: Strategy>(
        strat: &S,
        case: &impl Fn(&S::Value) -> TestCaseResult,
        mut value: S::Value,
        mut msg: String,
        seed: u64,
        passed: u32,
    ) -> !
    where
        S::Value: Clone + std::fmt::Debug,
    {
        let mut evals = 0usize;
        'minimize: while evals < SHRINK_BUDGET {
            for cand in strat.shrink(&value) {
                evals += 1;
                if let Err(TestCaseError::Fail(m)) = case(&cand) {
                    value = cand;
                    msg = m;
                    continue 'minimize; // restart from the smaller input
                }
                if evals >= SHRINK_BUDGET {
                    break;
                }
            }
            break; // no candidate still fails: `value` is minimal
        }
        panic!(
            "proptest case failed after {passed} passes: {msg}\n\
             minimal failing input (after {evals} shrink attempts): {value:?}\n\
             replay seed: {seed:#018x}"
        );
    }

    mod regressions {
        //! The persisted failing-seed corpus, in the real crate's file
        //! format: one `cc <64 hex digits>` line per failure, of which the
        //! first 16 digits hold the [`TestRunner`](super::TestRunner) seed.

        use std::path::PathBuf;

        /// Candidate locations of the corpus for a `file!()` path. Test
        /// binaries run with the *package* root as the working directory
        /// while `file!()` is workspace-relative, so besides the verbatim
        /// path every leading-component suffix is tried (e.g.
        /// `crates/analysis/tests/props.rs` → `tests/props.rs`).
        fn candidates(source_file: &str) -> Vec<PathBuf> {
            let base = match source_file.strip_suffix(".rs") {
                Some(stem) => format!("{stem}.proptest-regressions"),
                None => format!("{source_file}.proptest-regressions"),
            };
            let mut out = vec![PathBuf::from(&base)];
            let mut rest = base.as_str();
            while let Some((_, tail)) = rest.split_once('/') {
                out.push(PathBuf::from(tail));
                rest = tail;
            }
            out
        }

        /// Every replayable seed persisted for `source_file`.
        pub fn load(source_file: &str) -> Vec<u64> {
            for path in candidates(source_file) {
                if let Ok(text) = std::fs::read_to_string(&path) {
                    return parse(&text);
                }
            }
            Vec::new()
        }

        fn parse(text: &str) -> Vec<u64> {
            text.lines()
                .filter_map(|line| {
                    let line = line.trim();
                    let mut tokens = line.split_whitespace();
                    if tokens.next() != Some("cc") {
                        return None; // comment or blank
                    }
                    let blob = tokens.next()?;
                    u64::from_str_radix(blob.get(..16)?, 16).ok()
                })
                .collect()
        }

        /// Appends `seed` to the corpus for `source_file` (no-op if it is
        /// already recorded or no writable location exists — persistence
        /// is best-effort and never masks the test failure itself).
        pub fn persist(source_file: &str, seed: u64) {
            let cands = candidates(source_file);
            let path = cands
                .iter()
                .find(|p| p.exists())
                .or_else(|| cands.iter().find(|p| p.parent().is_some_and(|d| d.is_dir())))
                .cloned();
            let Some(path) = path else { return };
            let existing = std::fs::read_to_string(&path).unwrap_or_default();
            if parse(&existing).contains(&seed) {
                return;
            }
            let mut body = existing;
            if body.is_empty() {
                body.push_str(
                    "# Seeds for failure cases proptest has generated in the past.\n\
                     # It is automatically read and these particular cases re-run before\n\
                     # any novel cases are generated.\n",
                );
            }
            body.push_str(&format!("cc {seed:016x}{}\n", "0".repeat(48)));
            let _ = std::fs::write(&path, body);
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn parses_real_format_lines() {
                let text = "# comment\n\
                    cc 93b3e0b41c2b0bfdea07a969cfe961908e9be84e734a00128586380dc5e689a3 # shrinks to seed = 1, ops = 54\n\
                    \n\
                    not-a-cc-line\n\
                    cc 0000000000000010aaaa\n";
                assert_eq!(super::parse(text), vec![0x93b3_e0b4_1c2b_0bfd, 0x10]);
            }

            #[test]
            fn candidates_strip_leading_components() {
                let c = super::candidates("crates/analysis/tests/props.rs");
                let names: Vec<String> =
                    c.iter().map(|p| p.to_string_lossy().into_owned()).collect();
                assert_eq!(
                    names,
                    [
                        "crates/analysis/tests/props.proptest-regressions",
                        "analysis/tests/props.proptest-regressions",
                        "tests/props.proptest-regressions",
                        "props.proptest-regressions",
                    ]
                );
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRunner;

    /// Something that can produce values of `Self::Value`.
    ///
    /// Unlike real proptest there is no shrink tree: a strategy is a
    /// sampler plus a value-level [`shrink`](Strategy::shrink) proposing
    /// smaller variants of a failing value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Candidate simplifications of `value`, most aggressive first.
        /// Every candidate must itself be a value this strategy could
        /// have generated. The default proposes nothing.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// A strategy producing `f(value)`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.0.new_value(runner)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink(value)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
        // No shrink: the mapping is not invertible, so the pre-image of
        // the failing value is unknown.
    }

    /// Uniform choice between alternatives; backs `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`, each equally likely.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            let i = runner.pick(self.options.len());
            self.options[i].new_value(runner)
        }
        // No shrink: the producing arm is unknown, and another arm's
        // shrinker could propose values outside that arm's domain.
    }

    /// Bisection candidates for an integer at unsigned distance `delta`
    /// from its shrink target, nearest-target first.
    fn bisect_deltas(delta: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for d in [0, delta / 2, delta - 1] {
            if d < delta && !out.contains(&d) {
                out.push(d);
            }
        }
        out
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.abs_diff(self.start) as u64;
                    self.start.wrapping_add((runner.next_u64() % span) as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let delta = value.abs_diff(self.start) as u64;
                    if delta == 0 {
                        return Vec::new();
                    }
                    bisect_deltas(delta)
                        .into_iter()
                        .map(|d| self.start.wrapping_add(d as $t))
                        .collect()
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.abs_diff(lo) as u64;
                    if span == u64::MAX {
                        return runner.next_u64() as $t;
                    }
                    lo.wrapping_add((runner.next_u64() % (span + 1)) as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let lo = *self.start();
                    let delta = value.abs_diff(lo) as u64;
                    if delta == 0 {
                        return Vec::new();
                    }
                    bisect_deltas(delta)
                        .into_iter()
                        .map(|d| lo.wrapping_add(d as $t))
                        .collect()
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, runner: &mut TestRunner) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + runner.f64_unit() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            if *value <= self.start {
                return Vec::new();
            }
            vec![self.start, self.start + (value - self.start) / 2.0]
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Componentwise: shrink one position at a time,
                    // holding the others at the failing value.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// One arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;

        /// Simplifications of `value` (toward zero / `false`), used by
        /// [`Any`]'s shrinker.
        fn shrink_arb(_value: &Self) -> Vec<Self> {
            Vec::new()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> $t {
                    runner.next_u64() as $t
                }
                fn shrink_arb(value: &$t) -> Vec<$t> {
                    let delta = value.abs_diff(0) as u64;
                    if delta == 0 {
                        return Vec::new();
                    }
                    // Bisect the magnitude toward zero, keeping the sign.
                    let sign: $t = if *value < (0 as $t) { 0 as $t } else { 1 as $t };
                    bisect_deltas(delta)
                        .into_iter()
                        .map(|d| {
                            if sign == (1 as $t) {
                                (0 as $t).wrapping_add(d as $t)
                            } else {
                                (0 as $t).wrapping_sub(d as $t)
                            }
                        })
                        .collect()
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
        fn shrink_arb(value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> f64 {
            runner.f64_unit()
        }
        fn shrink_arb(value: &f64) -> Vec<f64> {
            if *value == 0.0 {
                return Vec::new();
            }
            vec![0.0, value / 2.0]
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, runner: &mut TestRunner) -> A {
            A::arbitrary(runner)
        }
        fn shrink(&self, value: &A) -> Vec<A> {
            A::shrink_arb(value)
        }
    }

    /// A strategy for any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A length bound for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + runner.pick(span.max(1));
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let lo = self.size.lo;
            // Shorten first (never below the length bound): the minimum,
            // the halfway point, then dropping single elements — last
            // first, then each interior position.
            if value.len() > lo {
                out.push(value[..lo].to_vec());
                let half = lo + (value.len() - lo) / 2;
                if half > lo && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in (0..value.len()).rev() {
                    let mut v = value.clone();
                    v.remove(i);
                    if v.len() >= lo {
                        out.push(v);
                    }
                }
            }
            // Then shrink elements in place.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    /// A strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// real proptest) that runs the body over generated inputs, replays the
/// sibling `.proptest-regressions` corpus first, and shrinks failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                // One tuple strategy over all arguments: values are drawn
                // left to right from the same runner stream the per-
                // argument generation used, so case inputs are unchanged.
                let __pdgc_strategy = ($(($strat),)+);
                $crate::test_runner::run_with_shrink(
                    $cfg,
                    file!(),
                    &__pdgc_strategy,
                    |__pdgc_value| {
                        let ($($arg,)+) = ::core::clone::Clone::clone(__pdgc_value);
                        (|| -> $crate::test_runner::TestCaseResult { $body; Ok(()) })()
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the operands are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between the given strategies, which may be of
/// different types as long as they generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Tri {
        A,
        B,
        C,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 2u8..=5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=5).contains(&y));
        }

        #[test]
        fn tuples_and_maps(p in (0usize..10, 0usize..10), z in (0u8..4).prop_map(|v| v * 2)) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert_eq!(z % 2, 0);
        }

        #[test]
        fn oneof_and_just(t in prop_oneof![Just(Tri::A), Just(Tri::B), (0u8..1).prop_map(|_| Tri::C)]) {
            prop_assert_ne!(format!("{t:?}").len(), 0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "x was {}", x);
        }

        #[test]
        fn vectors_sized(v in crate::collection::vec((0usize..5, 0usize..5), 0..20)) {
            prop_assert!(v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn five_plus_arguments_supported(
            a in 0usize..4,
            b in 0usize..4,
            c in 0usize..4,
            d in 0usize..4,
            e in 0usize..4,
        ) {
            prop_assert!(a < 4 && b < 4 && c < 4 && d < 4 && e < 4);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic() {
        crate::test_runner::run(ProptestConfig::with_cases(5), |runner| {
            let x = Strategy::new_value(&(0usize..10), runner);
            prop_assert!(x >= 10, "x was {}", x);
            Ok(())
        });
    }

    #[test]
    fn question_mark_works() {
        crate::test_runner::run(ProptestConfig::with_cases(5), |_runner| {
            let parsed: Result<u32, _> = "42".parse::<u32>();
            let v = parsed.map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(v, 42);
            Ok(())
        });
    }

    #[test]
    fn integer_shrink_bisects_toward_lower_bound() {
        let shrinks = Strategy::shrink(&(3usize..100), &83);
        assert_eq!(shrinks, vec![3, 43, 82]);
        assert!(Strategy::shrink(&(3usize..100), &3).is_empty());
        let inclusive = Strategy::shrink(&(2u8..=5), &4);
        assert_eq!(inclusive, vec![2, 3]);
    }

    #[test]
    fn signed_any_shrinks_toward_zero() {
        let shrinks = crate::strategy::Arbitrary::shrink_arb(&-40i32);
        assert_eq!(shrinks, vec![0, -20, -39]);
        assert!(crate::strategy::Arbitrary::shrink_arb(&0i32).is_empty());
    }

    #[test]
    fn vec_shrink_respects_min_length_and_shrinks_elements() {
        let strat = crate::collection::vec(0usize..10, 2..=4);
        let value = vec![7, 0, 5];
        let shrinks = Strategy::shrink(&strat, &value);
        assert!(shrinks.iter().all(|v| (2..=4).contains(&v.len())));
        assert!(shrinks.contains(&vec![7, 0])); // truncated to the minimum
        assert!(shrinks.contains(&vec![0, 0, 5])); // element 0 shrunk
        assert!(shrinks.contains(&vec![7, 5])); // middle element dropped
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let strat = (1usize..10, 0u8..4);
        let shrinks = Strategy::shrink(&strat, &(9, 3));
        assert!(shrinks.contains(&(1, 3)));
        assert!(shrinks.contains(&(9, 0)));
        assert!(!shrinks.contains(&(1, 0)), "only one component at a time");
    }

    #[test]
    fn shrinking_finds_minimal_counterexample() {
        // Fails whenever x >= 20: the shrinker must land exactly on 20.
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_with_shrink(
                ProptestConfig::with_cases(200),
                "no-such-dir/none.rs",
                &(0u64..1000,),
                |&(x,)| {
                    prop_assert!(x < 20, "x was {}", x);
                    Ok(())
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().expect("string panic");
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("(20,)"), "not minimal: {msg}");
    }

    #[test]
    fn regression_seed_replays_before_fresh_cases() {
        // A corpus seed whose first generated value trips the assertion
        // guarantees the failure fires immediately on replay, regardless
        // of what fresh generation would produce.
        let dir = std::env::temp_dir().join(format!("pdgc-proptest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("replay.rs");
        let corpus = dir.join("replay.proptest-regressions");
        // Find a seed that generates a failing value (>= 500).
        let mut seed = 1u64;
        loop {
            let mut r = crate::test_runner::TestRunner::from_seed(seed);
            if Strategy::new_value(&(0u64..1000), &mut r) >= 500 {
                break;
            }
            seed += 1;
        }
        std::fs::write(&corpus, format!("cc {seed:016x}{}\n", "0".repeat(48))).unwrap();
        let src_str = src.to_string_lossy().into_owned();
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_with_shrink(
                // Zero fresh cases: only the replayed corpus can fail.
                ProptestConfig::with_cases(0),
                &src_str,
                &(0u64..1000,),
                |&(x,)| {
                    prop_assert!(x < 500, "x was {}", x);
                    Ok(())
                },
            );
        });
        assert!(result.is_err(), "corpus replay did not fire");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failing_seed_is_persisted() {
        let dir = std::env::temp_dir().join(format!("pdgc-proptest-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src_str = dir.join("persist.rs").to_string_lossy().into_owned();
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_with_shrink(
                ProptestConfig::with_cases(100),
                &src_str,
                &(0u64..10,),
                |&(x,)| {
                    prop_assert!(x < 9, "x was {}", x);
                    Ok(())
                },
            );
        });
        assert!(result.is_err());
        let corpus = dir.join("persist.proptest-regressions");
        let body = std::fs::read_to_string(&corpus).expect("corpus written");
        assert!(body.lines().any(|l| l.starts_with("cc ")), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
