//! A tiny offline stand-in for the subset of `rand` 0.8 this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` over
//! integer/float ranges, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fully
//! deterministic for a given seed, which is all the seeded workload
//! generator and the property tests rely on. It is **not** the real
//! `rand` crate: distributions are simple (modulo reduction, no
//! rejection sampling) and nothing here is cryptographic.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range type [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// Panics when the range is empty, like `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of an inferred type (`u64`, `f64`, `bool`, …).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ behind the same name `rand`
    /// uses, so call sites need no changes.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: usize = r.gen_range(0..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
