//! A minimal offline stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Each benchmark body is timed with `std::time::Instant` over
//! `sample_size` batches; the report is the **mean ± standard deviation**
//! of the per-iteration times across batches, plus the **p50/p90/p99
//! percentiles** (nearest-rank over the sorted samples, with the best
//! batch shown for reference) — enough to eyeball relative costs, their
//! noise, *and* their tail, and to keep `cargo bench` / the
//! `--all-targets` build green without the real statistics engine.
//!
//! Set `CRITERION_JSON=<path>` to additionally append one JSON line per
//! benchmark (`name`, `mean_ns`, `stddev_ns`, `p50_ns`, `p90_ns`,
//! `p99_ns`, `best_ns`, `samples`) for machine consumption.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// An opaque hint that keeps the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly; handed to the bench closure.
pub struct Bencher {
    samples: usize,
    /// Per-iteration time of each timed batch, in nanoseconds.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f` over `sample_size` batches, recording each batch's
    /// per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed batches whose size
        // grows until a batch takes a measurable amount of time.
        black_box(f());
        let mut batch = 1u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed.as_secs_f64() * 1e9 / batch as f64;
            self.sample_ns.push(per_iter);
            if elapsed.as_micros() < 50 && batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

/// Summary statistics over the recorded samples.
#[derive(Clone, Copy, Debug)]
struct SampleStats {
    mean_ns: f64,
    stddev_ns: f64,
    p50_ns: f64,
    p90_ns: f64,
    p99_ns: f64,
    best_ns: f64,
    samples: usize,
}

/// Nearest-rank percentile over an ascending-sorted sample vector:
/// the smallest sample with at least `q` of the distribution at or
/// below it (`sorted[ceil(q*n) - 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarize(sample_ns: &[f64]) -> SampleStats {
    let n = sample_ns.len();
    if n == 0 {
        return SampleStats {
            mean_ns: f64::NAN,
            stddev_ns: f64::NAN,
            p50_ns: f64::NAN,
            p90_ns: f64::NAN,
            p99_ns: f64::NAN,
            best_ns: f64::NAN,
            samples: 0,
        };
    }
    let mean = sample_ns.iter().sum::<f64>() / n as f64;
    // Sample standard deviation (Bessel's correction); 0 for n = 1.
    let stddev = if n > 1 {
        let var = sample_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    } else {
        0.0
    };
    let mut sorted = sample_ns.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("times are never NaN"));
    SampleStats {
        mean_ns: mean,
        stddev_ns: stddev,
        p50_ns: percentile(&sorted, 0.50),
        p90_ns: percentile(&sorted, 0.90),
        p99_ns: percentile(&sorted, 0.99),
        best_ns: sorted[0],
        samples: n,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn emit_json(label: &str, st: &SampleStats) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => ' '.to_string().chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"p50_ns\":{:.1},\
         \"p90_ns\":{:.1},\"p99_ns\":{:.1},\"best_ns\":{:.1},\"samples\":{}}}\n",
        st.mean_ns, st.stddev_ns, st.p50_ns, st.p90_ns, st.p99_ns, st.best_ns, st.samples
    );
    use std::io::Write as _;
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path);
    match file {
        Ok(mut f) => {
            if let Err(e) = f.write_all(line.as_bytes()) {
                eprintln!("criterion: writing {path}: {e}");
            }
        }
        Err(e) => eprintln!("criterion: opening {path}: {e}"),
    }
}

fn run_bench(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        sample_ns: Vec::new(),
    };
    f(&mut b);
    let st = summarize(&b.sample_ns);
    println!(
        "bench {label:<40} {:>10}/iter ± {} (p50 {}, p90 {}, p99 {}, best {}, {} samples)",
        fmt_ns(st.mean_ns),
        fmt_ns(st.stddev_ns),
        fmt_ns(st.p50_ns),
        fmt_ns(st.p90_ns),
        fmt_ns(st.p99_ns),
        fmt_ns(st.best_ns),
        st.samples
    );
    emit_json(label, &st);
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times a single benchmark body.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A parameterized benchmark name.
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { parameter: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.parameter);
        run_bench(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No statistics to flush in this stand-in.)
    pub fn finish(self) {}
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, ...)` or the struct-like form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("test/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut group = c.benchmark_group("test/group");
        group.bench_with_input(BenchmarkId::from_parameter("n=4"), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = work
    }

    #[test]
    fn groups_run() {
        benches();
    }

    #[test]
    fn summarize_mean_and_stddev() {
        let st = summarize(&[2.0, 4.0, 6.0]);
        assert!((st.mean_ns - 4.0).abs() < 1e-9);
        assert!((st.stddev_ns - 2.0).abs() < 1e-9, "{}", st.stddev_ns);
        assert!((st.best_ns - 2.0).abs() < 1e-9);
        assert_eq!(st.samples, 3);
    }

    #[test]
    fn summarize_single_sample_has_zero_stddev() {
        let st = summarize(&[7.5]);
        assert!((st.mean_ns - 7.5).abs() < 1e-9);
        assert_eq!(st.stddev_ns, 0.0);
        assert_eq!(st.p50_ns, 7.5);
        assert_eq!(st.p99_ns, 7.5);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        // 10 samples: p50 is the 5th, p90 the 9th, p99 the 10th.
        let samples: Vec<f64> = (1..=10).map(f64::from).collect();
        let st = summarize(&samples);
        assert_eq!(st.p50_ns, 5.0);
        assert_eq!(st.p90_ns, 9.0);
        assert_eq!(st.p99_ns, 10.0);
        assert_eq!(st.best_ns, 1.0);
        // Order independence: summarize sorts internally.
        let mut rev = samples.clone();
        rev.reverse();
        let st2 = summarize(&rev);
        assert_eq!(st2.p50_ns, 5.0);
        assert_eq!(st2.p90_ns, 9.0);
    }

    #[test]
    fn summarize_empty_is_nan() {
        let st = summarize(&[]);
        assert!(st.mean_ns.is_nan());
        assert_eq!(st.samples, 0);
    }

    #[test]
    fn bencher_records_every_sample() {
        let mut b = Bencher { samples: 5, sample_ns: Vec::new() };
        b.iter(|| black_box(1u64) + 1);
        assert_eq!(b.sample_ns.len(), 5);
        assert!(b.sample_ns.iter().all(|&s| s >= 0.0));
    }
}
