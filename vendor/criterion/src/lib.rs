//! A minimal offline stand-in for the subset of `criterion` this
//! workspace uses: `Criterion::bench_function`, benchmark groups with
//! `bench_with_input`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Each benchmark body is timed with `std::time::Instant` over
//! `sample_size` batches and the best per-iteration time is printed —
//! enough to eyeball relative costs and to keep `cargo bench` / the
//! `--all-targets` build green without the real statistics engine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// An opaque hint that keeps the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly; handed to the bench closure.
pub struct Bencher {
    samples: usize,
    /// Best observed per-iteration time, in nanoseconds.
    best_ns: f64,
}

impl Bencher {
    /// Times `f`, keeping the fastest per-iteration result.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed batches whose size
        // grows until a batch takes a measurable amount of time.
        black_box(f());
        let mut batch = 1u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            let per_iter = elapsed.as_secs_f64() * 1e9 / batch as f64;
            if per_iter < self.best_ns {
                self.best_ns = per_iter;
            }
            if elapsed.as_micros() < 50 && batch < 1 << 20 {
                batch *= 2;
            }
        }
    }
}

fn run_bench(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples, best_ns: f64::INFINITY };
    f(&mut b);
    let ns = b.best_ns;
    if ns >= 1e6 {
        println!("bench {label:<40} {:>10.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("bench {label:<40} {:>10.3} µs/iter", ns / 1e3);
    } else {
        println!("bench {label:<40} {ns:>10.1} ns/iter");
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Times a single benchmark body.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A parameterized benchmark name.
pub struct BenchmarkId {
    parameter: String,
}

impl BenchmarkId {
    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { parameter: parameter.to_string() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Times one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.parameter);
        run_bench(&label, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No statistics to flush in this stand-in.)
    pub fn finish(self) {}
}

/// Declares a benchmark group: either
/// `criterion_group!(name, target, ...)` or the struct-like form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("test/add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut group = c.benchmark_group("test/group");
        group.bench_with_input(BenchmarkId::from_parameter("n=4"), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = work
    }

    #[test]
    fn groups_run() {
        benches();
    }
}
