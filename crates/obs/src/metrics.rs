//! Always-on metrics: named counters and fixed-bucket log-scale
//! histograms with a zero-allocation hot path.
//!
//! The [`Tracer`](crate::Tracer) event stream is opt-in and allocating —
//! far too expensive to leave on while a batch worker pushes thousands of
//! functions through the pipeline. A [`MetricsRegistry`] is the always-on
//! counterpart: plain `u64` bumps into fixed-size arrays indexed by enum,
//! no locks, no strings, no heap. One registry lives in each worker's
//! `PhaseScratch`; the batch driver drains it per function and merges the
//! per-function registries at the slot-keyed join, exactly like results.
//!
//! # Merge contract
//!
//! Every operation is an element-wise `u64` addition (plus `min`/`max`
//! for the histogram extrema), so merging is commutative and associative:
//! the merged registry is **bit-identical regardless of worker count or
//! claim order**. That determinism only covers values that are themselves
//! deterministic — the [`Counter`]s and the *scorecard* histograms
//! ([`ValueHist`]). The per-phase *latency* histograms record wall-clock
//! and vary run to run; snapshots keep them in a separate JSON section
//! (`latency_hists`) so consumers can diff the deterministic sections
//! exactly.
//!
//! # Bucket layout
//!
//! [`Histogram`] has 64 fixed log₂ buckets: bucket 0 holds the value 0,
//! and bucket `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]` (i.e. the
//! bucket index is the value's bit length, clamped to 63). `count`,
//! `sum`, `min`, and `max` ride along for exact means and extrema.

use crate::json::JsonObject;
use crate::Phase;

/// Number of pipeline phases ([`Phase::ALL`]).
const N_PHASES: usize = Phase::ALL.len();

/// Log₂ buckets per histogram.
pub const HIST_BUCKETS: usize = 64;

/// A named monotonic counter.
///
/// The discriminant is the index into the registry's counter array; the
/// stable snake_case name ([`Counter::name`]) is what snapshots and the
/// `pdgc report` gate key on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    /// Functions pushed through the pipeline to completion.
    FuncsAllocated,
    /// Sum of per-function round counts.
    RoundsTotal,
    /// Copies present before allocation (post ABI/φ lowering).
    CopiesBefore,
    /// Copies removed by coalescing.
    MovesEliminated,
    /// Copies remaining in machine code.
    CopiesRemaining,
    /// Reloads inserted by spilling.
    SpillLoads,
    /// Stores inserted by spilling.
    SpillStores,
    /// Total spill instructions.
    SpillInstructions,
    /// Caller-side save/restore instructions around calls.
    CallerSaveInsts,
    /// Distinct non-volatile registers used (prologue/epilogue cost).
    NonvolatilesUsed,
    /// Loads whose fusion window contained an address partner (a fusion
    /// *opportunity*, whether or not register constraints allowed it).
    PairedLoadCandidates,
    /// Paired loads actually fused by the rewriter.
    PairedLoadsFused,
    /// Zero-extensions inserted after byte loads.
    ZeroExtensions,
    /// Frame slots used.
    FrameSlots,
    /// Select verdicts: node received a register.
    SelectAssigned,
    /// Select verdicts: spilled because no register was available.
    SelectSpilledNoRegister,
    /// Select verdicts: §5.4 active spill (strongest preference negative).
    SelectSpilledPreferMemory,
    /// Coalesce preferences whose screen narrowed the candidate set.
    PrefCoalesceHonored,
    /// Coalesce preferences screened for an unallocated partner (2.2).
    PrefCoalesceDeferred,
    /// Coalesce preferences skipped (screen would empty the set / no gain).
    PrefCoalesceSkipped,
    /// Plus-stride sequential-pair preferences honored.
    PrefSeqPlusHonored,
    /// Plus-stride sequential-pair preferences deferred.
    PrefSeqPlusDeferred,
    /// Plus-stride sequential-pair preferences skipped.
    PrefSeqPlusSkipped,
    /// Minus-stride sequential-pair preferences honored.
    PrefSeqMinusHonored,
    /// Minus-stride sequential-pair preferences deferred.
    PrefSeqMinusDeferred,
    /// Minus-stride sequential-pair preferences skipped.
    PrefSeqMinusSkipped,
    /// Register/set preferences (`prefers`) honored.
    PrefPrefersHonored,
    /// Register/set preferences deferred.
    PrefPrefersDeferred,
    /// Register/set preferences skipped.
    PrefPrefersSkipped,
    /// Symbolic-checker invocations.
    CheckRuns,
    /// Checker runs at `CheckScope::Full`.
    CheckScopeFull,
    /// Checker runs at `CheckScope::Rewritten`.
    CheckScopeRewritten,
    /// Reachable blocks the checker proved.
    CheckBlocksProven,
    /// IR instructions the checker matched.
    CheckIrInsts,
    /// Machine instructions the checker consumed.
    CheckMachInsts,
    /// Fused paired loads the checker validated.
    CheckPairedLoads,
    /// Rules broken across all checker rejections.
    CheckViolations,
    /// JSONL requests a `pdgc serve` session received (well-formed or not).
    ServeRequests,
    /// Requests answered with an error response (parse/validation/allocation).
    ServeErrors,
    /// Allocation-cache lookups answered from the cache.
    CacheHits,
    /// Allocation-cache lookups that had to allocate.
    CacheMisses,
    /// Entries inserted into the allocation cache.
    CacheInsertions,
    /// Entries evicted to keep the cache under its capacity.
    CacheEvictions,
    /// Cache hits re-proven by the sampled symbolic check.
    CacheHitChecks,
    /// Analysis rounds where the SPL region tree drove liveness.
    SplAnalysesFast,
    /// Analysis rounds that fell back to the iterative solvers.
    SplAnalysesFallback,
    /// Analysis rounds where loop depth/frequency came off the region tree.
    SplFreqFast,
    /// Composite SPL regions built across all analysis rounds.
    SplRegions,
    /// Loop regions (while-shaped plus self-loops) among them.
    SplLoopRegions,
    /// Reloads avoided by forwarding along SPL linear runs.
    SplForwardedReloads,
}

impl Counter {
    /// Every counter, in array order.
    pub const ALL: [Counter; 50] = [
        Counter::FuncsAllocated,
        Counter::RoundsTotal,
        Counter::CopiesBefore,
        Counter::MovesEliminated,
        Counter::CopiesRemaining,
        Counter::SpillLoads,
        Counter::SpillStores,
        Counter::SpillInstructions,
        Counter::CallerSaveInsts,
        Counter::NonvolatilesUsed,
        Counter::PairedLoadCandidates,
        Counter::PairedLoadsFused,
        Counter::ZeroExtensions,
        Counter::FrameSlots,
        Counter::SelectAssigned,
        Counter::SelectSpilledNoRegister,
        Counter::SelectSpilledPreferMemory,
        Counter::PrefCoalesceHonored,
        Counter::PrefCoalesceDeferred,
        Counter::PrefCoalesceSkipped,
        Counter::PrefSeqPlusHonored,
        Counter::PrefSeqPlusDeferred,
        Counter::PrefSeqPlusSkipped,
        Counter::PrefSeqMinusHonored,
        Counter::PrefSeqMinusDeferred,
        Counter::PrefSeqMinusSkipped,
        Counter::PrefPrefersHonored,
        Counter::PrefPrefersDeferred,
        Counter::PrefPrefersSkipped,
        Counter::CheckRuns,
        Counter::CheckScopeFull,
        Counter::CheckScopeRewritten,
        Counter::CheckBlocksProven,
        Counter::CheckIrInsts,
        Counter::CheckMachInsts,
        Counter::CheckPairedLoads,
        Counter::CheckViolations,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheInsertions,
        Counter::CacheEvictions,
        Counter::CacheHitChecks,
        Counter::SplAnalysesFast,
        Counter::SplAnalysesFallback,
        Counter::SplFreqFast,
        Counter::SplRegions,
        Counter::SplLoopRegions,
        Counter::SplForwardedReloads,
    ];

    /// Number of counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// Stable snake_case name used in snapshots and the regression gate.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FuncsAllocated => "funcs_allocated",
            Counter::RoundsTotal => "rounds_total",
            Counter::CopiesBefore => "copies_before",
            Counter::MovesEliminated => "moves_eliminated",
            Counter::CopiesRemaining => "copies_remaining",
            Counter::SpillLoads => "spill_loads",
            Counter::SpillStores => "spill_stores",
            Counter::SpillInstructions => "spill_instructions",
            Counter::CallerSaveInsts => "caller_save_insts",
            Counter::NonvolatilesUsed => "nonvolatiles_used",
            Counter::PairedLoadCandidates => "paired_load_candidates",
            Counter::PairedLoadsFused => "paired_loads_fused",
            Counter::ZeroExtensions => "zero_extensions",
            Counter::FrameSlots => "frame_slots",
            Counter::SelectAssigned => "select_assigned",
            Counter::SelectSpilledNoRegister => "select_spilled_no_register",
            Counter::SelectSpilledPreferMemory => "select_spilled_prefer_memory",
            Counter::PrefCoalesceHonored => "pref_coalesce_honored",
            Counter::PrefCoalesceDeferred => "pref_coalesce_deferred",
            Counter::PrefCoalesceSkipped => "pref_coalesce_skipped",
            Counter::PrefSeqPlusHonored => "pref_seq_plus_honored",
            Counter::PrefSeqPlusDeferred => "pref_seq_plus_deferred",
            Counter::PrefSeqPlusSkipped => "pref_seq_plus_skipped",
            Counter::PrefSeqMinusHonored => "pref_seq_minus_honored",
            Counter::PrefSeqMinusDeferred => "pref_seq_minus_deferred",
            Counter::PrefSeqMinusSkipped => "pref_seq_minus_skipped",
            Counter::PrefPrefersHonored => "pref_prefers_honored",
            Counter::PrefPrefersDeferred => "pref_prefers_deferred",
            Counter::PrefPrefersSkipped => "pref_prefers_skipped",
            Counter::CheckRuns => "check_runs",
            Counter::CheckScopeFull => "check_scope_full",
            Counter::CheckScopeRewritten => "check_scope_rewritten",
            Counter::CheckBlocksProven => "check_blocks_proven",
            Counter::CheckIrInsts => "check_ir_insts",
            Counter::CheckMachInsts => "check_mach_insts",
            Counter::CheckPairedLoads => "check_paired_loads",
            Counter::CheckViolations => "check_violations",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeErrors => "serve_errors",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheInsertions => "cache_insertions",
            Counter::CacheEvictions => "cache_evictions",
            Counter::CacheHitChecks => "cache_hit_checks",
            Counter::SplAnalysesFast => "spl_analyses_fast",
            Counter::SplAnalysesFallback => "spl_analyses_fallback",
            Counter::SplFreqFast => "spl_freq_fast",
            Counter::SplRegions => "spl_regions",
            Counter::SplLoopRegions => "spl_loop_regions",
            Counter::SplForwardedReloads => "spl_forwarded_reloads",
        }
    }

    /// Dense index (position in [`Counter::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A deterministic scorecard histogram (distinct from the wall-clock
/// latency histograms, which are keyed by [`Phase`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum ValueHist {
    /// Rounds used per function (1 = no spill iteration).
    RoundsPerFunc,
    /// Spill instructions inserted per function.
    SpillsPerFunc,
    /// `Str(V, P)` strength of every honored preference screen — the
    /// Figure 5(a) screening outcome distribution.
    PrefStrengthHonored,
}

impl ValueHist {
    /// Every scorecard histogram, in array order.
    pub const ALL: [ValueHist; 3] = [
        ValueHist::RoundsPerFunc,
        ValueHist::SpillsPerFunc,
        ValueHist::PrefStrengthHonored,
    ];

    /// Number of scorecard histograms.
    pub const COUNT: usize = ValueHist::ALL.len();

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            ValueHist::RoundsPerFunc => "rounds_per_func",
            ValueHist::SpillsPerFunc => "spills_per_func",
            ValueHist::PrefStrengthHonored => "pref_strength_honored",
        }
    }

    /// Dense index (position in [`ValueHist::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A fixed-bucket log₂ histogram: 64 buckets, no heap, mergeable by
/// element-wise addition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts the value 0; `buckets[b]` (b ≥ 1) counts
    /// values whose bit length is `b`, i.e. `[2^(b-1), 2^b - 1]`.
    pub buckets: [u64; HIST_BUCKETS],
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observation (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The log₂ bucket a value lands in: its bit length, clamped to the last
/// bucket (so bucket 0 ⇔ value 0).
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Element-wise merge (order-independent).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observations (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The histogram as a JSON object. Buckets past the last non-zero one
    /// are dropped (the layout is fixed, so the reader can re-pad).
    pub fn to_json(&self) -> String {
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        let buckets: Vec<String> = self.buckets[..last].iter().map(u64::to_string).collect();
        JsonObject::new()
            .u64("count", self.count)
            .u64("sum", self.sum)
            .u64("min", if self.count == 0 { 0 } else { self.min })
            .u64("max", self.max)
            .raw("buckets", &crate::json::array(buckets))
            .finish()
    }
}

/// A set of counters plus scorecard and per-phase latency histograms.
///
/// Everything is a fixed-size array: bumping a counter or observing a
/// histogram value never touches the heap, so the registry is safe to
/// leave always-on inside the allocation hot path. See the module docs
/// for the merge contract.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    counters: [u64; Counter::COUNT],
    values: [Histogram; ValueHist::COUNT],
    latency: [Histogram; N_PHASES],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            counters: [0; Counter::COUNT],
            values: std::array::from_fn(|_| Histogram::default()),
            latency: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `c` by one.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.counters[c.index()] += 1;
    }

    /// Increments `c` by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c.index()] += n;
    }

    /// Current value of `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Records one observation into a scorecard histogram.
    #[inline]
    pub fn observe_value(&mut self, h: ValueHist, value: u64) {
        self.values[h.index()].observe(value);
    }

    /// Records one phase latency observation (nanoseconds).
    #[inline]
    pub fn observe_latency(&mut self, phase: Phase, nanos: u64) {
        self.latency[phase.index()].observe(nanos);
    }

    /// The scorecard histogram for `h`.
    pub fn value_hist(&self, h: ValueHist) -> &Histogram {
        &self.values[h.index()]
    }

    /// The latency histogram for `phase`.
    pub fn latency_hist(&self, phase: Phase) -> &Histogram {
        &self.latency[phase.index()]
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.values.iter().all(|h| h.count == 0)
            && self.latency.iter().all(|h| h.count == 0)
    }

    /// Element-wise merge. Addition commutes, so merging per-worker (or
    /// per-function) registries in any order yields the same totals.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            a.merge(b);
        }
        for (a, b) in self.latency.iter_mut().zip(&other.latency) {
            a.merge(b);
        }
    }

    /// Merges `self` into `dst` and resets `self` to empty — the batch
    /// driver's per-function hand-off, free of heap traffic.
    pub fn drain_into(&mut self, dst: &mut MetricsRegistry) {
        dst.merge(self);
        *self = MetricsRegistry::default();
    }

    /// Whether the *deterministic* sections (counters and scorecard
    /// histograms) of two registries are identical. Latency histograms
    /// are excluded: wall-clock is never reproducible.
    pub fn deterministic_eq(&self, other: &MetricsRegistry) -> bool {
        self.counters == other.counters && self.values == other.values
    }

    /// The counters section as a JSON object (`{"name": value, ...}`),
    /// every counter present, in [`Counter::ALL`] order.
    pub fn counters_json(&self) -> String {
        let mut o = JsonObject::new();
        for c in Counter::ALL {
            o = o.u64(c.name(), self.get(c));
        }
        o.finish()
    }

    /// The scorecard-histogram section as a JSON object.
    pub fn scorecard_hists_json(&self) -> String {
        let mut o = JsonObject::new();
        for h in ValueHist::ALL {
            o = o.raw(h.name(), &self.value_hist(h).to_json());
        }
        o.finish()
    }

    /// The latency-histogram section as a JSON object keyed by phase name.
    pub fn latency_hists_json(&self) -> String {
        let mut o = JsonObject::new();
        for p in Phase::ALL {
            o = o.raw(p.as_str(), &self.latency_hist(p).to_json());
        }
        o.finish()
    }

    /// The whole registry as a JSON object with the deterministic
    /// sections (`counters`, `scorecard_hists`) separated from the
    /// nondeterministic one (`latency_hists`).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .raw("counters", &self.counters_json())
            .raw("scorecard_hists", &self.scorecard_hists_json())
            .raw("latency_hists", &self.latency_hists_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_indices_dense() {
        let mut names = std::collections::HashSet::new();
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(names.insert(c.name()), "duplicate name {}", c.name());
        }
        for (i, h) in ValueHist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert!(names.insert(h.name()), "duplicate name {}", h.name());
        }
    }

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_sum_extrema() {
        let mut h = Histogram::default();
        for v in [0, 1, 7, 7, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1015);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1); // the 0
        assert_eq!(h.buckets[3], 2); // the 7s
        assert!((h.mean() - 203.0).abs() < 1e-9);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.bump(Counter::SpillLoads);
        a.observe_value(ValueHist::RoundsPerFunc, 3);
        b.add(Counter::SpillLoads, 4);
        b.observe_value(ValueHist::RoundsPerFunc, 1);
        b.observe_latency(Phase::Select, 1234);

        let mut ab = MetricsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = MetricsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.get(Counter::SpillLoads), 5);
        assert_eq!(ab.value_hist(ValueHist::RoundsPerFunc).count, 2);
    }

    #[test]
    fn drain_resets_the_source() {
        let mut a = MetricsRegistry::new();
        let mut dst = MetricsRegistry::new();
        a.bump(Counter::FuncsAllocated);
        a.observe_latency(Phase::Lower, 10);
        a.drain_into(&mut dst);
        assert!(a.is_empty());
        assert_eq!(dst.get(Counter::FuncsAllocated), 1);
        assert_eq!(dst.latency_hist(Phase::Lower).count, 1);
    }

    #[test]
    fn deterministic_eq_ignores_latency() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.bump(Counter::PairedLoadsFused);
        b.bump(Counter::PairedLoadsFused);
        a.observe_latency(Phase::Rewrite, 10);
        b.observe_latency(Phase::Rewrite, 99999);
        assert!(a.deterministic_eq(&b));
        b.bump(Counter::SpillStores);
        assert!(!a.deterministic_eq(&b));
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let mut m = MetricsRegistry::new();
        m.add(Counter::MovesEliminated, 12);
        m.observe_value(ValueHist::SpillsPerFunc, 0);
        let s = m.to_json();
        assert!(s.contains("\"counters\":{"));
        assert!(s.contains("\"moves_eliminated\":12"));
        assert!(s.contains("\"scorecard_hists\":{"));
        assert!(s.contains("\"spills_per_func\":{\"count\":1"));
        assert!(s.contains("\"latency_hists\":{"));
        // Round-trips through the reader.
        let parsed = crate::json::Json::parse(&s).expect("valid json");
        assert_eq!(
            parsed["counters"]["moves_eliminated"].as_u64(),
            Some(12)
        );
    }

    #[test]
    fn empty_histogram_serializes_zero_min() {
        let h = Histogram::default();
        let s = h.to_json();
        assert!(s.contains("\"min\":0"));
        assert!(s.contains("\"buckets\":[]"));
    }
}
