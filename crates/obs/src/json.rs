//! A minimal JSON writer — just enough for the trace sinks and the bench
//! harness to emit machine-readable records without an external
//! serialization crate (the build environment is offline).

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental `{...}` builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Opens an object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (JSON has no NaN/Inf; those become null).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (object, array, ...) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&it);
    }
    buf.push(']');
    buf
}

/// Renders an array of integers.
pub fn int_array<T: Into<i64> + Copy>(items: &[T]) -> String {
    array(items.iter().map(|&v| v.into().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder() {
        let s = JsonObject::new()
            .str("name", "x")
            .i64("n", -3)
            .bool("ok", true)
            .raw("xs", &int_array(&[1i32, 2, 3]))
            .finish();
        assert_eq!(s, "{\"name\":\"x\",\"n\":-3,\"ok\":true,\"xs\":[1,2,3]}");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let s = JsonObject::new().f64("x", f64::NAN).f64("y", 1.5).finish();
        assert_eq!(s, "{\"x\":null,\"y\":1.5}");
    }
}
