//! A minimal JSON writer — just enough for the trace sinks and the bench
//! harness to emit machine-readable records without an external
//! serialization crate (the build environment is offline).

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental `{...}` builder.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    /// Opens an object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (JSON has no NaN/Inf; those become null).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-rendered JSON value (object, array, ...) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, it) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&it);
    }
    buf.push(']');
    buf
}

/// Renders an array of integers.
pub fn int_array<T: Into<i64> + Copy>(items: &[T]) -> String {
    array(items.iter().map(|&v| v.into().to_string()))
}

/// A parsed JSON value — the reader half of this module, added so
/// `pdgc report` can diff metrics snapshots without an external crate.
///
/// Objects keep their fields in document order (a `Vec`, not a map):
/// snapshots are written by [`JsonObject`] with a stable field order, and
/// preserving it keeps diffs deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// The parser is recursive-descent, so unbounded `[[[…]]]` input would
/// overflow the stack; anything this deep is hostile or broken, never a
/// metrics snapshot or serve request, so it is a parse *error* (with the
/// byte offset) rather than a crash. 512 levels cost at most a few
/// hundred KB of stack — far inside every platform's default.
pub const MAX_DEPTH: usize = 512;

impl Json {
    /// Parses a complete JSON document. Trailing non-whitespace is an
    /// error, as is any malformed construct; the message includes the
    /// byte offset. Containers nested deeper than [`MAX_DEPTH`] are
    /// rejected the same way — untrusted input cannot blow the stack.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup by key (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in document order.
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// `json["key"]` sugar; missing keys index as [`Json::Null`] so lookups
/// chain without `Option` plumbing.
impl std::ops::Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        const NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, capped at [`MAX_DEPTH`].
    depth: usize,
}

impl<'a> Parser<'a> {
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].first() != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid code point at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = std::str::from_utf8(rest)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .map(|c| c.len_utf8())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let s = std::str::from_utf8(&rest[..len]).unwrap();
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let cp = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_builder() {
        let s = JsonObject::new()
            .str("name", "x")
            .i64("n", -3)
            .bool("ok", true)
            .raw("xs", &int_array(&[1i32, 2, 3]))
            .finish();
        assert_eq!(s, "{\"name\":\"x\",\"n\":-3,\"ok\":true,\"xs\":[1,2,3]}");
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn non_finite_floats_are_null() {
        let s = JsonObject::new().f64("x", f64::NAN).f64("y", 1.5).finish();
        assert_eq!(s, "{\"x\":null,\"y\":1.5}");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap().as_str(),
            Some("hi")
        );
    }

    #[test]
    fn parse_containers_and_lookup() {
        let v = Json::parse(r#"{"a":[1,2,3],"b":{"c":"x"},"d":null}"#).unwrap();
        assert_eq!(v["a"].as_arr().unwrap().len(), 3);
        assert_eq!(v["a"].as_arr().unwrap()[1].as_u64(), Some(2));
        assert_eq!(v["b"]["c"].as_str(), Some("x"));
        assert_eq!(v["d"], Json::Null);
        assert_eq!(v["missing"], Json::Null);
        assert_eq!(v.fields().unwrap().len(), 3);
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1f600}"));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("truefalse").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err()); // lone surrogate
        assert!(Json::parse("1 2").is_err()); // trailing data
    }

    #[test]
    fn deeply_nested_input_is_an_error_not_a_crash() {
        // A ~100k-deep array: before the depth limit this overflowed the
        // recursive-descent parser's stack. It must come back as a parse
        // error naming the offending byte.
        let depth = 100_000;
        let mut hostile = String::with_capacity(2 * depth);
        for _ in 0..depth {
            hostile.push('[');
        }
        for _ in 0..depth {
            hostile.push(']');
        }
        let err = Json::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting deeper than"), "unexpected error: {err}");
        assert!(err.contains(&format!("{MAX_DEPTH}")), "no limit in: {err}");
        assert!(err.contains("byte"), "no offset in: {err}");

        // Same for objects.
        let mut objs = String::new();
        for _ in 0..depth {
            objs.push_str("{\"a\":");
        }
        objs.push('1');
        for _ in 0..depth {
            objs.push('}');
        }
        assert!(Json::parse(&objs).unwrap_err().contains("nesting deeper than"));
    }

    #[test]
    fn nesting_at_the_limit_still_parses() {
        let mut ok = String::new();
        for _ in 0..MAX_DEPTH {
            ok.push('[');
        }
        for _ in 0..MAX_DEPTH {
            ok.push(']');
        }
        assert!(Json::parse(&ok).is_ok());
        // One more level tips it over.
        let over = format!("[{ok}]");
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn depth_resets_between_siblings() {
        // Depth is nesting depth, not total container count: many shallow
        // siblings must not accumulate toward the limit.
        let wide = format!("[{}]", vec!["[]"; 2 * MAX_DEPTH].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn writer_reader_round_trip() {
        let s = JsonObject::new()
            .str("name", "x\"y")
            .u64("n", u64::from(u32::MAX))
            .f64("f", 2.25)
            .bool("ok", false)
            .raw("xs", &int_array(&[1i32, -2, 3]))
            .finish();
        let v = Json::parse(&s).unwrap();
        assert_eq!(v["name"].as_str(), Some("x\"y"));
        assert_eq!(v["n"].as_u64(), Some(u64::from(u32::MAX)));
        assert_eq!(v["f"].as_f64(), Some(2.25));
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["xs"].as_arr().unwrap()[1].as_f64(), Some(-2.0));
    }
}
