//! Trace sinks: JSON Lines, human-readable pretty printing, per-round DOT
//! graph files, in-memory recording, per-phase time accumulation, and
//! fan-out composition.

use crate::json::{self, JsonObject};
use crate::{Decision, Event, Phase, Tracer, Verdict};
use pdgc_ir::RegClass;
use std::io::Write;
use std::path::PathBuf;

fn class_str(class: RegClass) -> &'static str {
    match class {
        RegClass::Int => "int",
        RegClass::Float => "float",
    }
}

fn decision_json(d: &Decision) -> String {
    let considered = json::array(d.considered.iter().map(|c| {
        JsonObject::new()
            .str("kind", c.kind)
            .str("target", &c.target)
            .i64("strength", c.strength)
            .bool("deferred", c.deferred)
            .bool("narrowed", c.narrowed)
            .u64("survivors", c.survivors as u64)
            .finish()
    }));
    let obj = JsonObject::new()
        .str("type", "decision")
        .u64("round", d.round as u64)
        .str("class", class_str(d.class))
        .u64("node", d.node as u64)
        .raw("members", &json::int_array(&d.members))
        .u64("frontier", d.frontier as u64)
        .i64("differential", d.differential)
        .u64("available", d.available as u64)
        .raw("considered", &considered);
    match &d.verdict {
        Verdict::Assigned { reg } => obj
            .str("verdict", "assigned")
            .str("reg", &reg.to_string())
            .finish(),
        Verdict::Spilled { reason, cost } => obj
            .str("verdict", "spilled")
            .str("reason", reason.as_str())
            .u64("cost", *cost)
            .finish(),
    }
}

/// Serializes one event to a single-line JSON object.
pub fn event_json(event: &Event, include_graphs: bool) -> Option<String> {
    Some(match event {
        Event::RoundStart { round } => JsonObject::new()
            .str("type", "round")
            .u64("round", *round as u64)
            .finish(),
        Event::Span {
            phase,
            round,
            class,
            nanos,
        } => {
            let mut o = JsonObject::new()
                .str("type", "span")
                .str("phase", phase.as_str())
                .u64("round", *round as u64);
            if let Some(c) = class {
                o = o.str("class", class_str(*c));
            }
            o.u64("ns", *nanos as u64).finish()
        }
        Event::Decision(d) => decision_json(d),
        Event::SpillCode { round, vregs, slots } => JsonObject::new()
            .str("type", "spill-code")
            .u64("round", *round as u64)
            .raw("vregs", &json::int_array(vregs))
            .u64("slots", *slots as u64)
            .finish(),
        Event::GraphDump {
            round,
            class,
            kind,
            dot,
        } => {
            if !include_graphs {
                return None;
            }
            JsonObject::new()
                .str("type", "graph")
                .u64("round", *round as u64)
                .str("class", class_str(*class))
                .str("kind", kind.as_str())
                .str("dot", dot)
                .finish()
        }
        Event::CheckFailed { func, violations } => JsonObject::new()
            .str("type", "check-failed")
            .str("func", func)
            .raw(
                "violations",
                &json::array(
                    violations
                        .iter()
                        .map(|v| format!("\"{}\"", json::escape(v))),
                ),
            )
            .finish(),
        Event::Finish {
            rounds,
            spill_instructions,
            moves_eliminated,
        } => JsonObject::new()
            .str("type", "finish")
            .u64("rounds", *rounds as u64)
            .u64("spill_instructions", *spill_instructions)
            .u64("moves_eliminated", *moves_eliminated)
            .finish(),
    })
}

/// Writes one JSON object per event per line — the `--trace` format.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    include_graphs: bool,
    io_errors: usize,
}

impl<W: Write> JsonLinesSink<W> {
    /// A sink writing to `writer`. Graph dumps are omitted by default
    /// (they belong in a [`DotDirSink`]); enable with
    /// [`Self::with_graphs`].
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            include_graphs: false,
            io_errors: 0,
        }
    }

    /// Also embeds DOT graph dumps as `{"type":"graph",...}` lines.
    pub fn with_graphs(mut self) -> Self {
        self.include_graphs = true;
        self
    }

    /// Write errors swallowed so far (tracing never aborts allocation).
    pub fn io_errors(&self) -> usize {
        self.io_errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> Tracer for JsonLinesSink<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn wants_graphs(&self) -> bool {
        self.include_graphs
    }

    fn record(&mut self, event: &Event) {
        if let Some(line) = event_json(event, self.include_graphs) {
            if writeln!(self.writer, "{line}").is_err() {
                self.io_errors += 1;
            }
        }
    }
}

/// Human-readable one-event-per-line log for quick terminal inspection.
#[derive(Debug)]
pub struct PrettySink<W: Write> {
    writer: W,
}

impl<W: Write> PrettySink<W> {
    /// A pretty printer over `writer`.
    pub fn new(writer: W) -> Self {
        PrettySink { writer }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> Tracer for PrettySink<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &Event) {
        let _ = match event {
            Event::RoundStart { round } => writeln!(self.writer, "== round {round} =="),
            Event::Span {
                phase,
                round,
                class,
                nanos,
            } => {
                let class = class.map(|c| format!(" [{}]", class_str(c))).unwrap_or_default();
                writeln!(
                    self.writer,
                    "  {:<9}{class} round {round}: {:.1} µs",
                    phase.as_str(),
                    *nanos as f64 / 1e3
                )
            }
            Event::Decision(d) => {
                let screens: Vec<String> = d
                    .considered
                    .iter()
                    .map(|c| {
                        format!(
                            "{}{}->{} str {}{}",
                            if c.deferred { "defer " } else { "" },
                            c.kind,
                            c.target,
                            c.strength,
                            if c.narrowed {
                                format!(" => {} left", c.survivors)
                            } else {
                                " (skipped)".to_string()
                            }
                        )
                    })
                    .collect();
                let verdict = match &d.verdict {
                    Verdict::Assigned { reg } => format!("-> {reg}"),
                    Verdict::Spilled { reason, cost } => {
                        format!("-> SPILL ({}, cost {cost})", reason.as_str())
                    }
                };
                writeln!(
                    self.writer,
                    "  pick n{} (frontier {}, diff {}, {} avail) [{}] {verdict}",
                    d.node,
                    d.frontier,
                    d.differential,
                    d.available,
                    screens.join("; ")
                )
            }
            Event::SpillCode { round, vregs, slots } => writeln!(
                self.writer,
                "  spill-code round {round}: {} vregs, {slots} slots",
                vregs.len()
            ),
            Event::GraphDump { round, class, kind, .. } => writeln!(
                self.writer,
                "  graph dump: {} [{}] round {round}",
                kind.as_str(),
                class_str(*class)
            ),
            Event::CheckFailed { func, violations } => {
                let _ = writeln!(
                    self.writer,
                    "== CHECK FAILED for `{func}`: {} violation(s) ==",
                    violations.len()
                );
                violations
                    .iter()
                    .try_for_each(|v| writeln!(self.writer, "  ! {v}"))
            }
            Event::Finish {
                rounds,
                spill_instructions,
                moves_eliminated,
            } => writeln!(
                self.writer,
                "== done: {rounds} round(s), {spill_instructions} spill insts, \
                 {moves_eliminated} moves eliminated =="
            ),
        };
    }
}

/// Writes each [`Event::GraphDump`] to `<dir>/round<R>-<class>-<kind>.dot`.
///
/// `enabled()` stays `false`: this sink costs nothing unless the caller
/// also wants spans/decisions; the allocator gates DOT rendering on
/// [`Tracer::wants_graphs`] alone.
#[derive(Debug)]
pub struct DotDirSink {
    dir: PathBuf,
    files_written: usize,
    io_errors: usize,
}

impl DotDirSink {
    /// A sink writing DOT files under `dir` (created on first dump).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DotDirSink {
            dir: dir.into(),
            files_written: 0,
            io_errors: 0,
        }
    }

    /// Number of `.dot` files successfully written.
    pub fn files_written(&self) -> usize {
        self.files_written
    }

    /// Write errors swallowed so far.
    pub fn io_errors(&self) -> usize {
        self.io_errors
    }
}

impl Tracer for DotDirSink {
    fn wants_graphs(&self) -> bool {
        true
    }

    fn record(&mut self, event: &Event) {
        let Event::GraphDump {
            round,
            class,
            kind,
            dot,
        } = event
        else {
            return;
        };
        let name = format!("round{round}-{}-{}.dot", class_str(*class), kind.as_str());
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(self.dir.join(&name), dot)
        };
        match write() {
            Ok(()) => self.files_written += 1,
            Err(_) => self.io_errors += 1,
        }
    }
}

/// Keeps every event in memory — the test-harness tracer.
#[derive(Debug)]
pub struct RecordingTracer {
    events: Vec<Event>,
    enabled: bool,
    wants_graphs: bool,
}

impl Default for RecordingTracer {
    fn default() -> Self {
        RecordingTracer {
            events: Vec::new(),
            enabled: true,
            wants_graphs: false,
        }
    }
}

impl RecordingTracer {
    /// Toggles event emission.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Toggles graph-dump emission.
    pub fn set_wants_graphs(&mut self, on: bool) {
        self.wants_graphs = on;
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Only the select-phase decisions, in order.
    pub fn decisions(&self) -> Vec<&Decision> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Decision(d) => Some(d),
                _ => None,
            })
            .collect()
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Tracer for RecordingTracer {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn wants_graphs(&self) -> bool {
        self.wants_graphs
    }

    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Accumulates span durations per phase — the bench harness's per-phase
/// wall-clock collector.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    nanos: [u128; Phase::ALL.len()],
    spans: [u64; Phase::ALL.len()],
}

impl PhaseTimes {
    /// Accumulated nanoseconds for one phase.
    pub fn nanos(&self, phase: Phase) -> u128 {
        self.nanos[phase.index()]
    }

    /// Span count for one phase.
    pub fn spans(&self, phase: Phase) -> u64 {
        self.spans[phase.index()]
    }

    /// Total accumulated nanoseconds across phases.
    pub fn total_nanos(&self) -> u128 {
        self.nanos.iter().sum()
    }

    /// Adds another accumulator's totals into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
            self.spans[i] += other.spans[i];
        }
    }

    /// `{"lower": <ms>, ...}` with fractional milliseconds per phase.
    pub fn json_millis(&self) -> String {
        let mut o = JsonObject::new();
        for p in Phase::ALL {
            o = o.f64(p.as_str(), self.nanos(p) as f64 / 1e6);
        }
        o.finish()
    }

    /// A compact `phase=ms` summary for logs.
    pub fn summary(&self) -> String {
        Phase::ALL
            .iter()
            .filter(|p| self.nanos(**p) > 0)
            .map(|p| format!("{}={:.2}ms", p.as_str(), self.nanos(*p) as f64 / 1e6))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl Tracer for PhaseTimes {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &Event) {
        if let Event::Span { phase, nanos, .. } = event {
            self.nanos[phase.index()] += nanos;
            self.spans[phase.index()] += 1;
        }
    }
}

/// Forwards every event to each child sink; enabled/wants-graphs are the
/// union of the children's. Lets the CLI write a JSON trace and DOT dumps
/// from one allocation.
#[derive(Default)]
pub struct FanoutTracer {
    children: Vec<Box<dyn Tracer>>,
}

impl FanoutTracer {
    /// An empty fan-out (disabled until a child is added).
    pub fn new() -> Self {
        FanoutTracer::default()
    }

    /// Adds a child sink.
    pub fn push(&mut self, child: Box<dyn Tracer>) {
        self.children.push(child);
    }

    /// Number of child sinks.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether there are no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Tracer for FanoutTracer {
    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }

    fn wants_graphs(&self) -> bool {
        self.children.iter().any(|c| c.wants_graphs())
    }

    fn record(&mut self, event: &Event) {
        for c in &mut self.children {
            c.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphKind, SpillReason};
    use pdgc_target::PhysReg;

    fn sample_decision() -> Decision {
        Decision {
            round: 1,
            class: RegClass::Int,
            node: 4,
            members: vec![7],
            frontier: 2,
            differential: 50,
            available: 3,
            considered: vec![crate::Considered {
                kind: "coalesce",
                target: "node:5".into(),
                strength: 40,
                deferred: false,
                narrowed: true,
                survivors: 1,
            }],
            verdict: Verdict::Assigned { reg: PhysReg::int(0) },
        }
    }

    #[test]
    fn json_lines_round_trip_shape() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(&Event::RoundStart { round: 1 });
        sink.record(&Event::Decision(sample_decision()));
        sink.record(&Event::Finish {
            rounds: 1,
            spill_instructions: 0,
            moves_eliminated: 3,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"round\""));
        assert!(lines[1].contains("\"verdict\":\"assigned\""));
        assert!(lines[1].contains("\"reg\":\"r0\""));
        assert!(lines[1].contains("\"strength\":40"));
        assert!(lines[2].contains("\"moves_eliminated\":3"));
    }

    #[test]
    fn json_lines_omits_graphs_by_default() {
        let dump = Event::GraphDump {
            round: 1,
            class: RegClass::Int,
            kind: GraphKind::Ifg,
            dot: "graph {}".into(),
        };
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.record(&dump);
        assert!(sink.into_inner().is_empty());
        let mut sink = JsonLinesSink::new(Vec::new()).with_graphs();
        sink.record(&dump);
        assert!(String::from_utf8(sink.into_inner()).unwrap().contains("\"kind\":\"ifg\""));
    }

    #[test]
    fn spilled_verdict_serializes_reason_and_cost() {
        let mut d = sample_decision();
        d.verdict = Verdict::Spilled {
            reason: SpillReason::PreferMemory,
            cost: 12,
        };
        let line = event_json(&Event::Decision(d), false).unwrap();
        assert!(line.contains("\"verdict\":\"spilled\""));
        assert!(line.contains("\"reason\":\"prefer-memory\""));
        assert!(line.contains("\"cost\":12"));
    }

    #[test]
    fn pretty_sink_mentions_the_register() {
        let mut sink = PrettySink::new(Vec::new());
        sink.record(&Event::Decision(sample_decision()));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("-> r0"), "{text}");
        assert!(text.contains("coalesce"), "{text}");
    }

    #[test]
    fn dot_dir_sink_writes_files() {
        let dir = std::env::temp_dir().join(format!("pdgc-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = DotDirSink::new(&dir);
        assert!(sink.wants_graphs());
        assert!(!sink.enabled());
        sink.record(&Event::GraphDump {
            round: 2,
            class: RegClass::Int,
            kind: GraphKind::Cpg,
            dot: "digraph cpg {}".into(),
        });
        assert_eq!(sink.files_written(), 1);
        let path = dir.join("round2-int-cpg.dot");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "digraph cpg {}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn phase_times_accumulates_and_merges() {
        let mut t = PhaseTimes::default();
        t.record(&Event::Span {
            phase: Phase::Select,
            round: 1,
            class: None,
            nanos: 1_500_000,
        });
        t.record(&Event::Span {
            phase: Phase::Select,
            round: 2,
            class: None,
            nanos: 500_000,
        });
        assert_eq!(t.nanos(Phase::Select), 2_000_000);
        assert_eq!(t.spans(Phase::Select), 2);
        let mut u = PhaseTimes::default();
        u.merge(&t);
        assert_eq!(u.total_nanos(), 2_000_000);
        assert!(u.json_millis().contains("\"select\":2"));
        assert!(u.summary().contains("select=2.00ms"));
    }

    #[test]
    fn fanout_unions_capabilities() {
        let mut f = FanoutTracer::new();
        assert!(!f.enabled());
        f.push(Box::new(DotDirSink::new("/nonexistent-unused")));
        assert!(!f.enabled());
        assert!(f.wants_graphs());
        f.push(Box::new(RecordingTracer::default()));
        assert!(f.enabled());
        assert_eq!(f.len(), 2);
    }
}
