//! Observability for the pdgc allocation pipeline.
//!
//! The allocator's whole contribution is *which* preference the select
//! phase honors and why; end-of-run statistics cannot show that. This
//! crate defines the event vocabulary the pipeline emits while it works:
//!
//! * **phase spans** — one per pipeline phase (lower, analyze, build,
//!   coalesce, simplify, select, spill, rewrite) with monotonic wall-clock
//!   durations and the spill round they belong to;
//! * **decision events** — one per node the select phase resolves: the
//!   ready-frontier snapshot, the strength differential that made the node
//!   urgent, every preference screened (with its `Str(V, P)` strength and
//!   whether it narrowed the candidate set), and the final verdict — a
//!   register, or a spill with its cost;
//! * **graph dumps** — per-round DOT renderings of the interference
//!   graph, Register Preference Graph, and Coloring Precedence Graph, so a
//!   decision can be replayed against the graphs that produced it.
//!
//! Consumers implement [`Tracer`]; the provided sinks serialize to JSON
//! Lines ([`JsonLinesSink`]), a human-readable log ([`PrettySink`]), DOT
//! files ([`DotDirSink`]), an in-memory event list ([`RecordingTracer`]),
//! or a per-phase time accumulator ([`PhaseTimes`]). [`NoopTracer`] is the
//! zero-cost default: its `enabled()` returns `false`, and every emit site
//! in the allocator checks that flag before constructing an event, so the
//! untraced hot path performs no allocation and no I/O.
//!
//! Alongside the opt-in event stream sits the **always-on metrics layer**
//! ([`metrics::MetricsRegistry`]): fixed-size counter arrays and log₂
//! histograms that cost a `u64` bump per touch, are merged
//! deterministically across batch workers, and serialize to the
//! `results/metrics.json` snapshots the `pdgc report` regression gate
//! diffs. See the [`metrics`] module docs for the merge contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
mod sinks;

pub use metrics::{Counter, Histogram, MetricsRegistry, ValueHist};
pub use sinks::{
    event_json, DotDirSink, FanoutTracer, JsonLinesSink, PhaseTimes, PrettySink, RecordingTracer,
};

use pdgc_ir::RegClass;
use pdgc_target::PhysReg;
use std::time::Instant;

/// A pipeline phase, in execution order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// ABI lowering (argument homing, call sequences).
    Lower,
    /// CFG, liveness, loops, def-use, call crossings.
    Analyze,
    /// Node universe + interference graph + copy collection.
    Build,
    /// Coalescing (aggressive, conservative, or pre-coalescing).
    Coalesce,
    /// Chaitin/Briggs graph simplification.
    Simplify,
    /// Register selection (preference-directed or stack coloring).
    Select,
    /// Spill-code insertion between rounds.
    Spill,
    /// Post-allocation rewrite (copy elimination, caller saves, pairing).
    Rewrite,
    /// Post-allocation symbolic checking (`pdgc-check`).
    Check,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 9] = [
        Phase::Lower,
        Phase::Analyze,
        Phase::Build,
        Phase::Coalesce,
        Phase::Simplify,
        Phase::Select,
        Phase::Spill,
        Phase::Rewrite,
        Phase::Check,
    ];

    /// Stable lower-case name used in traces and JSON records.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Lower => "lower",
            Phase::Analyze => "analyze",
            Phase::Build => "build",
            Phase::Coalesce => "coalesce",
            Phase::Simplify => "simplify",
            Phase::Select => "select",
            Phase::Spill => "spill",
            Phase::Rewrite => "rewrite",
            Phase::Check => "check",
        }
    }

    /// Dense index (position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Which graph a [`Event::GraphDump`] renders.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphKind {
    /// The interference graph.
    Ifg,
    /// The Register Preference Graph.
    Rpg,
    /// The Coloring Precedence Graph.
    Cpg,
}

impl GraphKind {
    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            GraphKind::Ifg => "ifg",
            GraphKind::Rpg => "rpg",
            GraphKind::Cpg => "cpg",
        }
    }
}

/// One preference screened while allocating a node (§5.3 step 4).
#[derive(Clone, Debug)]
pub struct Considered {
    /// Preference kind: `"coalesce"`, `"seq+"`, `"seq-"`, or `"prefers"`.
    pub kind: &'static str,
    /// Human-readable target: `"node:7"`, `"r2"`, `"volatile"`,
    /// `"non-volatile"`, or `"set:0xff"`.
    pub target: String,
    /// The `Str(V, P)` strength under which this screen was ordered.
    pub strength: i64,
    /// True when the partner was still unallocated (step 2.2 deferral) and
    /// the screen only reserved registers the partner can still use.
    pub deferred: bool,
    /// Whether the screen actually narrowed the candidate set (a screen
    /// that would empty the set, or adds no gain, is skipped).
    pub narrowed: bool,
    /// Candidate registers remaining after this screen.
    pub survivors: u32,
}

/// Why a node was spilled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpillReason {
    /// All registers were taken by already-colored interference neighbors.
    NoRegister,
    /// §5.4 active spilling: the node's strongest preference is negative —
    /// it prefers to live in memory.
    PreferMemory,
}

impl SpillReason {
    /// Stable name.
    pub fn as_str(self) -> &'static str {
        match self {
            SpillReason::NoRegister => "no-register",
            SpillReason::PreferMemory => "prefer-memory",
        }
    }
}

/// The outcome of one select-phase decision.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// The node received a register.
    Assigned {
        /// The chosen register.
        reg: PhysReg,
    },
    /// The node was spilled.
    Spilled {
        /// Why.
        reason: SpillReason,
        /// The node's spill cost (`u64::MAX` never reaches here — such
        /// nodes are unspillable).
        cost: u64,
    },
}

/// One select-phase decision: everything needed to audit why a node got
/// its register (or its spill verdict).
#[derive(Clone, Debug)]
pub struct Decision {
    /// Spill round the decision belongs to (1-based).
    pub round: u32,
    /// Register class being allocated.
    pub class: RegClass,
    /// Allocation-node index within the class universe.
    pub node: u32,
    /// Virtual registers the node represents.
    pub members: Vec<u32>,
    /// Size of the CPG ready frontier when this node was picked.
    pub frontier: u32,
    /// The step-3 strength differential that made this node the pick.
    pub differential: i64,
    /// Registers available before screening.
    pub available: u32,
    /// Every preference screened, in screening (strength) order.
    pub considered: Vec<Considered>,
    /// The final verdict.
    pub verdict: Verdict,
}

/// A trace event.
#[derive(Clone, Debug)]
pub enum Event {
    /// A spill round began.
    RoundStart {
        /// 1-based round number.
        round: u32,
    },
    /// A pipeline phase completed.
    Span {
        /// Which phase.
        phase: Phase,
        /// The round it ran in (0 for once-per-allocation phases that run
        /// before the first round, i.e. lowering).
        round: u32,
        /// The register class, for per-class phases.
        class: Option<RegClass>,
        /// Monotonic wall-clock duration in nanoseconds.
        nanos: u128,
    },
    /// The select phase resolved one node.
    Decision(Decision),
    /// Spill code was inserted between rounds.
    SpillCode {
        /// The round whose selection forced the spill.
        round: u32,
        /// The virtual registers being spilled.
        vregs: Vec<u32>,
        /// Frame slots in use after insertion.
        slots: u32,
    },
    /// A graph snapshot, rendered to DOT.
    GraphDump {
        /// The round the graph belongs to.
        round: u32,
        /// The class universe.
        class: RegClass,
        /// Which graph.
        kind: GraphKind,
        /// The DOT text.
        dot: String,
    },
    /// The post-allocation symbolic checker rejected the allocation.
    CheckFailed {
        /// The function whose allocation failed the check.
        func: String,
        /// Human-readable violation descriptions, one per broken rule.
        violations: Vec<String>,
    },
    /// Allocation finished.
    Finish {
        /// Rounds used.
        rounds: u32,
        /// Total spill instructions inserted.
        spill_instructions: u64,
        /// Moves eliminated by coalescing.
        moves_eliminated: u64,
    },
}

/// A consumer of allocation trace events.
///
/// All methods have defaults that do nothing, and `enabled()` defaults to
/// `false`; the allocator checks `enabled()` (and `wants_graphs()` for the
/// expensive DOT renders) before constructing any event, so a tracer that
/// stays disabled costs nothing on the hot path.
pub trait Tracer {
    /// Whether the allocator should construct and emit events at all.
    fn enabled(&self) -> bool {
        false
    }

    /// Whether per-round DOT graph dumps should be rendered (they cost
    /// allocation even when the rest of tracing is cheap).
    fn wants_graphs(&self) -> bool {
        false
    }

    /// Receives one event.
    fn record(&mut self, _event: &Event) {}
}

/// The zero-cost default tracer: never enabled, records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {}

/// Runs `f`, emitting a [`Event::Span`] for it when `tracer` is enabled.
/// When disabled this is exactly `f()` — no clock reads, no allocation.
pub fn with_span<T>(
    tracer: &mut dyn Tracer,
    phase: Phase,
    round: u32,
    class: Option<RegClass>,
    f: impl FnOnce() -> T,
) -> T {
    if !tracer.enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    tracer.record(&Event::Span {
        phase,
        round,
        class,
        nanos: start.elapsed().as_nanos(),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_disabled() {
        let t = NoopTracer;
        assert!(!t.enabled());
        assert!(!t.wants_graphs());
    }

    #[test]
    fn with_span_skips_events_when_disabled() {
        let mut t = RecordingTracer::default();
        t.set_enabled(false);
        let v = with_span(&mut t, Phase::Select, 1, None, || 42);
        assert_eq!(v, 42);
        assert!(t.events().is_empty());
        t.set_enabled(true);
        with_span(&mut t, Phase::Select, 2, Some(RegClass::Int), || ());
        assert_eq!(t.events().len(), 1);
        match &t.events()[0] {
            Event::Span { phase, round, class, .. } => {
                assert_eq!(*phase, Phase::Select);
                assert_eq!(*round, 2);
                assert_eq!(*class, Some(RegClass::Int));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(
            names,
            ["lower", "analyze", "build", "coalesce", "simplify", "select", "spill", "rewrite", "check"]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
