//! Benchmark harness shared by the figure-regeneration binaries
//! (`fig7`, `fig9`, `fig10`, `fig11`) and the Criterion benches.
//!
//! The quantities mirror the paper's §6:
//!
//! * **eliminated moves** and **generated spill code**, per register
//!   class, ratioed against the Chaitin-aggressive base (Figure 9);
//! * **elapsed time** as machine-interpreter dynamic cycles summed over a
//!   workload (Figures 10 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod corpus;
pub mod serve;

use pdgc_core::{AllocStats, CheckMode, CheckScope, ClassStats, PhaseScratch, RegisterAllocator};
use pdgc_obs::json::JsonObject;
use pdgc_obs::{MetricsRegistry, PhaseTimes};
use pdgc_sim::{run_mach, DEFAULT_FUEL};
use pdgc_target::TargetDesc;
use pdgc_workloads::{default_args, Workload};

/// Aggregated results of allocating and executing one workload with one
/// allocator.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Allocator name.
    pub allocator: &'static str,
    /// Workload name.
    pub workload: String,
    /// Target name (e.g. `ia64-24`).
    pub target: String,
    /// Summed allocation statistics.
    pub stats: AllocStats,
    /// Summed dynamic cycles over all functions (simulated elapsed time).
    pub cycles: u64,
    /// Allocator wall-clock per pipeline phase, summed over all
    /// functions. All-zero when collected by [`run_workload`]; use
    /// [`run_workload_timed`] to fill it.
    pub phases: PhaseTimes,
}

/// Allocates and executes every function of `workload`.
///
/// # Panics
///
/// Panics if allocation or execution fails (the differential test suite
/// guarantees they do not for the shipped workloads and targets).
pub fn run_workload(
    alloc: &dyn RegisterAllocator,
    workload: &Workload,
    target: &TargetDesc,
) -> WorkloadResult {
    run_workload_inner(alloc, workload, target, None)
}

/// [`run_workload`], with per-phase allocator wall-clock collected via a
/// [`PhaseTimes`] tracer attached to every allocation.
pub fn run_workload_timed(
    alloc: &dyn RegisterAllocator,
    workload: &Workload,
    target: &TargetDesc,
) -> WorkloadResult {
    run_workload_inner(alloc, workload, target, Some(PhaseTimes::default()))
}

fn run_workload_inner(
    alloc: &dyn RegisterAllocator,
    workload: &Workload,
    target: &TargetDesc,
    mut phases: Option<PhaseTimes>,
) -> WorkloadResult {
    let mut stats = AllocStats::default();
    let mut cycles = 0u64;
    for func in &workload.funcs {
        let out = match phases.as_mut() {
            Some(pt) => alloc.allocate_traced(func, target, pt),
            None => alloc.allocate(func, target),
        }
        .unwrap_or_else(|e| panic!("{} failed on {}: {e}", alloc.name(), func.name));
        stats.accumulate(&out.stats);
        let exec = run_mach(&out.mach, target, &default_args(func), DEFAULT_FUEL)
            .unwrap_or_else(|e| panic!("{} produced diverging {}: {e}", alloc.name(), func.name));
        cycles += exec.cycles;
    }
    WorkloadResult {
        allocator: alloc.name(),
        workload: workload.name.clone(),
        target: target.name.clone(),
        stats,
        cycles,
        phases: phases.unwrap_or_default(),
    }
}

/// [`run_workload`], accumulating the always-on metrics (counters,
/// scorecard, latency histograms) into `metrics`. Uses the pooled
/// per-call scratch path — the same one the batch driver takes — so the
/// registry fills exactly as it would under `pdgc bench batch`.
pub fn run_workload_metered(
    alloc: &dyn RegisterAllocator,
    workload: &Workload,
    target: &TargetDesc,
    metrics: &mut MetricsRegistry,
) -> WorkloadResult {
    let mut stats = AllocStats::default();
    let mut cycles = 0u64;
    let mut phases = PhaseTimes::default();
    let mut scratch = PhaseScratch::new();
    for func in &workload.funcs {
        let out = alloc
            .allocate_scratch(
                func,
                target,
                &mut phases,
                CheckMode::Off,
                CheckScope::Full,
                &mut scratch,
            )
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", alloc.name(), func.name));
        scratch.metrics.drain_into(metrics);
        stats.accumulate(&out.stats);
        let exec = run_mach(&out.mach, target, &default_args(func), DEFAULT_FUEL)
            .unwrap_or_else(|e| panic!("{} produced diverging {}: {e}", alloc.name(), func.name));
        cycles += exec.cycles;
    }
    WorkloadResult {
        allocator: alloc.name(),
        workload: workload.name.clone(),
        target: target.name.clone(),
        stats,
        cycles,
        phases,
    }
}

fn class_json(c: &ClassStats) -> String {
    JsonObject::new()
        .u64("copies_before", c.copies_before as u64)
        .u64("moves_eliminated", c.moves_eliminated as u64)
        .u64("copies_remaining", c.copies_remaining as u64)
        .u64("spill_loads", c.spill_loads as u64)
        .u64("spill_stores", c.spill_stores as u64)
        .finish()
}

/// Renders an [`AllocStats`] scorecard as a JSON object — the `"stats"`
/// payload of batch rows and serve responses.
pub fn stats_json(s: &AllocStats) -> String {
    JsonObject::new()
        .u64("copies_before", s.copies_before as u64)
        .u64("moves_eliminated", s.moves_eliminated as u64)
        .u64("copies_remaining", s.copies_remaining as u64)
        .u64("spill_loads", s.spill_loads as u64)
        .u64("spill_stores", s.spill_stores as u64)
        .u64("spill_instructions", s.spill_instructions as u64)
        .u64("caller_save_insts", s.caller_save_insts as u64)
        .u64("nonvolatiles_used", s.nonvolatiles_used as u64)
        .u64("paired_loads", s.paired_loads as u64)
        .u64("paired_candidates", s.paired_candidates as u64)
        .u64("zero_extensions", s.zero_extensions as u64)
        .u64("rounds", s.rounds as u64)
        .u64("frame_slots", u64::from(s.frame_slots))
        .raw("int", &class_json(&s.int))
        .raw("float", &class_json(&s.float))
        .finish()
}

/// One [`WorkloadResult`] as a JSON object (workload, allocator, target,
/// statistics, cycles, and per-phase milliseconds).
pub fn result_json(r: &WorkloadResult) -> String {
    JsonObject::new()
        .str("workload", &r.workload)
        .str("allocator", r.allocator)
        .str("target", &r.target)
        .u64("cycles", r.cycles)
        .raw("stats", &stats_json(&r.stats))
        .raw("phases_ms", &r.phases.json_millis())
        .finish()
}

/// Writes `results/<figure>.json`: a machine-readable record of a bench
/// run — `{"figure": ..., "results": [...]}`.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, file write).
pub fn write_results(
    figure: &str,
    results: &[WorkloadResult],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{figure}.json"));
    let body = JsonObject::new()
        .str("figure", figure)
        .raw(
            "results",
            &pdgc_obs::json::array(results.iter().map(result_json)),
        )
        .finish();
    std::fs::write(&path, body + "\n")?;
    Ok(path)
}

/// One metrics snapshot as the `results/metrics.json` object: run
/// provenance (`source`, `allocator`, `target`) plus the registry's
/// three sections (`counters`, `scorecard_hists`, `latency_hists`).
/// `pdgc report` diffs two of these.
pub fn metrics_snapshot_json(
    source: &str,
    allocator: &str,
    target: &str,
    m: &MetricsRegistry,
) -> String {
    JsonObject::new()
        .str("source", source)
        .str("allocator", allocator)
        .str("target", target)
        .raw("counters", &m.counters_json())
        .raw("scorecard_hists", &m.scorecard_hists_json())
        .raw("latency_hists", &m.latency_hists_json())
        .finish()
}

/// Writes [`metrics_snapshot_json`] to `results/metrics.json`.
///
/// # Errors
///
/// Propagates filesystem errors (directory creation, file write).
pub fn write_metrics(
    source: &str,
    allocator: &str,
    target: &str,
    m: &MetricsRegistry,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("metrics.json");
    std::fs::write(&path, metrics_snapshot_json(source, allocator, target, m) + "\n")?;
    Ok(path)
}

/// FNV-1a hash of a machine function's printed form — a compact
/// fingerprint of the complete post-rewrite output, used by the batch
/// driver to certify that two runs produced identical code.
pub fn fingerprint_mach(mach: &pdgc_target::MachFunction) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in mach.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The geometric mean of positive values.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a ratio, using `-` for undefined (0/0) entries.
pub fn fmt_ratio(num: usize, den: usize) -> String {
    if den == 0 {
        if num == 0 {
            "    -".to_string()
        } else {
            format!("{:>5}", format!("+{num}"))
        }
    } else {
        format!("{:5.2}", num as f64 / den as f64)
    }
}

/// Prints an aligned table: a header row then data rows, first column
/// left-aligned and 14 wide, the rest right-aligned and 12 wide.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let head: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            if i == 0 {
                format!("{h:<14}")
            } else {
                format!("{h:>14}")
            }
        })
        .collect();
    println!("{head}");
    println!("{}", "-".repeat(head.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<14}")
                } else {
                    format!("{c:>14}")
                }
            })
            .collect();
        println!("{line}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_equal_values() {
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_mixed() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(0, 0).trim(), "-");
        assert_eq!(fmt_ratio(5, 10).trim(), "0.50");
    }

    #[test]
    fn run_workload_smoke() {
        use pdgc_core::PreferenceAllocator;
        use pdgc_target::PressureModel;
        let prof = &pdgc_workloads::specjvm_suite()[6]; // jack: smallest
        let mut w = pdgc_workloads::generate(prof);
        w.funcs.truncate(2);
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let r = run_workload(&PreferenceAllocator::full(), &w, &target);
        assert!(r.cycles > 0);
        assert!(r.stats.copies_before > 0);
    }
}
