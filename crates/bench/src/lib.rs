//! Benchmark harness shared by the figure-regeneration binaries
//! (`fig7`, `fig9`, `fig10`, `fig11`) and the Criterion benches.
//!
//! The quantities mirror the paper's §6:
//!
//! * **eliminated moves** and **generated spill code**, per register
//!   class, ratioed against the Chaitin-aggressive base (Figure 9);
//! * **elapsed time** as machine-interpreter dynamic cycles summed over a
//!   workload (Figures 10 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pdgc_core::{AllocStats, RegisterAllocator};
use pdgc_sim::{run_mach, DEFAULT_FUEL};
use pdgc_target::TargetDesc;
use pdgc_workloads::{default_args, Workload};

/// Aggregated results of allocating and executing one workload with one
/// allocator.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Allocator name.
    pub allocator: &'static str,
    /// Workload name.
    pub workload: String,
    /// Summed allocation statistics.
    pub stats: AllocStats,
    /// Summed dynamic cycles over all functions (simulated elapsed time).
    pub cycles: u64,
}

/// Allocates and executes every function of `workload`.
///
/// # Panics
///
/// Panics if allocation or execution fails (the differential test suite
/// guarantees they do not for the shipped workloads and targets).
pub fn run_workload(
    alloc: &dyn RegisterAllocator,
    workload: &Workload,
    target: &TargetDesc,
) -> WorkloadResult {
    let mut stats = AllocStats::default();
    let mut cycles = 0u64;
    for func in &workload.funcs {
        let out = alloc
            .allocate(func, target)
            .unwrap_or_else(|e| panic!("{} failed on {}: {e}", alloc.name(), func.name));
        stats.accumulate(&out.stats);
        let exec = run_mach(&out.mach, target, &default_args(func), DEFAULT_FUEL)
            .unwrap_or_else(|e| panic!("{} produced diverging {}: {e}", alloc.name(), func.name));
        cycles += exec.cycles;
    }
    WorkloadResult {
        allocator: alloc.name(),
        workload: workload.name.clone(),
        stats,
        cycles,
    }
}

/// The geometric mean of positive values.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a ratio, using `-` for undefined (0/0) entries.
pub fn fmt_ratio(num: usize, den: usize) -> String {
    if den == 0 {
        if num == 0 {
            "    -".to_string()
        } else {
            format!("{:>5}", format!("+{num}"))
        }
    } else {
        format!("{:5.2}", num as f64 / den as f64)
    }
}

/// Prints an aligned table: a header row then data rows, first column
/// left-aligned and 14 wide, the rest right-aligned and 12 wide.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let head: String = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            if i == 0 {
                format!("{h:<14}")
            } else {
                format!("{h:>14}")
            }
        })
        .collect();
    println!("{head}");
    println!("{}", "-".repeat(head.len()));
    for row in rows {
        let line: String = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<14}")
                } else {
                    format!("{c:>14}")
                }
            })
            .collect();
        println!("{line}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_of_equal_values() {
        assert!((geo_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geo_mean_mixed() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(0, 0).trim(), "-");
        assert_eq!(fmt_ratio(5, 10).trim(), "0.50");
    }

    #[test]
    fn run_workload_smoke() {
        use pdgc_core::PreferenceAllocator;
        use pdgc_target::PressureModel;
        let prof = &pdgc_workloads::specjvm_suite()[6]; // jack: smallest
        let mut w = pdgc_workloads::generate(prof);
        w.funcs.truncate(2);
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let r = run_workload(&PreferenceAllocator::full(), &w, &target);
        assert!(r.cycles > 0);
        assert!(r.stats.copies_before > 0);
    }
}
