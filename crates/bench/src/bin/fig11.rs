//! Regenerates **Figure 11** of the paper: performance of the integrated
//! approach at middle pressure (24 registers), as elapsed time relative to
//! the full-preference allocator.
//!
//! Columns: the three coalescing-only approaches (ours, Park–Moon
//! optimistic, Briggs+aggressive), the Lueh–Gross-style
//! "aggressive+volatility" allocator, and full preferences (= 1.00).

use pdgc_bench::{
    geo_mean, print_table, run_workload_metered, write_metrics, write_results, WorkloadResult,
};
use pdgc_core::baselines::{BriggsAllocator, CallCostAllocator, OptimisticAllocator};
use pdgc_core::{PreferenceAllocator, RegisterAllocator};
use pdgc_obs::MetricsRegistry;
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{generate, specjvm_suite};

fn main() {
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(OptimisticAllocator),
        Box::new(BriggsAllocator),
        Box::new(CallCostAllocator),
        Box::new(PreferenceAllocator::full()),
    ];
    let target = TargetDesc::ia64_like(PressureModel::Middle);

    println!("Figure 11: elapsed time relative to full preferences, 24 registers");
    let mut all_results: Vec<WorkloadResult> = Vec::new();
    let mut metrics = MetricsRegistry::default();
    let mut table = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algs.len()];
    for prof in specjvm_suite() {
        let w = generate(&prof);
        let results: Vec<WorkloadResult> = algs
            .iter()
            .map(|a| run_workload_metered(a.as_ref(), &w, &target, &mut metrics))
            .collect();
        let cycles: Vec<u64> = results.iter().map(|r| r.cycles).collect();
        all_results.extend(results);
        let full = *cycles.last().unwrap() as f64;
        let mut row = vec![prof.name.clone()];
        for (i, &c) in cycles.iter().enumerate() {
            let r = c as f64 / full;
            ratios[i].push(r);
            row.push(format!("{r:.3}"));
        }
        table.push(row);
    }
    let mut geo_row = vec!["geo.".to_string()];
    geo_row.extend(ratios.iter().map(|r| format!("{:.3}", geo_mean(r))));
    table.push(geo_row);
    print_table(
        &[
            "workload",
            "pdgc-coalesce",
            "optimistic",
            "briggs+aggr",
            "aggr+volat",
            "full-prefs",
        ],
        &table,
    );
    match write_results("fig11", &all_results) {
        Ok(path) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_metrics("fig11", "all", &target.name, &metrics) {
        Ok(path) => println!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
}
