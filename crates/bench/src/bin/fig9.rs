//! Regenerates **Figure 9** of the paper: coalescing capability.
//!
//! * (a) ratio of eliminated move instructions vs the Chaitin-aggressive
//!   base, 16 registers;
//! * (b) ratio of generated spill instructions vs base, 16 registers;
//! * (c) eliminated-move ratio, 32 registers;
//! * (d) spill-instruction ratio, 32 registers.
//!
//! Rows are the SPECjvm98 analogs; `mpegaudio fp` and `mtrt fp` report the
//! floating-point register class of those workloads, as in the paper.
//! Columns are the paper's three algorithms: ours (preference-directed,
//! coalesce preferences only), Park–Moon optimistic coalescing, and
//! Briggs-style coloring with aggressive coalescing.

use pdgc_bench::{
    fmt_ratio, print_table, run_workload_metered, write_metrics, write_results, WorkloadResult,
};
use pdgc_core::baselines::{BriggsAllocator, ChaitinAllocator, OptimisticAllocator};
use pdgc_core::{ClassStats, PreferenceAllocator, RegisterAllocator};
use pdgc_ir::RegClass;
use pdgc_obs::MetricsRegistry;
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{generate, specjvm_suite};

fn main() {
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(OptimisticAllocator),
        Box::new(BriggsAllocator),
    ];

    let mut all_results: Vec<WorkloadResult> = Vec::new();
    let mut metrics = MetricsRegistry::default();
    for model in [PressureModel::High, PressureModel::Low] {
        let regs = model.num_regs();
        let target = TargetDesc::ia64_like(model);
        let suite = specjvm_suite();

        // Row spec: (label, workload index, class).
        let mut rows_spec: Vec<(String, usize, RegClass)> = suite
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.clone(), i, RegClass::Int))
            .collect();
        for (i, p) in suite.iter().enumerate() {
            if p.float_ratio > 0.3 {
                rows_spec.push((format!("{} fp", p.name), i, RegClass::Float));
            }
        }

        let workloads: Vec<_> = suite.iter().map(generate).collect();
        let base: Vec<WorkloadResult> = workloads
            .iter()
            .map(|w| run_workload_metered(&ChaitinAllocator, w, &target, &mut metrics))
            .collect();
        let results: Vec<Vec<WorkloadResult>> = algs
            .iter()
            .map(|a| {
                workloads
                    .iter()
                    .map(|w| run_workload_metered(a.as_ref(), w, &target, &mut metrics))
                    .collect()
            })
            .collect();
        all_results.extend(base.iter().cloned());
        all_results.extend(results.iter().flatten().cloned());

        let class_stats = |r: &WorkloadResult, class: RegClass| -> ClassStats {
            *r.stats.class(class)
        };

        let sub = if regs == 16 { "(a)" } else { "(c)" };
        println!(
            "Figure 9{sub}: eliminated moves relative to Chaitin-aggressive, {regs} registers"
        );
        let mut table = Vec::new();
        for (label, wi, class) in &rows_spec {
            let b = class_stats(&base[*wi], *class);
            let mut row = vec![label.clone()];
            for alg_results in &results {
                let a = class_stats(&alg_results[*wi], *class);
                row.push(fmt_ratio(a.moves_eliminated, b.moves_eliminated));
            }
            // Context: what fraction of all moves the base removed.
            row.push(fmt_ratio(b.moves_eliminated, b.copies_before));
            table.push(row);
        }
        print_table(
            &["workload", "pdgc-coalesce", "optimistic", "briggs+aggr", "base rate"],
            &table,
        );

        let sub = if regs == 16 { "(b)" } else { "(d)" };
        println!(
            "Figure 9{sub}: generated spill instructions relative to Chaitin-aggressive, {regs} registers"
        );
        let mut table = Vec::new();
        for (label, wi, class) in &rows_spec {
            let b = class_stats(&base[*wi], *class);
            let mut row = vec![label.clone()];
            for alg_results in &results {
                let a = class_stats(&alg_results[*wi], *class);
                row.push(fmt_ratio(a.spill_instructions(), b.spill_instructions()));
            }
            row.push(format!("{}", b.spill_instructions()));
            table.push(row);
        }
        print_table(
            &["workload", "pdgc-coalesce", "optimistic", "briggs+aggr", "base spills"],
            &table,
        );
    }
    match write_results("fig9", &all_results) {
        Ok(path) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_metrics("fig9", "all", "ia64-16+32", &metrics) {
        Ok(path) => println!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
}
