//! Experiments beyond the paper's figures:
//!
//! 1. **Preference ablation** — the contribution of each preference kind
//!    (coalesce → +sequential → +volatility → +limited) to simulated
//!    elapsed time, on the middle-pressure model. DESIGN.md's ablation
//!    index.
//! 2. **Register footprint** — distinct registers touched per allocator,
//!    the quantity §7 argues matters on stacked-register machines
//!    (IA-64): the preference-directed allocator keeps the Chaitin-style
//!    packing.
//! 3. **Limited-usage preference** (x86-like target) — zero-extensions
//!    avoided by the full allocator on a byte-load-dense workload.

use pdgc_bench::{
    geo_mean, print_table, run_workload_metered, write_metrics, write_results, WorkloadResult,
};
use pdgc_core::baselines::{ChaitinAllocator, OptimisticAllocator, PriorityAllocator};
use pdgc_core::{PreferenceAllocator, PreferenceSet, RegisterAllocator};
use pdgc_obs::MetricsRegistry;
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{default_args, generate, specjvm_suite, WorkloadProfile};

fn main() {
    let mut metrics = MetricsRegistry::default();
    let mut all_results = ablation(&mut metrics);
    footprint();
    limited_usage();
    all_results.extend(precoalesce(&mut metrics));
    match write_results("extras", &all_results) {
        Ok(path) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_metrics("extras", "all", "ia64-24+32", &metrics) {
        Ok(path) => println!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
}

/// The paper's §6.1/§8 proposed refinement — conservatively coalescing
/// non-spill-causing pairs before simplification — measured where the
/// one-by-one approach trails optimistic coalescing most: move
/// elimination with plentiful registers.
fn precoalesce(metrics: &mut MetricsRegistry) -> Vec<WorkloadResult> {
    let target = TargetDesc::ia64_like(PressureModel::Low);
    println!("Pre-coalescing refinement: eliminated moves & spills, 32 registers");
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(PreferenceAllocator::coalescing_only().with_precoalesce()),
        Box::new(OptimisticAllocator),
    ];
    let mut all = Vec::new();
    let mut table = Vec::new();
    for prof in specjvm_suite() {
        let w = generate(&prof);
        let mut row = vec![prof.name.clone()];
        for a in &algs {
            let r = run_workload_metered(a.as_ref(), &w, &target, metrics);
            row.push(format!(
                "{}/{}",
                r.stats.moves_eliminated, r.stats.spill_instructions
            ));
            all.push(r);
        }
        table.push(row);
    }
    print_table(
        &["workload", "one-by-one", "+pre-coalesce", "optimistic"],
        &table,
    );
    println!("(cells are eliminated-moves/spill-instructions)");
    all
}

fn ablation(metrics: &mut MetricsRegistry) -> Vec<WorkloadResult> {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let configs: Vec<(&str, PreferenceSet)> = vec![
        ("coalesce", PreferenceSet::coalescing_only()),
        (
            "+sequential",
            PreferenceSet {
                coalesce: true,
                sequential: true,
                volatility: false,
                limited: false,
            },
        ),
        (
            "+volatility",
            PreferenceSet {
                coalesce: true,
                sequential: true,
                volatility: true,
                limited: false,
            },
        ),
        ("+limited (full)", PreferenceSet::full()),
    ];

    println!("Ablation: simulated elapsed time (kilocycles) per preference mix, 24 registers");
    let mut all = Vec::new();
    let mut table = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for prof in specjvm_suite() {
        let w = generate(&prof);
        let cycles: Vec<u64> = configs
            .iter()
            .map(|(_, prefs)| {
                let alloc = PreferenceAllocator::with_preferences(*prefs);
                let r = run_workload_metered(&alloc, &w, &target, metrics);
                let c = r.cycles;
                all.push(r);
                c
            })
            .collect();
        let full = *cycles.last().unwrap() as f64;
        let mut row = vec![prof.name.clone()];
        for (i, &c) in cycles.iter().enumerate() {
            ratios[i].push(c as f64 / full);
            row.push(format!("{:.1}", c as f64 / 1000.0));
        }
        table.push(row);
    }
    let mut geo_row = vec!["geo. (vs full)".to_string()];
    geo_row.extend(ratios.iter().map(|r| format!("{:.3}", geo_mean(r))));
    table.push(geo_row);
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(configs.iter().map(|(n, _)| *n))
        .collect();
    print_table(&headers, &table);
    all
}

fn footprint() {
    let target = TargetDesc::ia64_like(PressureModel::Low);
    println!("Register footprint: distinct registers touched (32-register model)");
    println!("(§7: priority-based coloring \"probably uses more registers than");
    println!(" Chaitin's approach\"; fewer matter on stacked files like IA-64)");
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(ChaitinAllocator),
        Box::new(OptimisticAllocator),
        Box::new(PriorityAllocator),
        Box::new(PreferenceAllocator::full()),
    ];
    let mut table = Vec::new();
    for prof in specjvm_suite() {
        let w = generate(&prof);
        let mut row = vec![prof.name.clone()];
        for a in &algs {
            let total: usize = w
                .funcs
                .iter()
                .map(|f| a.allocate(f, &target).unwrap().mach.regs_used().len())
                .sum();
            row.push(format!("{:.1}", total as f64 / w.funcs.len() as f64));
        }
        table.push(row);
    }
    print_table(
        &["workload", "chaitin", "optimistic", "priority", "full-prefs"],
        &table,
    );
}

fn limited_usage() {
    let target = TargetDesc::x86_like(PressureModel::Middle);
    let prof = WorkloadProfile {
        name: "x86-bytes".into(),
        seed: 0xB17E5,
        num_funcs: 8,
        ops_per_func: 90,
        loop_depth: 2,
        call_density: 0.15,
        float_ratio: 0.0,
        paired_density: 0.0,
        byte_density: 0.45,
        pressure: 10,
        diamond_density: 0.2,
        pair_stride: 8,
        pair_align: 1,
    };
    let w = generate(&prof);
    println!("Limited register usage (x86-like byte registers, 24-register model)");
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(OptimisticAllocator),
        Box::new(PreferenceAllocator::full()),
    ];
    let mut table = Vec::new();
    for a in &algs {
        let mut exts = 0usize;
        let mut cycles = 0u64;
        for f in &w.funcs {
            let out = a.allocate(f, &target).unwrap();
            exts += out.stats.zero_extensions;
            let exec =
                pdgc_sim::run_mach(&out.mach, &target, &default_args(f), pdgc_sim::DEFAULT_FUEL)
                    .unwrap();
            cycles += exec.cycles;
        }
        let short = match a.name() {
            "pdgc-coalescing-only" => "pdgc-coalesce",
            "optimistic-coalescing" => "optimistic",
            other => other,
        };
        table.push(vec![
            short.to_string(),
            exts.to_string(),
            format!("{:.1}", cycles as f64 / 1000.0),
        ]);
    }
    print_table(&["allocator", "zero-exts", "kilocycles"], &table);
}
