//! Regenerates **Figure 10** of the paper: the impact of honoring
//! preferences, as elapsed time per register usage model.
//!
//! * (a) high pressure — 16 registers;
//! * (b) middle pressure — 24 registers;
//! * (c) low pressure — 32 registers.
//!
//! Elapsed time is simulated dynamic cycles (machine-interpreter execution
//! under the Appendix-consistent cost model). Columns are the paper's
//! three algorithms: ours restricted to coalescing, Park–Moon optimistic
//! coalescing, and the full-preference allocator.

use pdgc_bench::{
    geo_mean, print_table, run_workload_metered, write_metrics, write_results, WorkloadResult,
};
use pdgc_core::baselines::OptimisticAllocator;
use pdgc_core::{PreferenceAllocator, RegisterAllocator};
use pdgc_obs::MetricsRegistry;
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{generate, specjvm_suite};

fn main() {
    let algs: Vec<Box<dyn RegisterAllocator>> = vec![
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(OptimisticAllocator),
        Box::new(PreferenceAllocator::full()),
    ];

    let mut all_results: Vec<WorkloadResult> = Vec::new();
    let mut metrics = MetricsRegistry::default();
    for (sub, model) in [
        ("(a)", PressureModel::High),
        ("(b)", PressureModel::Middle),
        ("(c)", PressureModel::Low),
    ] {
        let target = TargetDesc::ia64_like(model);
        println!(
            "Figure 10{sub}: simulated elapsed time (kilocycles), {} registers",
            model.num_regs()
        );
        let mut table = Vec::new();
        let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algs.len()];
        for prof in specjvm_suite() {
            let w = generate(&prof);
            let results: Vec<WorkloadResult> = algs
                .iter()
                .map(|a| run_workload_metered(a.as_ref(), &w, &target, &mut metrics))
                .collect();
            let cycles: Vec<u64> = results.iter().map(|r| r.cycles).collect();
            all_results.extend(results);
            let full = *cycles.last().unwrap() as f64;
            for (i, &c) in cycles.iter().enumerate() {
                ratios[i].push(c as f64 / full);
            }
            let mut row = vec![prof.name.clone()];
            row.extend(cycles.iter().map(|c| format!("{:.1}", *c as f64 / 1000.0)));
            table.push(row);
        }
        let mut geo_row = vec!["geo. (vs full)".to_string()];
        geo_row.extend(ratios.iter().map(|r| format!("{:.3}", geo_mean(r))));
        table.push(geo_row);
        print_table(
            &["workload", "only-coalesce", "optimistic", "full-prefs"],
            &table,
        );
    }
    match write_results("fig10", &all_results) {
        Ok(path) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_metrics("fig10", "all", "ia64-16+24+32", &metrics) {
        Ok(path) => println!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
}
