//! Walks through the paper's **Figure 7** end to end, printing each
//! artifact: the sample program, the Register Preference Graph strengths,
//! the Coloring Precedence Graph, the final assignment, and the final
//! machine code with its fused paired load.

use pdgc_bench::{write_metrics, write_results, WorkloadResult};
use pdgc_core::build::collect_copies;
use pdgc_core::cost::CostModel;
use pdgc_core::cpg::Cpg;
use pdgc_core::lower::lower_abi;
use pdgc_core::node::NodeMap;
use pdgc_core::pipeline::analyze;
use pdgc_core::rpg::{build_rpg, PrefTarget};
use pdgc_core::simplify::{simplify, SimplifyMode};
use pdgc_core::{PreferenceAllocator, PreferenceSet, RegisterAllocator};
use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};
use pdgc_obs::{Event, JsonLinesSink, PhaseTimes, Tracer};
use pdgc_target::TargetDesc;

/// Duplicates every event to two tracers (here: the JSONL trace file and
/// the per-phase accumulator feeding `results/fig7.json`).
struct Tee<'a> {
    a: &'a mut dyn Tracer,
    b: &'a mut dyn Tracer,
}

impl Tracer for Tee<'_> {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn wants_graphs(&self) -> bool {
        self.a.wants_graphs() || self.b.wants_graphs()
    }

    fn record(&mut self, event: &Event) {
        self.a.record(event);
        self.b.record(event);
    }
}

/// `--trace PATH` / `--trace=PATH` from the command line, if given.
fn trace_arg() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--trace" {
            return it.next();
        }
        if let Some(v) = a.strip_prefix("--trace=") {
            return Some(v.to_string());
        }
    }
    None
}

/// `--check` / `--check=MODE` from the command line (`Off` when absent).
fn check_arg() -> pdgc_core::CheckMode {
    for a in std::env::args().skip(1) {
        if a == "--check" {
            return pdgc_core::CheckMode::Always;
        }
        if let Some(v) = a.strip_prefix("--check=") {
            return pdgc_core::CheckMode::parse(v)
                .unwrap_or_else(|| panic!("bad --check mode `{v}` (off, debug, always)"));
        }
    }
    pdgc_core::CheckMode::Off
}

fn main() {
    // Figure 7(a): the sample loop.
    let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
    let arg0 = b.param(0);
    let header = b.create_block();
    let exit = b.create_block();
    let v0 = b.load(arg0, 0);
    b.jump(header);
    b.switch_to(header);
    let v1 = b.load(v0, 0);
    let v2 = b.load(v0, 8);
    let v3 = b.copy(v0);
    let v4 = b.bin(BinOp::Add, v1, v2);
    b.call("g", vec![v3], None);
    b.emit(pdgc_ir::Inst::BinImm {
        op: BinOp::Add,
        dst: v0,
        lhs: v4,
        imm: 1,
    });
    b.branch_imm(CmpOp::Ne, v0, 0, header, exit);
    b.switch_to(exit);
    b.ret(None);
    let func = b.finish();

    println!("=== Figure 7(a): sample code ===\n{func}\n");

    let target = TargetDesc::figure7();
    let lowered = lower_abi(&func, &target).unwrap();
    let analyses = analyze(&lowered.func);
    let cost = CostModel::new(
        &lowered.func,
        &analyses.defuse,
        &analyses.loops,
        &analyses.crossings,
    );
    let nodes = NodeMap::build(&lowered.func, &target, RegClass::Int, &lowered.pinned);
    let copies = collect_copies(&lowered.func, &analyses.loops, &nodes);
    let rpg = build_rpg(&lowered.func, &nodes, &cost, &copies, PreferenceSet::full(), &target);

    println!("=== Figure 7(c): Register Preference Graph ===");
    let names = [
        (arg0, "arg0"),
        (v0, "v0"),
        (v1, "v1"),
        (v2, "v2"),
        (v3, "v3"),
        (v4, "v4"),
    ];
    for (v, name) in names {
        let n = nodes.node_of(v).unwrap();
        for p in rpg.prefs(n) {
            let tgt = match p.target {
                PrefTarget::Node(m) if nodes.is_precolored(m) => {
                    format!("{}", nodes.phys_reg(m))
                }
                PrefTarget::Node(m) => {
                    let member = nodes.members(m)[0];
                    names
                        .iter()
                        .find(|(w, _)| *w == member)
                        .map(|(_, s)| s.to_string())
                        .unwrap_or_else(|| format!("{member}"))
                }
                PrefTarget::Volatile => "volatile".to_string(),
                PrefTarget::NonVolatile => "non-volatile".to_string(),
                PrefTarget::Set(mask) => format!("regs{{{mask:#x}}}"),
            };
            println!(
                "  {name} --{:?}--> {tgt}  (vol: {}, n-vol: {})",
                p.kind,
                show(p.strength_vol),
                show(p.strength_nonvol)
            );
        }
    }
    println!();

    // Simplification and the CPG.
    let mut ctx_ifg = pdgc_core::build::build_ifg(&lowered.func, &analyses.liveness, &nodes);
    let costs: Vec<u64> = (0..nodes.num_nodes())
        .map(|i| {
            let n = pdgc_core::node::NodeId::new(i);
            if nodes.is_precolored(n) {
                u64::MAX
            } else {
                cost.spill_cost(nodes.members(n)[0])
            }
        })
        .collect();
    let sr = simplify(&mut ctx_ifg, 3, &costs, SimplifyMode::Optimistic);
    ctx_ifg.restore_all();
    println!("=== Figure 7(d): simplification stack (removal order) ===");
    let node_name = |n: pdgc_core::node::NodeId| -> String {
        let member = nodes.members(n)[0];
        names
            .iter()
            .find(|(w, _)| *w == member)
            .map(|(_, s)| s.to_string())
            .unwrap_or_else(|| format!("{member}"))
    };
    println!(
        "  {:?}\n",
        sr.stack.iter().map(|&n| node_name(n)).collect::<Vec<_>>()
    );

    let cpg = Cpg::build(&ctx_ifg, &sr.stack, &sr.optimistic, 3);
    println!("=== Figure 7(e): Coloring Precedence Graph (K = 3) ===");
    for n in cpg.nodes() {
        let mut edges = Vec::new();
        if cpg.from_top(n) {
            edges.push("top -> self".to_string());
        }
        for &s in cpg.succs(n) {
            edges.push(format!("self -> {}", node_name(s)));
        }
        if cpg.to_bottom(n) {
            edges.push("self -> bottom".to_string());
        }
        println!("  {}: {}", node_name(n), edges.join(", "));
    }
    println!();

    // The full allocation, with the tracing layer attached: phase spans
    // and select decisions go to `--trace PATH` (JSON Lines) when given,
    // and the per-phase wall-clock always lands in `results/fig7.json`.
    let alloc = PreferenceAllocator::full();
    let check = check_arg();
    let mut phases = PhaseTimes::default();
    // The scratch path fills the always-on metrics registry alongside the
    // tracer; single-function entry points keep the full checker scope.
    let mut scratch = pdgc_core::PhaseScratch::new();
    let scope = pdgc_core::CheckScope::Full;
    let out = match trace_arg() {
        Some(path) => {
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("creating trace {path}: {e}"));
            let mut sink = JsonLinesSink::new(std::io::BufWriter::new(file));
            let out = {
                let mut tee = Tee {
                    a: &mut sink,
                    b: &mut phases,
                };
                alloc
                    .allocate_scratch(&func, &target, &mut tee, check, scope, &mut scratch)
                    .unwrap()
            };
            use std::io::Write as _;
            sink.into_inner().flush().unwrap();
            eprintln!("trace written to {path}");
            out
        }
        None => alloc
            .allocate_scratch(&func, &target, &mut phases, check, scope, &mut scratch)
            .unwrap(),
    };
    if check.should_check() {
        println!("symbolic check passed ({check} mode)");
    }
    println!("=== Figure 7(g): assignment ===");
    for (v, name) in names {
        println!("  {name} -> {}", out.assignment[v.index()].unwrap());
    }
    println!("\n=== Figure 7(h): final code ===\n{}", out.mach);
    println!(
        "\n(copies eliminated: {}/{}, paired loads fused: {}, spills: {})",
        out.stats.moves_eliminated,
        out.stats.copies_before,
        out.stats.paired_loads,
        out.stats.spill_instructions
    );

    let record = WorkloadResult {
        allocator: alloc.name(),
        workload: "figure7".to_string(),
        target: target.name.clone(),
        stats: out.stats,
        cycles: 0, // the Figure 7 walkthrough is not executed
        phases,
    };
    match write_results("fig7", &[record]) {
        Ok(path) => println!("results written to {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    match write_metrics("fig7", alloc.name(), &target.name, &scratch.metrics) {
        Ok(path) => println!("metrics written to {}", path.display()),
        Err(e) => eprintln!("could not write metrics: {e}"),
    }
}

fn show(s: i64) -> String {
    if s == i64::MIN {
        "-inf".to_string()
    } else {
        s.to_string()
    }
}
