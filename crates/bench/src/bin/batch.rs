//! The batch-allocation throughput bench: allocates the whole SPECjvm98
//! analog suite through the parallel batch driver, at `--jobs 1` and at
//! the requested job count, and writes `results/bench_batch.json` with
//! functions/sec, per-phase milliseconds, thread count, and the speedup
//! over the serial run.
//!
//! The serial and parallel runs must produce bit-identical allocations
//! (same per-function statistics and rewrite fingerprints); the process
//! exits non-zero if they diverge, so CI can gate on determinism.
//!
//! Pass `--check` (or `--check=debug`) to run the post-allocation symbolic
//! checker (`pdgc-check`) on every allocation of both runs; under batch the
//! checker replays values only in rewritten blocks (structural, pair, and
//! frame rules still cover everything). A violation aborts with the full
//! violation list.
//!
//! Pass `--min-speedup 1.5` to exit non-zero when the parallel run fails to
//! beat serial throughput by that factor — this is how CI asserts that the
//! per-worker scratch arenas keep batch allocation scaling with threads.
//!
//! ```text
//! cargo run --release -p pdgc-bench --bin batch -- --jobs 4 [--repeat 3] [--target risc16] [--check] [--min-speedup 1.5]
//! ```

use pdgc_bench::batch::compare_jobs_checked;
use pdgc_bench::{print_table, write_metrics};
use pdgc_core::{CheckMode, PreferenceAllocator};
use pdgc_target::TargetRegistry;
use pdgc_workloads::{generate, specjvm_suite, Workload};

fn parse_str_flag(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    parse_str_flag(args, name).and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = parse_flag(&args, "--jobs")
        .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
        .unwrap_or(1);
    let repeat = parse_flag(&args, "--repeat").unwrap_or(1).max(1);
    let check = if args.iter().any(|a| a == "--check") {
        CheckMode::Always
    } else {
        parse_str_flag(&args, "--check")
            .map(|v| CheckMode::parse(&v).expect("bad --check mode (off, debug, always)"))
            .unwrap_or(CheckMode::Off)
    };
    let min_speedup: Option<f64> =
        parse_str_flag(&args, "--min-speedup").map(|v| v.parse().expect("bad --min-speedup"));
    let target_name = parse_str_flag(&args, "--target").unwrap_or_else(|| "ia64-24".to_string());
    let registry = TargetRegistry::builtin();
    let target = match registry.resolve(&target_name) {
        Ok(t) => t.clone(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let workloads: Vec<Workload> = specjvm_suite()
        .iter()
        .map(|p| generate(&p.for_target(&target)))
        .collect();
    let total_funcs: usize = workloads.iter().map(|w| w.funcs.len()).sum();
    let alloc = PreferenceAllocator::full();
    println!(
        "batch bench: {total_funcs} functions x {repeat} repeat(s), target {}, jobs 1 vs {jobs}",
        target.name
    );

    let cmp = compare_jobs_checked(&alloc, &workloads, &target, jobs, repeat, check);
    if check.should_check() {
        println!("symbolic check: every allocation of both runs proven ({check} mode)");
    }

    let rows = [&cmp.serial, &cmp.parallel]
        .iter()
        .map(|r| {
            vec![
                format!("jobs={}", r.jobs),
                format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
                format!("{:.1}", r.funcs_per_sec()),
                format!(
                    "{:.2}x",
                    r.funcs_per_sec() / cmp.serial.funcs_per_sec().max(1e-9)
                ),
            ]
        })
        .collect::<Vec<_>>();
    print_table(&["run", "elapsed-ms", "funcs/sec", "speedup"], &rows);
    println!(
        "allocations identical across job counts: {}",
        if cmp.identical() { "yes" } else { "NO — DIVERGENCE" }
    );

    let path = cmp.write_json().expect("write bench_batch.json");
    println!("wrote {}", path.display());

    // The always-on metrics merge commutatively at the slot-keyed join,
    // so the deterministic sections (counters + scorecard histograms)
    // must be bit-identical across job counts — gate on it like the
    // allocation fingerprints above.
    let metrics_deterministic = cmp.serial.metrics.deterministic_eq(&cmp.parallel.metrics);
    println!(
        "metrics identical across job counts: {}",
        if metrics_deterministic {
            "yes"
        } else {
            "NO — DIVERGENCE"
        }
    );
    let mpath = write_metrics("bench_batch", cmp.serial.allocator, &target.name, &cmp.serial.metrics)
        .expect("write metrics.json");
    println!("wrote {}", mpath.display());

    if !cmp.identical() {
        eprintln!("error: parallel allocation diverged from serial");
        std::process::exit(1);
    }
    if !metrics_deterministic {
        eprintln!("error: parallel metrics diverged from serial");
        std::process::exit(1);
    }
    if let Some(min) = min_speedup {
        let got = cmp.speedup();
        if got < min {
            eprintln!(
                "error: jobs={jobs} speedup {got:.2}x is below the required {min:.2}x"
            );
            std::process::exit(1);
        }
        println!("speedup gate: {got:.2}x >= {min:.2}x");
    }
}
