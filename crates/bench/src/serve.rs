//! `pdgc serve` — a long-running allocation daemon with a
//! content-addressed cache.
//!
//! The daemon reads **JSONL requests** (one JSON object per line) from
//! stdin or a Unix socket and writes one JSONL response per request:
//!
//! ```text
//! {"fn": "<IR text>", "target": "ia64-24", "allocator": "full", "check": "always"}
//! {"ok":true,"key":"…","cached":false,"checked":true,"fingerprint":"…","stats":{…},"mach":"…"}
//! ```
//!
//! `target`, `allocator`, and `check` are optional and default to the
//! session's configuration; `{"op":"shutdown"}` stops a streaming or
//! socket session. Malformed JSON (including input nested beyond
//! [`pdgc_obs::json::MAX_DEPTH`]), unparseable IR, and unknown names all
//! produce an `{"ok":false,"error":…}` response — never a crash and never
//! a dropped line.
//!
//! # The cache key
//!
//! Responses are cached **content-addressed**: the key is the tuple
//! (canonical printed IR, target name, allocator name, check mode),
//! where "canonical" means [`Function::with_canonical_callees`] — callee
//! interning order is an artifact of how a function was built, not of
//! what it computes, so two textual spellings of the same function hash
//! to the same entry (PR 8's `print → parse → print` fixpoint makes this
//! well-defined). A *miss* allocates through the pooled
//! [`RegisterAllocator::allocate_scratch`] path and is proven by the
//! symbolic checker ([`CheckMode::Always`]) **before** insertion,
//! whatever the request asked for; a *hit* returns the stored response
//! and is re-proven at a configurable sampling rate. Hit, miss,
//! insertion, eviction, and re-check counts ride the always-on metrics
//! registry next to the allocator's own scorecard.
//!
//! # Determinism under `--jobs N`
//!
//! Batch-mode sessions (stdin read to EOF) allocate distinct misses
//! concurrently on the batch driver's worker-pool idiom (atomic task
//! cursor, slot-keyed merge). Requests are keyed and deduplicated
//! *serially* before the pool runs and responses are emitted in request
//! order afterwards, so the full response stream — including each
//! request's `cached` flag — is bit-identical at every job count.

use crate::{fingerprint_mach, stats_json};
use pdgc_core::pipeline::check_output_metered;
use pdgc_core::{
    AllocOutput, CheckMode, CheckScope, PhaseScratch, PreferenceAllocator, RegisterAllocator,
};
use pdgc_ir::{parse_function, parse_functions, Function};
use pdgc_obs::json::{Json, JsonObject};
use pdgc_obs::{Counter, MetricsRegistry, NoopTracer};
use pdgc_target::{TargetDesc, TargetRegistry};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves an allocator by its CLI name, `Sync` so serve workers can
/// share it. Covers every allocator of the paper's evaluation.
pub fn allocator_by_name(name: &str) -> Option<Box<dyn RegisterAllocator + Sync>> {
    use pdgc_core::baselines::*;
    Some(match name {
        "full" => Box::new(PreferenceAllocator::full()),
        "coalesce" => Box::new(PreferenceAllocator::coalescing_only()),
        "precoalesce" => Box::new(PreferenceAllocator::full().with_precoalesce()),
        "chaitin" => Box::new(ChaitinAllocator),
        "briggs" => Box::new(BriggsAllocator),
        "iterated" => Box::new(IteratedAllocator),
        "optimistic" => Box::new(OptimisticAllocator),
        "callcost" => Box::new(CallCostAllocator),
        "priority" => Box::new(PriorityAllocator),
        _ => return None,
    })
}

/// The exact content-addressed cache key for one request: canonical
/// printed IR plus every allocation-relevant request parameter, joined
/// with a separator no component can contain. Two requests collide iff
/// they demand byte-identical machine code.
pub fn cache_key(func: &Function, target: &str, allocator: &str, check: CheckMode) -> String {
    // `with_canonical_callees` renumbers callees into appearance order —
    // the form `parse(print(f))` produces — so builder-order artifacts
    // never split the cache.
    format!(
        "{target}\u{1f}{allocator}\u{1f}{check}\u{1f}{}",
        func.with_canonical_callees()
    )
}

/// FNV-1a 64 of a cache key, the compact form responses carry.
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Session configuration, normally filled from `pdgc serve` flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Default target for requests that omit `"target"`.
    pub target: String,
    /// Default allocator for requests that omit `"allocator"`.
    pub allocator: String,
    /// Default check mode for requests that omit `"check"`. This is a
    /// *key component* only: misses always run [`CheckMode::Always`]
    /// before insertion regardless.
    pub check: CheckMode,
    /// Maximum cache entries; 0 means unbounded. Insertion beyond the
    /// cap evicts the least-recently-used entry.
    pub cache_cap: usize,
    /// Re-prove every Nth cache hit with the symbolic checker; 0 never
    /// re-checks.
    pub sample_rate: u64,
    /// Worker threads for batch-mode (read-to-EOF) sessions.
    pub jobs: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            target: "ia64-24".into(),
            allocator: "full".into(),
            check: CheckMode::Always,
            cache_cap: 1024,
            sample_rate: 16,
            jobs: 1,
        }
    }
}

/// One cached allocation: the full output (kept so sampled hit re-checks
/// can re-prove it), its rendered response pieces, and an LRU stamp.
#[derive(Debug)]
struct CacheEntry {
    out: AllocOutput,
    target: TargetDesc,
    mach_text: String,
    stats: String,
    fingerprint: u64,
    last_used: u64,
}

/// A parsed, validated allocation request, ready to key and run.
struct Request {
    func: Function,
    alloc: Box<dyn RegisterAllocator + Sync>,
    target: TargetDesc,
    key: String,
}

/// What one input line asked for.
enum Parsed {
    Alloc(Request),
    Shutdown,
}

/// The outcome of one streamed line.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The JSONL response to write back.
    pub response: String,
    /// Whether the line asked the session to stop.
    pub shutdown: bool,
}

/// A serve session: the cache, its counters, and the serial scratch.
pub struct ServeSession {
    config: ServeConfig,
    cache: HashMap<String, CacheEntry>,
    /// Monotonic request stamp driving LRU eviction.
    tick: u64,
    /// Total hits, driving the sampled re-check cadence.
    hits: u64,
    metrics: MetricsRegistry,
    scratch: PhaseScratch,
}

fn error_response(msg: &str) -> String {
    JsonObject::new().bool("ok", false).str("error", msg).finish()
}

impl ServeSession {
    /// Creates an empty session.
    pub fn new(config: ServeConfig) -> Self {
        ServeSession {
            config,
            cache: HashMap::new(),
            tick: 0,
            hits: 0,
            metrics: MetricsRegistry::default(),
            scratch: PhaseScratch::new(),
        }
    }

    /// The session's accumulated metrics: serve/cache counters plus every
    /// allocation's scorecard and latency histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cached entries currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn parse_line(&self, line: &str) -> Result<Parsed, String> {
        let json = Json::parse(line)?;
        if json["op"].as_str() == Some("shutdown") {
            return Ok(Parsed::Shutdown);
        }
        let ir = json["fn"]
            .as_str()
            .ok_or("request missing string field `fn`")?;
        let target_name = json["target"].as_str().unwrap_or(&self.config.target);
        let alloc_name = json["allocator"].as_str().unwrap_or(&self.config.allocator);
        let check = match json["check"].as_str() {
            None => self.config.check,
            Some(m) => CheckMode::parse(m)
                .ok_or_else(|| format!("bad check mode `{m}` (off, debug, always)"))?,
        };
        let func = parse_function(ir).map_err(|e| format!("parsing `fn`: {e}"))?;
        func.verify().map_err(|e| format!("verifying `fn`: {e}"))?;
        let alloc = allocator_by_name(alloc_name)
            .ok_or_else(|| format!("unknown allocator `{alloc_name}`"))?;
        let target = TargetRegistry::builtin()
            .resolve(target_name)
            .cloned()
            .map_err(|e| e.to_string())?;
        let key = cache_key(&func, target_name, alloc_name, check);
        Ok(Parsed::Alloc(Request {
            func,
            alloc,
            target,
            key,
        }))
    }

    /// Renders the success response for a cache entry.
    fn hit_or_insert_response(key: &str, cached: bool, checked: bool, e: &CacheEntry) -> String {
        JsonObject::new()
            .bool("ok", true)
            .str("key", &format!("{:016x}", key_hash(key)))
            .bool("cached", cached)
            .bool("checked", checked)
            .str("fingerprint", &format!("{:016x}", e.fingerprint))
            .raw("stats", &e.stats)
            .str("mach", &e.mach_text)
            .finish()
    }

    /// Serves `key` from the cache, re-proving the entry when the
    /// sampling cadence says so. Returns `None` on a miss.
    fn try_hit(&mut self, key: &str) -> Option<String> {
        if !self.cache.contains_key(key) {
            return None;
        }
        self.metrics.bump(Counter::CacheHits);
        self.hits += 1;
        let rate = self.config.sample_rate;
        let recheck = rate > 0 && self.hits % rate == 0;
        if recheck {
            self.metrics.bump(Counter::CacheHitChecks);
            let entry = self.cache.get(key).expect("checked above");
            let verdict = check_output_metered(
                &entry.out,
                &entry.target,
                &mut NoopTracer,
                CheckMode::Always,
                CheckScope::Full,
                &mut self.scratch,
            );
            self.scratch.metrics.drain_into(&mut self.metrics);
            if let Err(e) = verdict {
                // A cached allocation failing re-validation means the
                // entry (or the checker) is corrupt; drop it and report.
                let dead = self.cache.remove(key).expect("checked above");
                dead.out.recycle(&mut self.scratch);
                self.metrics.bump(Counter::ServeErrors);
                return Some(error_response(&format!(
                    "cached allocation failed re-validation (entry dropped): {e}"
                )));
            }
        }
        let tick = self.tick;
        let entry = self.cache.get_mut(key).expect("checked above");
        entry.last_used = tick;
        Some(Self::hit_or_insert_response(key, true, recheck, entry))
    }

    /// Inserts a freshly proven allocation, evicting the least-recently-
    /// used entry when the cache is at capacity.
    fn insert(&mut self, key: String, out: AllocOutput, target: TargetDesc) -> String {
        if self.config.cache_cap > 0 && self.cache.len() >= self.config.cache_cap {
            if let Some(victim) = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                let dead = self.cache.remove(&victim).expect("key from iteration");
                dead.out.recycle(&mut self.scratch);
                self.metrics.bump(Counter::CacheEvictions);
            }
        }
        let entry = CacheEntry {
            mach_text: out.mach.to_string(),
            stats: stats_json(&out.stats),
            fingerprint: fingerprint_mach(&out.mach),
            last_used: self.tick,
            out,
            target,
        };
        let response = Self::hit_or_insert_response(&key, false, true, &entry);
        self.cache.insert(key, entry);
        self.metrics.bump(Counter::CacheInsertions);
        response
    }

    /// Handles one streamed request line serially.
    pub fn handle_line(&mut self, line: &str) -> ServeOutcome {
        self.tick += 1;
        self.metrics.bump(Counter::ServeRequests);
        let req = match self.parse_line(line) {
            Ok(Parsed::Shutdown) => {
                return ServeOutcome {
                    response: JsonObject::new()
                        .bool("ok", true)
                        .bool("shutdown", true)
                        .finish(),
                    shutdown: true,
                }
            }
            Ok(Parsed::Alloc(req)) => req,
            Err(e) => {
                self.metrics.bump(Counter::ServeErrors);
                return ServeOutcome {
                    response: error_response(&e),
                    shutdown: false,
                };
            }
        };
        if let Some(response) = self.try_hit(&req.key) {
            return ServeOutcome {
                response,
                shutdown: false,
            };
        }
        self.metrics.bump(Counter::CacheMisses);
        // Misses are proven before they are cached, whatever the request
        // asked for: nothing unchecked ever enters the cache.
        let out = req.alloc.allocate_scratch(
            &req.func,
            &req.target,
            &mut NoopTracer,
            CheckMode::Always,
            CheckScope::Full,
            &mut self.scratch,
        );
        self.scratch.metrics.drain_into(&mut self.metrics);
        let response = match out {
            Ok(out) => self.insert(req.key, out, req.target),
            Err(e) => {
                self.metrics.bump(Counter::ServeErrors);
                error_response(&e.to_string())
            }
        };
        ServeOutcome {
            response,
            shutdown: false,
        }
    }

    /// Handles a whole batch of request lines, allocating distinct misses
    /// across `config.jobs` workers. Responses come back in request
    /// order and are bit-identical at every job count: keys are computed
    /// and misses deduplicated serially *before* the pool runs, and every
    /// duplicate of a key — however the pool schedules it — is served
    /// from the cache (`"cached":true`).
    pub fn handle_chunk(&mut self, lines: &[String]) -> Vec<String> {
        // Phase 1 (serial): parse and key every line; claim each distinct
        // missing key for the first request that wants it.
        enum Slot {
            Done(String),
            Want(usize), // index into `misses`
        }
        let mut slots: Vec<Option<Slot>> = Vec::with_capacity(lines.len());
        let mut misses: Vec<Request> = Vec::new();
        let mut claimed: HashMap<String, usize> = HashMap::new();
        for line in lines {
            self.tick += 1;
            self.metrics.bump(Counter::ServeRequests);
            match self.parse_line(line) {
                Ok(Parsed::Shutdown) => slots.push(Some(Slot::Done(
                    JsonObject::new()
                        .bool("ok", true)
                        .bool("shutdown", true)
                        .finish(),
                ))),
                Err(e) => {
                    self.metrics.bump(Counter::ServeErrors);
                    slots.push(Some(Slot::Done(error_response(&e))));
                }
                Ok(Parsed::Alloc(req)) => {
                    if self.cache.contains_key(&req.key) || claimed.contains_key(&req.key) {
                        // Resolved against the cache in phase 3, after
                        // the claimed misses have been inserted.
                        slots.push(None);
                    } else {
                        claimed.insert(req.key.clone(), misses.len());
                        slots.push(Some(Slot::Want(misses.len())));
                        misses.push(req);
                    }
                }
            }
        }

        // Phase 2 (parallel): allocate the distinct misses on the batch
        // driver's pool idiom — atomic cursor, one scratch per worker,
        // slot-keyed merge. Metrics are drained per miss and merged in
        // miss order, so totals stay deterministic.
        let jobs = self.config.jobs.max(1).min(misses.len().max(1));
        let mut outs: Vec<Option<(Result<AllocOutput, String>, MetricsRegistry)>> =
            (0..misses.len()).map(|_| None).collect();
        let run_one = |req: &Request, scratch: &mut PhaseScratch| {
            let out = req
                .alloc
                .allocate_scratch(
                    &req.func,
                    &req.target,
                    &mut NoopTracer,
                    CheckMode::Always,
                    CheckScope::Full,
                    scratch,
                )
                .map_err(|e| e.to_string());
            (out, std::mem::take(&mut scratch.metrics))
        };
        if jobs == 1 {
            for (i, req) in misses.iter().enumerate() {
                outs[i] = Some(run_one(req, &mut self.scratch));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<&mut Vec<Option<_>>> = Mutex::new(&mut outs);
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| {
                        let mut scratch = PhaseScratch::new();
                        let mut local: Vec<(usize, _)> = Vec::new();
                        loop {
                            let t = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(req) = misses.get(t) else { break };
                            local.push((t, run_one(req, &mut scratch)));
                        }
                        let mut slots = collected.lock().expect("unpoisoned");
                        for (t, r) in local {
                            debug_assert!(slots[t].is_none(), "miss {t} claimed twice");
                            slots[t] = Some(r);
                        }
                    });
                }
            });
        }

        // Phase 3 (serial): insert misses in claim order, then render
        // every response in request order from the cache.
        let mut miss_responses: Vec<Option<String>> = Vec::with_capacity(misses.len());
        for (req, slot) in misses.into_iter().zip(outs) {
            let (out, m) = slot.expect("miss never allocated");
            self.metrics.merge(&m);
            self.metrics.bump(Counter::CacheMisses);
            miss_responses.push(Some(match out {
                Ok(out) => self.insert(req.key, out, req.target),
                Err(e) => {
                    self.metrics.bump(Counter::ServeErrors);
                    error_response(&e)
                }
            }));
        }
        lines
            .iter()
            .zip(slots)
            .map(|(line, slot)| match slot {
                Some(Slot::Done(r)) => r,
                Some(Slot::Want(i)) => miss_responses[i].take().expect("rendered once"),
                None => match self.parse_line(line) {
                    // Duplicate of an earlier request (or an existing
                    // entry): serve it as the hit it now is.
                    Ok(Parsed::Alloc(req)) => self.try_hit(&req.key).unwrap_or_else(|| {
                        error_response("allocation failed for an identical earlier request")
                    }),
                    _ => unreachable!("phase 1 classified this line as an allocation"),
                },
            })
            .collect()
    }

    /// Runs a session over a reader/writer pair. With `jobs <= 1` the
    /// session streams: each line is answered (and flushed) before the
    /// next is read, until EOF or a shutdown request. With `jobs > 1` the
    /// input is read to EOF and processed as one deterministic chunk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader or writer.
    pub fn run<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> std::io::Result<()> {
        if self.config.jobs <= 1 {
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let outcome = self.handle_line(&line);
                writeln!(writer, "{}", outcome.response)?;
                writer.flush()?;
                if outcome.shutdown {
                    break;
                }
            }
        } else {
            let lines: Vec<String> = reader
                .lines()
                .collect::<std::io::Result<Vec<_>>>()?
                .into_iter()
                .filter(|l| !l.trim().is_empty())
                .collect();
            for response in self.handle_chunk(&lines) {
                writeln!(writer, "{response}")?;
            }
            writer.flush()?;
        }
        Ok(())
    }

    /// Serves connections on a Unix socket at `path`, one at a time,
    /// streaming each connection like [`ServeSession::run`] with
    /// `jobs == 1`. The cache persists across connections. Returns after
    /// a `{"op":"shutdown"}` request; the socket file is removed on the
    /// way out.
    ///
    /// # Errors
    ///
    /// Propagates bind/accept/stream I/O errors.
    #[cfg(unix)]
    pub fn run_socket(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path); // stale socket from a dead daemon
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        let mut shutdown = false;
        while !shutdown {
            let (stream, _) = listener.accept()?;
            let mut writer = stream.try_clone()?;
            let reader = std::io::BufReader::new(stream);
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let outcome = self.handle_line(&line);
                writeln!(writer, "{}", outcome.response)?;
                writer.flush()?;
                if outcome.shutdown {
                    shutdown = true;
                    break;
                }
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

/// Renders every function of a `.pdgc` corpus (as loaded by
/// [`crate::corpus::load_corpus_dir`]) as a JSONL request stream for
/// `pdgc serve` — the self-contained request generator the CI smoke job
/// pipes through the daemon.
///
/// # Errors
///
/// Returns a message naming the file on a parse failure.
pub fn corpus_requests(
    files: &[(String, String)],
    target: &str,
    allocator: &str,
    check: CheckMode,
) -> Result<String, String> {
    let mut out = String::new();
    for (name, text) in files {
        let funcs = parse_functions(text).map_err(|e| format!("{name}: {e}"))?;
        for f in funcs {
            out.push_str(
                &JsonObject::new()
                    .str("fn", &f.to_string())
                    .str("target", target)
                    .str("allocator", allocator)
                    .str("check", &check.to_string())
                    .finish(),
            );
            out.push('\n');
        }
    }
    Ok(out)
}

/// Builds one serve request line for an IR text (helper for tests and
/// request generators).
pub fn request_line(ir: &str, target: &str, allocator: &str, check: CheckMode) -> String {
    JsonObject::new()
        .str("fn", ir)
        .str("target", target)
        .str("allocator", allocator)
        .str("check", &check.to_string())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str =
        "fn sum2(v0: int, v1: int) -> int {\nb0:\n    v2 = add v0, v1\n    ret v2\n}\n";
    const OTHER: &str =
        "fn mul2(v0: int, v1: int) -> int {\nb0:\n    v2 = mul v0, v1\n    ret v2\n}\n";

    fn session(jobs: usize) -> ServeSession {
        ServeSession::new(ServeConfig {
            jobs,
            ..ServeConfig::default()
        })
    }

    fn field<'a>(json: &'a Json, k: &str) -> &'a Json {
        json.get(k).expect("field present")
    }

    #[test]
    fn resubmission_is_a_recorded_hit_with_identical_payload() {
        let mut s = session(1);
        let line = request_line(SMALL, "ia64-24", "full", CheckMode::Always);
        let first = Json::parse(&s.handle_line(&line).response).unwrap();
        let second = Json::parse(&s.handle_line(&line).response).unwrap();
        assert_eq!(field(&first, "ok").as_bool(), Some(true));
        assert_eq!(field(&first, "cached").as_bool(), Some(false));
        assert_eq!(field(&second, "cached").as_bool(), Some(true));
        for k in ["key", "fingerprint", "mach", "stats"] {
            assert_eq!(first.get(k), second.get(k), "`{k}` drifted on the hit");
        }
        assert_eq!(s.metrics().get(Counter::CacheHits), 1);
        assert_eq!(s.metrics().get(Counter::CacheMisses), 1);
        assert_eq!(s.metrics().get(Counter::ServeRequests), 2);
        assert_eq!(s.metrics().get(Counter::CacheInsertions), 1);
    }

    #[test]
    fn malformed_and_hostile_input_is_an_error_response() {
        let mut s = session(1);
        for bad in [
            "not json",
            "{\"target\":\"ia64-24\"}",                       // missing fn
            "{\"fn\":\"fn broken(\"}",                        // IR parse error
            "{\"fn\":\"x\",\"allocator\":\"nope\"}",          // unknown allocator
            "{\"fn\":\"x\",\"target\":\"nope\"}",             // unknown target
            "{\"fn\":\"x\",\"check\":\"nope\"}",              // bad check mode
            &format!("{{\"fn\":{} }}", "[".repeat(100_000)),  // deep nesting
        ] {
            let out = s.handle_line(bad);
            assert!(!out.shutdown);
            let json = Json::parse(&out.response).unwrap();
            assert_eq!(field(&json, "ok").as_bool(), Some(false), "for input {bad:.60}");
            assert!(json.get("error").is_some());
        }
        assert_eq!(s.metrics().get(Counter::ServeErrors), 7);
        assert_eq!(s.metrics().get(Counter::CacheMisses), 0);
    }

    #[test]
    fn shutdown_op_stops_a_streaming_session() {
        let mut s = session(1);
        let input = format!(
            "{}\n{{\"op\":\"shutdown\"}}\n{}\n",
            request_line(SMALL, "ia64-24", "full", CheckMode::Always),
            request_line(OTHER, "ia64-24", "full", CheckMode::Always),
        );
        let mut out = Vec::new();
        s.run(input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        // The request after shutdown was never processed.
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"shutdown\":true"));
        assert_eq!(s.metrics().get(Counter::ServeRequests), 2);
    }

    #[test]
    fn lru_eviction_honors_the_cap_and_counts() {
        let mut s = ServeSession::new(ServeConfig {
            cache_cap: 1,
            ..ServeConfig::default()
        });
        let a = request_line(SMALL, "ia64-24", "full", CheckMode::Always);
        let b = request_line(OTHER, "ia64-24", "full", CheckMode::Always);
        s.handle_line(&a);
        s.handle_line(&b); // evicts a
        assert_eq!(s.cache_len(), 1);
        assert_eq!(s.metrics().get(Counter::CacheEvictions), 1);
        let again = Json::parse(&s.handle_line(&a).response).unwrap();
        // a was evicted, so this is a miss again.
        assert_eq!(field(&again, "cached").as_bool(), Some(false));
        assert_eq!(s.metrics().get(Counter::CacheMisses), 3);
    }

    #[test]
    fn sampled_hit_rechecks_are_counted() {
        let mut s = ServeSession::new(ServeConfig {
            sample_rate: 2,
            ..ServeConfig::default()
        });
        let line = request_line(SMALL, "ia64-24", "full", CheckMode::Always);
        s.handle_line(&line); // miss
        let h1 = Json::parse(&s.handle_line(&line).response).unwrap(); // hit 1: not sampled
        let h2 = Json::parse(&s.handle_line(&line).response).unwrap(); // hit 2: sampled
        assert_eq!(field(&h1, "checked").as_bool(), Some(false));
        assert_eq!(field(&h2, "checked").as_bool(), Some(true));
        assert_eq!(s.metrics().get(Counter::CacheHitChecks), 1);
    }

    #[test]
    fn chunk_responses_are_identical_at_every_job_count() {
        let reqs: Vec<String> = vec![
            request_line(SMALL, "ia64-24", "full", CheckMode::Always),
            request_line(OTHER, "ia64-24", "chaitin", CheckMode::Always),
            request_line(SMALL, "ia64-24", "full", CheckMode::Always), // dup of [0]
            "garbage".to_string(),
            request_line(SMALL, "x86-24", "full", CheckMode::Always),
        ];
        let serial = session(1).handle_chunk(&reqs);
        let parallel = session(4).handle_chunk(&reqs);
        assert_eq!(serial, parallel, "chunk responses diverged across job counts");
        // The duplicate is a hit even within one chunk.
        let dup = Json::parse(&serial[2]).unwrap();
        assert_eq!(field(&dup, "cached").as_bool(), Some(true));
        let first = Json::parse(&serial[0]).unwrap();
        assert_eq!(field(&first, "cached").as_bool(), Some(false));
        assert_eq!(first.get("fingerprint"), dup.get("fingerprint"));
        // Metrics (counters) agree too.
        let m1 = session(1);
        let m4 = session(4);
        let (mut m1, mut m4) = (m1, m4);
        m1.handle_chunk(&reqs);
        m4.handle_chunk(&reqs);
        assert!(m1.metrics().deterministic_eq(m4.metrics()));
    }

    #[test]
    fn builder_callee_order_does_not_split_the_key() {
        use pdgc_ir::{FunctionBuilder, RegClass};
        // Intern callees out of appearance order: h first, then g, while
        // the body calls g first.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let h = b.intern_callee("h");
        let g = b.intern_callee("g");
        let _ = h;
        let _ = g;
        b.call("g", vec![], None);
        b.call("h", vec![], None);
        b.ret(None);
        let f = b.finish();
        let reparsed = parse_function(&f.to_string()).unwrap();
        assert_eq!(
            cache_key(&f, "ia64-24", "full", CheckMode::Always),
            cache_key(&reparsed, "ia64-24", "full", CheckMode::Always),
        );
    }

    #[test]
    fn corpus_requests_render_one_line_per_function() {
        let files = vec![("two.pdgc".to_string(), format!("{SMALL}\n{OTHER}"))];
        let text = corpus_requests(&files, "ia64-24", "full", CheckMode::Always).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let mut s = session(1);
        for line in &lines {
            let r = Json::parse(&s.handle_line(line).response).unwrap();
            assert_eq!(field(&r, "ok").as_bool(), Some(true), "{line}");
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_sessions_share_the_cache() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;
        let dir = std::env::temp_dir().join(format!("pdgc-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let path2 = path.clone();
        let server = std::thread::spawn(move || {
            let mut s = session(1);
            s.run_socket(&path2).unwrap();
            s.metrics().get(Counter::CacheHits)
        });
        // Wait for the socket to appear.
        for _ in 0..200 {
            if path.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let request = request_line(SMALL, "ia64-24", "full", CheckMode::Always);
        let ask = |line: &str| {
            let mut stream = UnixStream::connect(&path).unwrap();
            writeln!(stream, "{line}").unwrap();
            stream.flush().unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response
        };
        let first = Json::parse(&ask(&request)).unwrap();
        let second = Json::parse(&ask(&request)).unwrap(); // new connection, same cache
        assert_eq!(first["cached"].as_bool(), Some(false));
        assert_eq!(second["cached"].as_bool(), Some(true));
        assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
        ask("{\"op\":\"shutdown\"}");
        let hits = server.join().unwrap();
        assert_eq!(hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
