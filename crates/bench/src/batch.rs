//! The parallel batch-allocation driver.
//!
//! [`run_batch`] allocates every function of a set of workloads across a
//! hand-rolled [`std::thread::scope`] worker pool: functions form one
//! global task list, workers claim tasks through an atomic cursor, and
//! each function is allocated independently (the allocator takes `&self`
//! and every pipeline run owns its graphs), so results are **bit-identical
//! at every job count** — per-function outputs are written into a slot
//! vector keyed by task index (the *only* ordering authority; nothing is
//! sorted after the fact), and nothing about a function's allocation
//! depends on which worker ran it or when.
//!
//! # Per-worker scratch
//!
//! Each worker owns one [`PhaseScratch`] for its whole lifetime and every
//! allocation on that worker runs through
//! [`RegisterAllocator::allocate_scratch`], so the arena-backed pools
//! (liveness bitsets, IFG adjacency, worklists, select caches, checker
//! state) are allocated once per worker and reset between functions
//! instead of hitting the global allocator per function — that allocator
//! contention is what made `--jobs 2` *slower* than serial before.
//! Because `allocate_scratch` reuses capacity but never state, results
//! stay bit-identical to the unpooled path.
//!
//! Under batch, the symbolic checker runs in [`CheckScope::Rewritten`]:
//! structural correspondence, calling-convention, pair, and frame rules
//! are still proven for every instruction, while the expensive converged
//! value replay is restricted to blocks the rewriter actually changed.
//! Single-function entry points keep the full-replay default.
//!
//! # Tracer thread-safety contract
//!
//! [`Tracer`]s are `&mut`-based single-threaded sinks and are **never
//! shared across workers**: the driver builds one sink per *function*
//! (a [`PhaseTimes`] accumulator, plus whatever [`run_batch_traced`]'s
//! factory returns) on the worker that allocates it, and hands the
//! collected sinks back to the caller after the pool joins. Aggregation
//! (e.g. [`PhaseTimes::merge`]) happens on the calling thread only.

use crate::fingerprint_mach;
use pdgc_core::{AllocStats, CheckMode, CheckScope, PhaseScratch, RegisterAllocator};
use pdgc_obs::{Event, MetricsRegistry, PhaseTimes, Tracer};
use pdgc_target::TargetDesc;
use pdgc_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The allocation of one function within a batch.
#[derive(Clone, Debug)]
pub struct BatchFuncResult {
    /// Position in the flattened task list (stable across job counts).
    pub index: usize,
    /// The workload the function came from.
    pub workload: String,
    /// Function name.
    pub func: String,
    /// Allocation statistics.
    pub stats: AllocStats,
    /// FNV-1a hash of the rewritten machine function's printed form: two
    /// batch runs produced identical rewrite output iff these match.
    pub fingerprint: u64,
    /// Allocator wall-clock per pipeline phase for this function.
    pub phases: PhaseTimes,
    /// Always-on metrics drained from the worker's scratch after this
    /// function (counters, scorecard, and latency histograms).
    pub metrics: MetricsRegistry,
}

/// The outcome of one batch run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Allocator name.
    pub allocator: &'static str,
    /// Target name.
    pub target: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Wall-clock of the whole allocation pool (task claim to join).
    pub elapsed: Duration,
    /// Per-function results, in task order.
    pub funcs: Vec<BatchFuncResult>,
    /// Statistics summed over all functions.
    pub stats: AllocStats,
    /// Phase times summed over all functions (CPU time, so with `jobs > 1`
    /// this exceeds `elapsed`).
    pub phases: PhaseTimes,
    /// Metrics merged over all functions **in task order** at the
    /// slot-keyed join, so the deterministic sections (counters and
    /// scorecard histograms) are bit-identical at every job count.
    pub metrics: MetricsRegistry,
}

impl BatchResult {
    /// Functions allocated per wall-clock second.
    pub fn funcs_per_sec(&self) -> f64 {
        self.funcs.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether two runs produced bit-identical allocations: same functions
    /// in the same order with equal statistics and rewrite fingerprints.
    pub fn same_allocations(&self, other: &BatchResult) -> bool {
        self.funcs.len() == other.funcs.len()
            && self
                .funcs
                .iter()
                .zip(&other.funcs)
                .all(|(a, b)| a.stats == b.stats && a.fingerprint == b.fingerprint)
    }
}

/// Forwards events to both children; the per-function [`PhaseTimes`] and a
/// caller-supplied sink observe one allocation without sharing anything
/// across threads.
struct PairTracer<'a>(&'a mut dyn Tracer, &'a mut dyn Tracer);

impl Tracer for PairTracer<'_> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }
    fn wants_graphs(&self) -> bool {
        self.0.wants_graphs() || self.1.wants_graphs()
    }
    fn record(&mut self, event: &Event) {
        self.0.record(event);
        self.1.record(event);
    }
}

/// Allocates every function of `workloads` with `alloc` across `jobs`
/// worker threads. `jobs` is clamped to at least 1; `jobs == 1` runs on
/// the calling thread with no pool.
///
/// # Panics
///
/// Panics if any allocation fails (the shipped workloads all allocate) or
/// a worker thread panics.
pub fn run_batch(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
) -> BatchResult {
    run_batch_checked(alloc, workloads, target, jobs, CheckMode::Off)
}

/// [`run_batch`] with the symbolic checker ([`pdgc_core::CheckMode`]) run
/// on every allocation. A checker violation panics with the full violation
/// list, like any other allocation failure.
///
/// # Panics
///
/// Same as [`run_batch`], plus checker violations under `check`.
pub fn run_batch_checked(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    check: CheckMode,
) -> BatchResult {
    run_batch_traced_checked(alloc, workloads, target, jobs, |_| pdgc_obs::NoopTracer, check).0
}

/// [`run_batch`] with a caller-supplied per-function trace sink: `make(i)`
/// builds the sink for task `i` (on the worker thread that claims it), and
/// the sinks are returned in task order after the pool joins. Use this to
/// attach a `RecordingTracer` or `JsonLinesSink` per function without any
/// cross-thread sharing.
///
/// # Panics
///
/// Same as [`run_batch`].
pub fn run_batch_traced<T, F>(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    make: F,
) -> (BatchResult, Vec<T>)
where
    T: Tracer + Send,
    F: Fn(usize) -> T + Sync,
{
    run_batch_traced_checked(alloc, workloads, target, jobs, make, CheckMode::Off)
}

/// [`run_batch_traced`] with the symbolic checker run on every allocation.
/// Checker failures are recorded as [`Event::CheckFailed`] in the
/// function's sink before the driver panics.
///
/// # Panics
///
/// Same as [`run_batch`], plus checker violations under `check`.
pub fn run_batch_traced_checked<T, F>(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    make: F,
    check: CheckMode,
) -> (BatchResult, Vec<T>)
where
    T: Tracer + Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1);
    let tasks: Vec<(usize, &Workload, &pdgc_ir::Function)> = workloads
        .iter()
        .flat_map(|w| w.funcs.iter().map(move |f| (w, f)))
        .enumerate()
        .map(|(i, (w, f))| (i, w, f))
        .collect();

    let cursor = AtomicUsize::new(0);
    // Slot per task, keyed by task index. Workers fill their claimed slots;
    // the index *is* the order — no sort happens after the pool joins, so
    // any claim/merge bug surfaces as an unfilled slot, not a reordering.
    let collected: Mutex<Vec<Option<(BatchFuncResult, T)>>> =
        Mutex::new((0..tasks.len()).map(|_| None).collect());

    let run_one =
        |i: usize, workload: &Workload, func: &pdgc_ir::Function, scratch: &mut PhaseScratch| {
            let mut phases = PhaseTimes::default();
            let mut sink = make(i);
            let out = {
                let mut pair = PairTracer(&mut phases, &mut sink);
                alloc
                    .allocate_scratch(
                        func,
                        target,
                        &mut pair,
                        check,
                        CheckScope::Rewritten,
                        scratch,
                    )
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", alloc.name(), func.name))
            };
            let fingerprint = fingerprint_mach(&out.mach);
            let stats = out.stats.clone();
            // The result is consumed here (stats + fingerprint); hand its
            // buffers back so the next function on this worker reuses them.
            out.recycle(scratch);
            (
                BatchFuncResult {
                    index: i,
                    workload: workload.name.clone(),
                    func: func.name.clone(),
                    stats,
                    fingerprint,
                    phases,
                    // Drain the always-on registry so each function's
                    // metrics travel with its slot; the worker's scratch
                    // starts the next function empty.
                    metrics: std::mem::take(&mut scratch.metrics),
                },
                sink,
            )
        };
    let place = |slots: &mut Vec<Option<(BatchFuncResult, T)>>,
                 pair: (BatchFuncResult, T)| {
        let slot = pair.0.index;
        debug_assert!(slots[slot].is_none(), "task {slot} claimed twice");
        slots[slot] = Some(pair);
    };

    let start = Instant::now();
    if jobs == 1 {
        let mut scratch = PhaseScratch::new();
        let mut slots = collected.lock().expect("unpoisoned");
        for &(i, w, f) in &tasks {
            let pair = run_one(i, w, f, &mut scratch);
            place(&mut slots, pair);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    // One scratch per worker, warm after the first function.
                    let mut scratch = PhaseScratch::new();
                    let mut local: Vec<(BatchFuncResult, T)> = Vec::new();
                    loop {
                        let t = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(i, w, f)) = tasks.get(t) else { break };
                        local.push(run_one(i, w, f, &mut scratch));
                    }
                    let mut slots = collected.lock().expect("unpoisoned");
                    for pair in local {
                        place(&mut slots, pair);
                    }
                });
            }
        });
    }
    let elapsed = start.elapsed();

    let slots = collected.into_inner().expect("unpoisoned");
    let mut stats = AllocStats::default();
    let mut phases = PhaseTimes::default();
    let mut metrics = MetricsRegistry::default();
    let mut funcs = Vec::with_capacity(slots.len());
    let mut sinks = Vec::with_capacity(slots.len());
    for (i, pair) in slots.into_iter().enumerate() {
        let (r, s) = pair.unwrap_or_else(|| panic!("task {i} was never claimed"));
        debug_assert_eq!(r.index, i);
        stats.accumulate(&r.stats);
        phases.merge(&r.phases);
        metrics.merge(&r.metrics);
        funcs.push(r);
        sinks.push(s);
    }
    (
        BatchResult {
            allocator: alloc.name(),
            target: target.name.clone(),
            jobs,
            elapsed,
            funcs,
            stats,
            phases,
            metrics,
        },
        sinks,
    )
}

/// A serial run and a parallel run of the same batch, for throughput
/// reporting and determinism gating.
#[derive(Debug)]
pub struct BatchComparison {
    /// The `jobs == 1` run.
    pub serial: BatchResult,
    /// The `jobs == N` run.
    pub parallel: BatchResult,
    /// Wall-clock repeats each run is the best of.
    pub repeat: usize,
    /// Wall-clock of every serial repeat, in run order (the kept run is
    /// the minimum). Lets `pdgc report` compute run-to-run variance
    /// instead of seeing only the best-of point.
    pub serial_repeats: Vec<Duration>,
    /// Wall-clock of every parallel repeat, in run order.
    pub parallel_repeats: Vec<Duration>,
}

impl BatchComparison {
    /// Whether the parallel run reproduced the serial allocations exactly.
    pub fn identical(&self) -> bool {
        self.serial.same_allocations(&self.parallel)
    }

    /// Parallel throughput over serial throughput.
    pub fn speedup(&self) -> f64 {
        self.parallel.funcs_per_sec() / self.serial.funcs_per_sec().max(1e-9)
    }

    fn run_json(&self, r: &BatchResult, repeats: &[Duration]) -> String {
        pdgc_obs::json::JsonObject::new()
            .u64("jobs", r.jobs as u64)
            .u64("functions", r.funcs.len() as u64)
            .f64("elapsed_ms", r.elapsed.as_secs_f64() * 1e3)
            .raw(
                "repeats_ms",
                &pdgc_obs::json::array(
                    repeats
                        .iter()
                        .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3)),
                ),
            )
            .f64("functions_per_sec", r.funcs_per_sec())
            .f64(
                "speedup_vs_1_thread",
                r.funcs_per_sec() / self.serial.funcs_per_sec().max(1e-9),
            )
            .raw("phases_ms", &r.phases.json_millis())
            .finish()
    }

    /// The comparison as the `results/bench_batch.json` object.
    pub fn json(&self) -> String {
        pdgc_obs::json::JsonObject::new()
            .str("figure", "bench_batch")
            .str("allocator", self.serial.allocator)
            .str("target", &self.serial.target)
            .u64("functions", self.serial.funcs.len() as u64)
            .u64("repeat", self.repeat as u64)
            .bool("identical", self.identical())
            .f64("speedup", self.speedup())
            .raw("serial", &self.run_json(&self.serial, &self.serial_repeats))
            .raw(
                "parallel",
                &self.run_json(&self.parallel, &self.parallel_repeats),
            )
            .finish()
    }

    /// Writes [`Self::json`] to `results/bench_batch.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join("bench_batch.json");
        std::fs::write(&path, self.json() + "\n")?;
        Ok(path)
    }
}

/// Runs the batch at `jobs == 1` and at `jobs`, `repeat` times each
/// (keeping the best wall clock per job count), and pairs the results.
///
/// # Panics
///
/// Panics if any allocation fails, or if repeats of the *same* job count
/// disagree — that would mean allocation is not a pure function of its
/// input, which the whole driver depends on.
pub fn compare_jobs(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    repeat: usize,
) -> BatchComparison {
    compare_jobs_checked(alloc, workloads, target, jobs, repeat, CheckMode::Off)
}

/// [`compare_jobs`] with the symbolic checker run on every allocation of
/// both the serial and the parallel runs.
///
/// # Panics
///
/// Same as [`compare_jobs`], plus checker violations under `check`.
pub fn compare_jobs_checked(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    repeat: usize,
    check: CheckMode,
) -> BatchComparison {
    let repeat = repeat.max(1);
    let (serial, serial_repeats) = best_of(alloc, workloads, target, 1, repeat, check);
    let (parallel, parallel_repeats) = best_of(alloc, workloads, target, jobs, repeat, check);
    BatchComparison {
        serial,
        parallel,
        repeat,
        serial_repeats,
        parallel_repeats,
    }
}

/// [`compare_jobs_checked`] across several job counts at once: the serial
/// baseline is run **once** (best of `repeat`) and shared by every
/// comparison, instead of being re-measured per jobs value.
///
/// # Panics
///
/// Same as [`compare_jobs`].
pub fn compare_jobs_sweep(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs_list: &[usize],
    repeat: usize,
    check: CheckMode,
) -> Vec<BatchComparison> {
    let repeat = repeat.max(1);
    let (serial, serial_repeats) = best_of(alloc, workloads, target, 1, repeat, check);
    jobs_list
        .iter()
        .map(|&jobs| {
            let (parallel, parallel_repeats) =
                best_of(alloc, workloads, target, jobs, repeat, check);
            BatchComparison {
                serial: serial.clone(),
                parallel,
                repeat,
                serial_repeats: serial_repeats.clone(),
                parallel_repeats,
            }
        })
        .collect()
}

/// Runs the batch `repeat` times at one job count, asserting all repeats
/// produce identical allocations, and keeps the best wall clock. Every
/// repeat's wall-clock is returned alongside (in run order) so callers
/// can report run-to-run variance, not just the kept minimum.
fn best_of(
    alloc: &(dyn RegisterAllocator + Sync),
    workloads: &[Workload],
    target: &TargetDesc,
    jobs: usize,
    repeat: usize,
    check: CheckMode,
) -> (BatchResult, Vec<Duration>) {
    let mut best: Option<BatchResult> = None;
    let mut repeats = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let r = run_batch_checked(alloc, workloads, target, jobs, check);
        repeats.push(r.elapsed);
        match &mut best {
            Some(prev) => {
                assert!(
                    prev.same_allocations(&r),
                    "allocations diverged between repeats at jobs={jobs}"
                );
                if r.elapsed < prev.elapsed {
                    best = Some(r);
                }
            }
            None => best = Some(r),
        }
    }
    (best.expect("repeat >= 1"), repeats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_core::PreferenceAllocator;
    use pdgc_obs::RecordingTracer;
    use pdgc_target::PressureModel;

    fn small_workloads() -> Vec<Workload> {
        let profiles = pdgc_workloads::specjvm_suite();
        let mut w = pdgc_workloads::generate(&profiles[6]); // jack: smallest
        w.funcs.truncate(4);
        vec![w]
    }

    #[test]
    fn batch_matches_across_job_counts() {
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let alloc = PreferenceAllocator::full();
        let workloads = small_workloads();
        let serial = run_batch(&alloc, &workloads, &target, 1);
        let parallel = run_batch(&alloc, &workloads, &target, 3);
        assert_eq!(serial.funcs.len(), 4);
        assert!(serial.same_allocations(&parallel));
        assert_eq!(serial.stats, parallel.stats);
        // Counters and scorecard histograms merge commutatively at the
        // slot-keyed join, so they match bit-for-bit across job counts.
        assert!(serial.metrics.deterministic_eq(&parallel.metrics));
        assert!(!serial.metrics.is_empty());
        assert_eq!(parallel.jobs, 3);
        assert!(serial.funcs_per_sec() > 0.0);
    }

    #[test]
    fn per_function_sinks_observe_their_own_allocation() {
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let alloc = PreferenceAllocator::full();
        let workloads = small_workloads();
        let (result, sinks) = run_batch_traced(&alloc, &workloads, &target, 2, |_| {
            let mut t = RecordingTracer::default();
            t.set_enabled(true);
            t
        });
        assert_eq!(sinks.len(), result.funcs.len());
        for sink in &sinks {
            // Every function's own sink saw its pipeline finish.
            assert!(sink
                .events()
                .iter()
                .any(|e| matches!(e, Event::Finish { .. })));
        }
        // Phase times were accumulated alongside the user sinks.
        assert!(result.phases.total_nanos() > 0);
    }

    #[test]
    fn batch_runs_green_under_the_checker() {
        let target = TargetDesc::ia64_like(PressureModel::High);
        let alloc = PreferenceAllocator::full();
        let workloads = small_workloads();
        let r = run_batch_checked(&alloc, &workloads, &target, 2, CheckMode::Always);
        assert_eq!(r.funcs.len(), 4);
    }

    #[test]
    fn task_order_is_stable_and_indexed() {
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let alloc = PreferenceAllocator::full();
        let workloads = small_workloads();
        let r = run_batch(&alloc, &workloads, &target, 2);
        for (i, f) in r.funcs.iter().enumerate() {
            assert_eq!(f.index, i);
        }
    }
}
