//! The `.pdgc` corpus runner.
//!
//! A corpus is a directory of `*.pdgc` files, each holding one or more
//! functions in the IR's textual form. The runner parses every file,
//! verifies each function, allocates it with each requested allocator
//! (optionally under the symbolic checker), and certifies the text
//! round-trip contract at both levels:
//!
//! * IR: `parse(print(f))` is structurally equal to
//!   `f.with_canonical_callees()` and `print(parse(print(f))) ==
//!   print(f)`;
//! * machine code: `parse_mach_function(print(m)) == m`, same fixpoint.
//!
//! Per-(file, function, allocator) result rows carry the spill/copy/pair
//! counts and a fingerprint of the rewritten code, and can be compared
//! exactly against a committed JSON baseline so any allocation drift
//! shows up as a named regression.

use crate::fingerprint_mach;
use pdgc_core::{CheckMode, CheckScope, PhaseScratch, RegisterAllocator};
use pdgc_ir::{parse_function, parse_functions, Function};
use pdgc_obs::json::{array, Json, JsonObject};
use pdgc_obs::{MetricsRegistry, PhaseTimes};
use pdgc_target::{parse_mach_function, TargetDesc};
use std::path::{Path, PathBuf};

/// One (file, function, allocator) allocation result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusRow {
    /// Corpus file name (no directory).
    pub file: String,
    /// Function name.
    pub func: String,
    /// Allocator name.
    pub allocator: String,
    /// Spill instructions inserted.
    pub spills: u64,
    /// Register-to-register copies remaining after coalescing.
    pub copies: u64,
    /// Paired loads formed.
    pub paired: u64,
    /// [`fingerprint_mach`] of the rewritten code, in hex.
    pub fingerprint: String,
}

impl CorpusRow {
    fn key(&self) -> (&str, &str, &str) {
        (&self.file, &self.func, &self.allocator)
    }
}

/// Everything one corpus run produced.
#[derive(Clone, Default, Debug)]
pub struct CorpusReport {
    /// Number of functions parsed across all files.
    pub funcs: usize,
    /// Per-(file, function, allocator) results, in run order.
    pub rows: Vec<CorpusRow>,
    /// Human-readable failures: parse errors, verifier rejections,
    /// allocation/check errors, round-trip mismatches.
    pub failures: Vec<String>,
}

/// Loads every `*.pdgc` file under `dir`, sorted by name for
/// deterministic run order. Returns `(file_name, contents)` pairs.
///
/// # Errors
///
/// Propagates filesystem errors; an empty or missing directory is an
/// error too (an empty corpus run would vacuously "pass").
pub fn load_corpus_dir(dir: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "pdgc"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no .pdgc files in {}", dir.display()),
        ));
    }
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            std::fs::read_to_string(&p).map(|text| (name, text))
        })
        .collect()
}

/// Certifies the IR-level round-trip contract for one function. Returns
/// a description of the first violation, if any.
pub fn check_ir_roundtrip(f: &Function) -> Result<(), String> {
    let printed = f.to_string();
    let reparsed = parse_function(&printed).map_err(|e| format!("reparse failed: {e}"))?;
    if reparsed != f.with_canonical_callees() {
        return Err("parse(print(f)) != f.with_canonical_callees()".to_string());
    }
    if reparsed.to_string() != printed {
        return Err("print(parse(print(f))) != print(f)".to_string());
    }
    Ok(())
}

/// Certifies the machine-code round-trip contract for one allocated
/// function. Returns a description of the first violation, if any.
pub fn check_mach_roundtrip(m: &pdgc_target::MachFunction) -> Result<(), String> {
    let printed = m.to_string();
    let reparsed = parse_mach_function(&printed).map_err(|e| format!("mach reparse failed: {e}"))?;
    if &reparsed != m {
        return Err("parse(print(m)) != m".to_string());
    }
    if reparsed.to_string() != printed {
        return Err("print(parse(print(m))) != print(m)".to_string());
    }
    Ok(())
}

/// Runs the corpus: parse, verify, round-trip, allocate with every
/// allocator under `check`, round-trip the rewritten code, and fold the
/// allocator's always-on metrics into `metrics`.
///
/// Failures never abort the run — they accumulate in
/// [`CorpusReport::failures`] so one bad function reports once and the
/// rest of the corpus still runs.
pub fn run_corpus(
    files: &[(String, String)],
    allocators: &[Box<dyn RegisterAllocator>],
    target: &TargetDesc,
    check: CheckMode,
    metrics: &mut MetricsRegistry,
) -> CorpusReport {
    let mut report = CorpusReport::default();
    let mut phases = PhaseTimes::default();
    let mut scratch = PhaseScratch::new();
    for (file, text) in files {
        let funcs = match parse_functions(text) {
            Ok(fs) => fs,
            Err(e) => {
                report.failures.push(format!("{file}: {e}"));
                continue;
            }
        };
        for func in &funcs {
            report.funcs += 1;
            let tag = format!("{file}::{}", func.name);
            if let Err(e) = func.verify() {
                report.failures.push(format!("{tag}: {e}"));
                continue;
            }
            if let Err(e) = check_ir_roundtrip(func) {
                report.failures.push(format!("{tag}: ir round-trip: {e}"));
                continue;
            }
            for alloc in allocators {
                let out = match alloc.allocate_scratch(
                    func,
                    target,
                    &mut phases,
                    check,
                    CheckScope::Full,
                    &mut scratch,
                ) {
                    Ok(out) => out,
                    Err(e) => {
                        report
                            .failures
                            .push(format!("{tag} [{}]: {e}", alloc.name()));
                        continue;
                    }
                };
                scratch.metrics.drain_into(metrics);
                if let Err(e) = check_mach_roundtrip(&out.mach) {
                    report
                        .failures
                        .push(format!("{tag} [{}]: mach round-trip: {e}", alloc.name()));
                    continue;
                }
                report.rows.push(CorpusRow {
                    file: file.clone(),
                    func: func.name.clone(),
                    allocator: alloc.name().to_string(),
                    spills: out.stats.spill_instructions as u64,
                    copies: out.stats.copies_remaining as u64,
                    paired: out.stats.paired_loads as u64,
                    fingerprint: format!("{:016x}", fingerprint_mach(&out.mach)),
                });
            }
        }
    }
    report
}

/// Renders rows as the committed baseline JSON:
/// `{"target": ..., "entries": [...]}`.
pub fn baseline_json(target: &str, rows: &[CorpusRow]) -> String {
    let entries = rows.iter().map(|r| {
        JsonObject::new()
            .str("file", &r.file)
            .str("func", &r.func)
            .str("allocator", &r.allocator)
            .u64("spills", r.spills)
            .u64("copies", r.copies)
            .u64("paired", r.paired)
            .str("fingerprint", &r.fingerprint)
            .finish()
    });
    JsonObject::new()
        .str("target", target)
        .raw("entries", &array(entries))
        .finish()
}

/// Parses a baseline produced by [`baseline_json`].
///
/// # Errors
///
/// Returns a message on malformed JSON or a missing field.
pub fn parse_baseline(text: &str) -> Result<(String, Vec<CorpusRow>), String> {
    let json = Json::parse(text)?;
    let target = json
        .get("target")
        .and_then(Json::as_str)
        .ok_or("baseline missing `target`")?
        .to_string();
    let mut rows = Vec::new();
    for e in json
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("baseline missing `entries`")?
    {
        let s = |k: &str| {
            e.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        let n = |k: &str| {
            e.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("baseline entry missing `{k}`"))
        };
        rows.push(CorpusRow {
            file: s("file")?,
            func: s("func")?,
            allocator: s("allocator")?,
            spills: n("spills")?,
            copies: n("copies")?,
            paired: n("paired")?,
            fingerprint: s("fingerprint")?,
        });
    }
    Ok((target, rows))
}

/// Compares a run against a baseline, exactly. Every difference — a
/// changed count or fingerprint, a row missing from either side, or a
/// target mismatch — comes back as one named regression message.
pub fn compare_baseline(
    base_target: &str,
    base_rows: &[CorpusRow],
    run_target: &str,
    run_rows: &[CorpusRow],
) -> Vec<String> {
    let mut regressions = Vec::new();
    if base_target != run_target {
        regressions.push(format!(
            "target mismatch: baseline is {base_target}, run is {run_target}"
        ));
        return regressions;
    }
    for row in run_rows {
        match base_rows.iter().find(|b| b.key() == row.key()) {
            None => regressions.push(format!(
                "{}::{} [{}]: not in baseline (run `--write-baseline` to adopt)",
                row.file, row.func, row.allocator
            )),
            Some(b) if b != row => regressions.push(format!(
                "{}::{} [{}]: spills {}->{}, copies {}->{}, paired {}->{}, fingerprint {}->{}",
                row.file,
                row.func,
                row.allocator,
                b.spills,
                row.spills,
                b.copies,
                row.copies,
                b.paired,
                row.paired,
                b.fingerprint,
                row.fingerprint
            )),
            Some(_) => {}
        }
    }
    for b in base_rows {
        if !run_rows.iter().any(|r| r.key() == b.key()) {
            regressions.push(format!(
                "{}::{} [{}]: in baseline but missing from this run",
                b.file, b.func, b.allocator
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_core::PreferenceAllocator;
    use pdgc_target::PressureModel;

    const SMALL: &str = "fn sum2(v0: int, v1: int) -> int {\nb0:\n    v2 = add v0, v1\n    ret v2\n}\n";

    fn run_small() -> CorpusReport {
        let files = vec![("small.pdgc".to_string(), SMALL.to_string())];
        let allocators: Vec<Box<dyn RegisterAllocator>> =
            vec![Box::new(PreferenceAllocator::full())];
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let mut metrics = MetricsRegistry::default();
        run_corpus(&files, &allocators, &target, CheckMode::Always, &mut metrics)
    }

    #[test]
    fn small_corpus_runs_clean() {
        let report = run_small();
        assert_eq!(report.funcs, 1);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].func, "sum2");
    }

    #[test]
    fn parse_failures_are_reported_not_fatal() {
        let files = vec![
            ("bad.pdgc".to_string(), "fn broken(".to_string()),
            ("good.pdgc".to_string(), SMALL.to_string()),
        ];
        let allocators: Vec<Box<dyn RegisterAllocator>> =
            vec![Box::new(PreferenceAllocator::full())];
        let target = TargetDesc::ia64_like(PressureModel::Middle);
        let mut metrics = MetricsRegistry::default();
        let report = run_corpus(&files, &allocators, &target, CheckMode::Always, &mut metrics);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].starts_with("bad.pdgc"));
        assert_eq!(report.rows.len(), 1);
    }

    #[test]
    fn baseline_roundtrips_and_compares() {
        let report = run_small();
        let json = baseline_json("ia64-24", &report.rows);
        let (target, rows) = parse_baseline(&json).unwrap();
        assert_eq!(target, "ia64-24");
        assert_eq!(rows, report.rows);
        assert!(compare_baseline(&target, &rows, "ia64-24", &report.rows).is_empty());

        // A changed fingerprint is a named regression.
        let mut drifted = report.rows.clone();
        drifted[0].fingerprint = "deadbeefdeadbeef".into();
        let regs = compare_baseline(&target, &rows, "ia64-24", &drifted);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("fingerprint"), "{}", regs[0]);

        // Rows on only one side are regressions too.
        let regs = compare_baseline(&target, &rows, "ia64-24", &[]);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("missing from this run"));
        let regs = compare_baseline(&target, &[], "ia64-24", &report.rows);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("not in baseline"));

        // Target mismatch short-circuits.
        let regs = compare_baseline(&target, &rows, "x86-24", &report.rows);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("target mismatch"));
    }
}
