//! Criterion benches: end-to-end allocation throughput of every allocator
//! on a representative function from each workload profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdgc_core::baselines::{
    BriggsAllocator, CallCostAllocator, ChaitinAllocator, IteratedAllocator, OptimisticAllocator,
};
use pdgc_core::{PreferenceAllocator, RegisterAllocator};
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{generate, specjvm_suite};

fn allocators() -> Vec<Box<dyn RegisterAllocator>> {
    vec![
        Box::new(ChaitinAllocator),
        Box::new(BriggsAllocator),
        Box::new(IteratedAllocator),
        Box::new(OptimisticAllocator),
        Box::new(CallCostAllocator),
        Box::new(PreferenceAllocator::coalescing_only()),
        Box::new(PreferenceAllocator::full()),
    ]
}

fn bench_allocators(c: &mut Criterion) {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let suite = specjvm_suite();
    // One mid-size function per characteristic profile.
    let picks = ["compress", "jess", "mpegaudio"];
    for pick in picks {
        let prof = suite.iter().find(|p| p.name == pick).unwrap();
        let w = generate(prof);
        let func = &w.funcs[0];
        let mut group = c.benchmark_group(format!("allocate/{pick}"));
        for alloc in allocators() {
            group.bench_with_input(
                BenchmarkId::from_parameter(alloc.name()),
                func,
                |b, func| {
                    b.iter(|| alloc.allocate(func, &target).unwrap());
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_allocators
}
criterion_main!(benches);
