//! Criterion benches for the allocator's component phases: interference-
//! graph construction, simplification, RPG construction, and CPG
//! construction — the data structures the paper introduces.

use criterion::{criterion_group, criterion_main, Criterion};
use pdgc_core::build::{build_ifg, collect_copies};
use pdgc_core::cost::CostModel;
use pdgc_core::cpg::Cpg;
use pdgc_core::lower::lower_abi;
use pdgc_core::node::{NodeId, NodeMap};
use pdgc_core::pipeline::analyze;
use pdgc_core::rpg::{build_rpg, PreferenceSet};
use pdgc_core::simplify::{simplify, SimplifyMode};
use pdgc_ir::RegClass;
use pdgc_target::{PressureModel, TargetDesc};
use pdgc_workloads::{generate, specjvm_suite};

fn bench_phases(c: &mut Criterion) {
    let target = TargetDesc::ia64_like(PressureModel::Middle);
    let prof = specjvm_suite()
        .into_iter()
        .find(|p| p.name == "javac")
        .unwrap();
    let w = generate(&prof);
    let lowered = lower_abi(&w.funcs[0], &target).unwrap();
    let analyses = analyze(&lowered.func);
    let nodes = NodeMap::build(&lowered.func, &target, RegClass::Int, &lowered.pinned);
    let k = target.num_regs(RegClass::Int);

    c.bench_function("phase/liveness+analyses", |b| {
        b.iter(|| analyze(&lowered.func))
    });

    c.bench_function("phase/build-ifg", |b| {
        b.iter(|| build_ifg(&lowered.func, &analyses.liveness, &nodes))
    });

    let ifg = build_ifg(&lowered.func, &analyses.liveness, &nodes);
    let costs: Vec<u64> = {
        let cost = CostModel::new(
            &lowered.func,
            &analyses.defuse,
            &analyses.loops,
            &analyses.crossings,
        );
        (0..nodes.num_nodes())
            .map(|i| {
                let n = NodeId::new(i);
                if nodes.is_precolored(n) {
                    u64::MAX
                } else {
                    cost.spill_cost(nodes.members(n)[0])
                }
            })
            .collect()
    };

    c.bench_function("phase/simplify", |b| {
        b.iter(|| {
            let mut g = ifg.clone();
            simplify(&mut g, k, &costs, SimplifyMode::Optimistic)
        })
    });

    c.bench_function("phase/build-rpg", |b| {
        let cost = CostModel::new(
            &lowered.func,
            &analyses.defuse,
            &analyses.loops,
            &analyses.crossings,
        );
        let copies = collect_copies(&lowered.func, &analyses.loops, &nodes);
        b.iter(|| build_rpg(&lowered.func, &nodes, &cost, &copies, PreferenceSet::full(), &target))
    });

    c.bench_function("phase/build-cpg", |b| {
        let mut g = ifg.clone();
        let sr = simplify(&mut g, k, &costs, SimplifyMode::Optimistic);
        g.restore_all();
        b.iter(|| Cpg::build(&g, &sr.stack, &sr.optimistic, k))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_phases
}
criterion_main!(benches);
