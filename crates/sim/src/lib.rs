//! Execution substrate for the `pdgc` toolkit.
//!
//! The paper measured elapsed time of SPECjvm98 on Itanium hardware; this
//! crate is the reproduction's stand-in:
//!
//! * [`run_ir`] — a reference interpreter for virtual-register IR;
//! * [`run_mach`] — an interpreter for allocated machine code, with
//!   faithful calling-convention behaviour (arguments in argument
//!   registers, **calls clobber every volatile register**), so
//!   caller-save/callee-save bugs surface as wrong answers;
//! * [`check_equivalent`] — differential comparison of the two (return
//!   value, call trace, final memory): allocation must be
//!   semantics-preserving;
//! * [`cycles`] — the Appendix-consistent cycle cost model
//!   (load 2, store 1, ALU 1, paired load 2, save/restore 3, …) used to
//!   produce the "elapsed time" of Figures 10 and 11 as
//!   [`run_mach`]-measured dynamic cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
mod interp;
mod minterp;
mod ops;
mod trace;

pub use interp::run_ir;
pub use minterp::run_mach;
pub use trace::{check_equivalent, CallRecord, ExecError, ExecOutcome};

/// Default execution fuel (interpreted instructions) before an
/// [`ExecError::OutOfFuel`] is reported.
pub const DEFAULT_FUEL: u64 = 2_000_000;
