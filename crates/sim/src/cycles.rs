//! The cycle cost model, consistent with the paper's Appendix.
//!
//! Loads cost 2, stores 1, ALU/copies/branches 1; a fused paired load
//! costs one load (its second word is free — `Ideal_Inst_Cost = 0`);
//! spill traffic prices like loads/stores; a caller-side save/restore pair
//! costs `Save_Restore_Cost = 3` (1 + 2); each used non-volatile register
//! costs a prologue store and epilogue load once per invocation.

use pdgc_ir::Inst;
use pdgc_target::MInst;

/// Fixed overhead charged per call instruction (the callee body is
/// abstract and identical across allocators, so any constant preserves
/// relative comparisons).
pub const CALL_CYCLES: u64 = 10;

/// Cycles of one machine instruction.
pub fn minst_cycles(inst: &MInst) -> u64 {
    match inst {
        MInst::Copy { .. } => 1,
        MInst::Iconst { .. } | MInst::Fconst { .. } => 1,
        MInst::Load { .. } | MInst::Load8 { .. } => 2,
        MInst::LoadPair { .. } => 2, // the fusion payoff: 2, not 4
        MInst::Store { .. } => 1,
        MInst::Bin { .. } | MInst::BinImm { .. } => 1,
        MInst::Call { .. } => CALL_CYCLES,
        MInst::SpillLoad { .. } => 2,
        MInst::SpillStore { .. } => 1,
        MInst::Jump { .. } | MInst::Branch { .. } | MInst::BranchImm { .. } => 1,
        MInst::Ret => 1,
    }
}

/// Cycles of one IR instruction (reference executions; used for
/// like-for-like step weighting, not for the figures).
pub fn inst_cycles(inst: &Inst) -> u64 {
    match inst {
        Inst::Copy { .. } => 1,
        Inst::Iconst { .. } | Inst::Fconst { .. } => 1,
        Inst::Load { .. } | Inst::Load8 { .. } => 2,
        Inst::Store { .. } => 1,
        Inst::Bin { .. } | Inst::BinImm { .. } => 1,
        Inst::Call { .. } => CALL_CYCLES,
        Inst::Jump { .. } | Inst::Branch { .. } | Inst::BranchImm { .. } => 1,
        Inst::Ret { .. } => 1,
        Inst::Reload { .. } => 2,
        Inst::Spill { .. } => 1,
    }
}

/// Prologue + epilogue cycles for a function using `n` non-volatile
/// registers: one store (1) and one load (2) each.
pub fn prologue_epilogue_cycles(n: usize) -> u64 {
    3 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_target::PhysReg;

    #[test]
    fn paired_load_halves_load_cost() {
        let single = MInst::Load {
            dst: PhysReg::int(1),
            base: PhysReg::int(0),
            offset: 0,
        };
        let pair = MInst::LoadPair {
            dst1: PhysReg::int(1),
            dst2: PhysReg::int(2),
            base: PhysReg::int(0),
            offset: 0,
            offset2: 8,
        };
        assert_eq!(minst_cycles(&pair), minst_cycles(&single));
        assert_eq!(2 * minst_cycles(&single), 4);
    }

    #[test]
    fn save_restore_costs_three() {
        let save = MInst::SpillStore {
            src: PhysReg::int(1),
            slot: 0,
        };
        let restore = MInst::SpillLoad {
            dst: PhysReg::int(1),
            slot: 0,
        };
        assert_eq!(minst_cycles(&save) + minst_cycles(&restore), 3);
    }

    #[test]
    fn prologue_scales_with_saved_registers() {
        assert_eq!(prologue_epilogue_cycles(0), 0);
        assert_eq!(prologue_epilogue_cycles(4), 12);
    }
}
