//! Execution outcomes and differential comparison.

use std::collections::BTreeMap;
use std::fmt;

/// One observed call: which callee (by name), with which argument bit
/// patterns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CallRecord {
    /// Callee name.
    pub callee: String,
    /// Argument values at the call, in order.
    pub args: Vec<u64>,
}

/// The observable result of executing a function.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecOutcome {
    /// Returned value bits, if the function returns one.
    pub ret: Option<u64>,
    /// Every call, in execution order.
    pub calls: Vec<CallRecord>,
    /// Final memory contents (only addresses ever written).
    pub memory: BTreeMap<i64, u64>,
    /// Instructions executed.
    pub steps: u64,
    /// Simulated cycles (cost-model weighted; includes prologue/epilogue
    /// for machine execution).
    pub cycles: u64,
}

/// Execution failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The fuel budget was exhausted (probable infinite loop).
    OutOfFuel {
        /// The executing function.
        func: String,
    },
    /// Argument count didn't match the signature.
    BadArity {
        /// The executing function.
        func: String,
        /// Arguments expected.
        expected: usize,
        /// Arguments given.
        given: usize,
    },
    /// A virtual register was read before any write (IR interpreter only;
    /// indicates malformed input, not an allocation bug).
    UndefinedRead {
        /// The executing function.
        func: String,
        /// Description of the offending read.
        what: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel { func } => write!(f, "{func}: out of fuel"),
            ExecError::BadArity {
                func,
                expected,
                given,
            } => write!(f, "{func}: expected {expected} arguments, got {given}"),
            ExecError::UndefinedRead { func, what } => {
                write!(f, "{func}: read of undefined {what}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Compares the reference (IR) execution with the allocated (machine)
/// execution. Cycles and step counts are allowed to differ; the return
/// value, the call trace, and the final memory must match.
///
/// # Errors
///
/// Returns a human-readable description of the first divergence.
pub fn check_equivalent(reference: &ExecOutcome, allocated: &ExecOutcome) -> Result<(), String> {
    if reference.ret != allocated.ret {
        return Err(format!(
            "return value differs: reference {:?}, allocated {:?}",
            reference.ret, allocated.ret
        ));
    }
    if reference.calls.len() != allocated.calls.len() {
        return Err(format!(
            "call count differs: reference {}, allocated {}",
            reference.calls.len(),
            allocated.calls.len()
        ));
    }
    for (i, (a, b)) in reference.calls.iter().zip(&allocated.calls).enumerate() {
        if a != b {
            return Err(format!(
                "call #{i} differs: reference {a:?}, allocated {b:?}"
            ));
        }
    }
    if reference.memory != allocated.memory {
        for (addr, v) in &reference.memory {
            match allocated.memory.get(addr) {
                Some(w) if w == v => {}
                other => {
                    return Err(format!(
                        "memory[{addr}] differs: reference {v:#x}, allocated {other:?}"
                    ))
                }
            }
        }
        for addr in allocated.memory.keys() {
            if !reference.memory.contains_key(addr) {
                return Err(format!("allocated wrote unexpected memory[{addr}]"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(ret: Option<u64>) -> ExecOutcome {
        ExecOutcome {
            ret,
            calls: vec![],
            memory: BTreeMap::new(),
            steps: 1,
            cycles: 2,
        }
    }

    #[test]
    fn equal_outcomes_pass() {
        let a = outcome(Some(7));
        let mut b = outcome(Some(7));
        b.cycles = 99; // cycles may differ
        b.steps = 42;
        assert!(check_equivalent(&a, &b).is_ok());
    }

    #[test]
    fn return_divergence_reported() {
        let a = outcome(Some(7));
        let b = outcome(Some(8));
        let err = check_equivalent(&a, &b).unwrap_err();
        assert!(err.contains("return value"));
    }

    #[test]
    fn call_divergence_reported() {
        let mut a = outcome(None);
        let mut b = outcome(None);
        a.calls.push(CallRecord {
            callee: "g".into(),
            args: vec![1],
        });
        b.calls.push(CallRecord {
            callee: "g".into(),
            args: vec![2],
        });
        assert!(check_equivalent(&a, &b).unwrap_err().contains("call #0"));
    }

    #[test]
    fn memory_divergence_reported() {
        let mut a = outcome(None);
        let mut b = outcome(None);
        a.memory.insert(8, 1);
        b.memory.insert(8, 2);
        assert!(check_equivalent(&a, &b).unwrap_err().contains("memory[8]"));
        let c = outcome(None);
        let mut d = outcome(None);
        d.memory.insert(16, 5);
        assert!(check_equivalent(&c, &d)
            .unwrap_err()
            .contains("unexpected memory[16]"));
    }
}
