//! The machine-code interpreter.
//!
//! Faithful to the calling convention: arguments arrive in argument
//! registers, results return in the return register, and **every call
//! clobbers every volatile register** with junk. An allocator that fails
//! to caller-save a live volatile value, or mis-routes an argument, or
//! forgets a spill reload, produces an observably different
//! [`ExecOutcome`] than the reference interpreter — the differential
//! tests rely on this.

use crate::cycles::{minst_cycles, prologue_epilogue_cycles};
use crate::ops::{callee_result, clobber_pattern, default_memory, eval_bin};
use crate::trace::{CallRecord, ExecError, ExecOutcome};
use pdgc_ir::{Block, RegClass};
use pdgc_target::{MInst, MachFunction, PhysReg, TargetDesc};
use std::collections::BTreeMap;

/// Executes allocated machine code on the given argument bit patterns.
///
/// # Errors
///
/// [`ExecError::BadArity`] if the convention cannot carry the arguments;
/// [`ExecError::OutOfFuel`] when `fuel` instructions execute without
/// returning.
pub fn run_mach(
    mach: &MachFunction,
    target: &TargetDesc,
    args: &[u64],
    fuel: u64,
) -> Result<ExecOutcome, ExecError> {
    if args.len() != mach.sig.params.len() {
        return Err(ExecError::BadArity {
            func: mach.name.clone(),
            expected: mach.sig.params.len(),
            given: args.len(),
        });
    }
    // Register files, deterministically junk-initialized.
    let mut regs: [Vec<u64>; 2] = [
        (0..target.num_regs(RegClass::Int))
            .map(|i| 0xa5a5_0000_0000_0000u64 ^ i as u64)
            .collect(),
        (0..target.num_regs(RegClass::Float))
            .map(|i| 0x5a5a_0000_0000_0000u64 ^ i as u64)
            .collect(),
    ];
    // Place arguments per the convention (per-class indexing).
    let mut counts = [0usize; 2];
    for (&bits, &class) in args.iter().zip(&mach.sig.params) {
        let i = counts[class.index()];
        counts[class.index()] += 1;
        let reg = target.arg_reg(class, i).ok_or_else(|| ExecError::BadArity {
            func: mach.name.clone(),
            expected: target.num_arg_regs(class),
            given: i + 1,
        })?;
        regs[class.index()][reg.index()] = bits;
    }

    let get = |regs: &[Vec<u64>; 2], r: PhysReg| regs[r.class().index()][r.index()];
    let set = |regs: &mut [Vec<u64>; 2], r: PhysReg, v: u64| {
        regs[r.class().index()][r.index()] = v;
    };

    let mut frame: Vec<u64> = vec![0; mach.num_slots as usize];
    let mut written: BTreeMap<i64, u64> = BTreeMap::new();
    let mut calls: Vec<CallRecord> = Vec::new();
    let mut steps = 0u64;
    let mut cycles = prologue_epilogue_cycles(mach.used_nonvolatiles.len());
    let mut call_seq = 0u64;

    let mut block = Block::ENTRY;
    let mut idx = 0usize;
    loop {
        if steps >= fuel {
            return Err(ExecError::OutOfFuel {
                func: mach.name.clone(),
            });
        }
        let inst = &mach.blocks[block.index()][idx];
        steps += 1;
        cycles += minst_cycles(inst);
        idx += 1;
        match inst {
            MInst::Copy { dst, src } => {
                let v = get(&regs, *src);
                set(&mut regs, *dst, v);
            }
            MInst::Iconst { dst, value } => set(&mut regs, *dst, *value as u64),
            MInst::Fconst { dst, value } => set(&mut regs, *dst, value.to_bits()),
            MInst::Load { dst, base, offset } => {
                let addr = (get(&regs, *base) as i64).wrapping_add(*offset as i64);
                let v = written
                    .get(&addr)
                    .copied()
                    .unwrap_or_else(|| default_memory(addr));
                set(&mut regs, *dst, v);
            }
            MInst::Load8 { dst, base, offset } => {
                let addr = (get(&regs, *base) as i64).wrapping_add(*offset as i64);
                let byte = written
                    .get(&addr)
                    .copied()
                    .unwrap_or_else(|| default_memory(addr))
                    & 0xff;
                // x86-style semantics: a byte load into a register outside
                // the byte-capable set leaves the high bits dirty; the
                // rewriter must emit an explicit zero-extension.
                let v = if target.is_byte_capable(*dst) {
                    byte
                } else {
                    byte | (default_memory(addr ^ 0x5a5a) & !0xff)
                };
                set(&mut regs, *dst, v);
            }
            MInst::LoadPair {
                dst1,
                dst2,
                base,
                offset,
                offset2,
            } => {
                let b0 = get(&regs, *base) as i64;
                let read = |written: &BTreeMap<i64, u64>, addr: i64| {
                    written
                        .get(&addr)
                        .copied()
                        .unwrap_or_else(|| default_memory(addr))
                };
                let v1 = read(&written, b0.wrapping_add(*offset as i64));
                let v2 = read(&written, b0.wrapping_add(*offset2 as i64));
                set(&mut regs, *dst1, v1);
                set(&mut regs, *dst2, v2);
            }
            MInst::Store { src, base, offset } => {
                let addr = (get(&regs, *base) as i64).wrapping_add(*offset as i64);
                written.insert(addr, get(&regs, *src));
            }
            MInst::Bin { op, dst, lhs, rhs } => {
                let v = eval_bin(*op, get(&regs, *lhs), get(&regs, *rhs));
                set(&mut regs, *dst, v);
            }
            MInst::BinImm { op, dst, lhs, imm } => {
                let v = eval_bin(*op, get(&regs, *lhs), *imm as u64);
                set(&mut regs, *dst, v);
            }
            MInst::Call {
                callee,
                arg_regs,
                ret_reg,
            } => {
                let vals: Vec<u64> = arg_regs.iter().map(|&r| get(&regs, r)).collect();
                let name = &mach.callees[callee.index()];
                let result = callee_result(name, &vals);
                calls.push(CallRecord {
                    callee: name.clone(),
                    args: vals,
                });
                // Clobber every volatile register of both classes.
                for class in RegClass::ALL {
                    for r in target.volatiles(class) {
                        set(&mut regs, r, clobber_pattern(call_seq, r.index() + class.index() * 64));
                    }
                }
                call_seq += 1;
                if let Some(r) = ret_reg {
                    set(&mut regs, *r, result);
                }
            }
            MInst::SpillLoad { dst, slot } => {
                let v = frame[*slot as usize];
                set(&mut regs, *dst, v);
            }
            MInst::SpillStore { src, slot } => {
                frame[*slot as usize] = get(&regs, *src);
            }
            MInst::Jump { target: t } => {
                block = *t;
                idx = 0;
            }
            MInst::Branch {
                op,
                lhs,
                rhs,
                then_dst,
                else_dst,
            } => {
                let taken = op.eval(get(&regs, *lhs) as i64, get(&regs, *rhs) as i64);
                block = if taken { *then_dst } else { *else_dst };
                idx = 0;
            }
            MInst::BranchImm {
                op,
                lhs,
                imm,
                then_dst,
                else_dst,
            } => {
                let taken = op.eval(get(&regs, *lhs) as i64, *imm);
                block = if taken { *then_dst } else { *else_dst };
                idx = 0;
            }
            MInst::Ret => {
                let ret = mach
                    .sig
                    .ret
                    .map(|class| get(&regs, target.ret_reg(class)));
                return Ok(ExecOutcome {
                    ret,
                    calls,
                    memory: written,
                    steps,
                    cycles,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_FUEL;
    use pdgc_ir::{BinOp, CalleeId, FuncSig};
    use pdgc_target::PressureModel;

    fn target() -> TargetDesc {
        TargetDesc::ia64_like(PressureModel::High)
    }

    fn mach(sig: FuncSig, insts: Vec<MInst>) -> MachFunction {
        MachFunction {
            name: "m".into(),
            sig,
            blocks: vec![insts],
            num_slots: 4,
            used_nonvolatiles: vec![],
            callees: vec!["g".into()],
        }
    }

    #[test]
    fn args_arrive_in_arg_registers() {
        let t = target();
        let m = mach(
            FuncSig {
                params: vec![RegClass::Int, RegClass::Int],
                ret: Some(RegClass::Int),
            },
            vec![
                MInst::Bin {
                    op: BinOp::Add,
                    dst: t.ret_reg(RegClass::Int),
                    lhs: PhysReg::int(0),
                    rhs: PhysReg::int(1),
                },
                MInst::Ret,
            ],
        );
        let out = run_mach(&m, &t, &[30, 12], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(42));
    }

    #[test]
    fn call_clobbers_volatiles() {
        let t = target();
        // Put 7 into a volatile non-arg register, call, then return it:
        // the clobber must be visible.
        let m = mach(
            FuncSig {
                params: vec![],
                ret: Some(RegClass::Int),
            },
            vec![
                MInst::Iconst {
                    dst: PhysReg::int(5),
                    value: 7,
                },
                MInst::Call {
                    callee: CalleeId::new(0),
                    arg_regs: vec![],
                    ret_reg: None,
                },
                MInst::Copy {
                    dst: t.ret_reg(RegClass::Int),
                    src: PhysReg::int(5),
                },
                MInst::Ret,
            ],
        );
        let out = run_mach(&m, &t, &[], DEFAULT_FUEL).unwrap();
        assert_ne!(out.ret, Some(7));
    }

    #[test]
    fn call_preserves_nonvolatiles() {
        let t = target();
        let m = mach(
            FuncSig {
                params: vec![],
                ret: Some(RegClass::Int),
            },
            vec![
                MInst::Iconst {
                    dst: PhysReg::int(12), // non-volatile under High
                    value: 7,
                },
                MInst::Call {
                    callee: CalleeId::new(0),
                    arg_regs: vec![],
                    ret_reg: None,
                },
                MInst::Copy {
                    dst: t.ret_reg(RegClass::Int),
                    src: PhysReg::int(12),
                },
                MInst::Ret,
            ],
        );
        let out = run_mach(&m, &t, &[], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(7));
    }

    #[test]
    fn save_restore_survives_clobber() {
        let t = target();
        let m = mach(
            FuncSig {
                params: vec![],
                ret: Some(RegClass::Int),
            },
            vec![
                MInst::Iconst {
                    dst: PhysReg::int(5),
                    value: 9,
                },
                MInst::SpillStore {
                    src: PhysReg::int(5),
                    slot: 0,
                },
                MInst::Call {
                    callee: CalleeId::new(0),
                    arg_regs: vec![],
                    ret_reg: None,
                },
                MInst::SpillLoad {
                    dst: PhysReg::int(5),
                    slot: 0,
                },
                MInst::Copy {
                    dst: t.ret_reg(RegClass::Int),
                    src: PhysReg::int(5),
                },
                MInst::Ret,
            ],
        );
        let out = run_mach(&m, &t, &[], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(9));
    }

    #[test]
    fn load_pair_reads_both_words() {
        let t = target();
        let m = mach(
            FuncSig {
                params: vec![RegClass::Int],
                ret: Some(RegClass::Int),
            },
            vec![
                MInst::LoadPair {
                    dst1: PhysReg::int(1),
                    dst2: PhysReg::int(2),
                    base: PhysReg::int(0),
                    offset: 0,
                    offset2: 8,
                },
                MInst::Bin {
                    op: BinOp::Xor,
                    dst: t.ret_reg(RegClass::Int),
                    lhs: PhysReg::int(1),
                    rhs: PhysReg::int(2),
                },
                MInst::Ret,
            ],
        );
        let out = run_mach(&m, &t, &[256], DEFAULT_FUEL).unwrap();
        let want = crate::ops::default_memory(256) ^ crate::ops::default_memory(264);
        assert_eq!(out.ret, Some(want));
    }

    #[test]
    fn prologue_cycles_counted() {
        let t = target();
        let mut m = mach(
            FuncSig {
                params: vec![],
                ret: None,
            },
            vec![MInst::Ret],
        );
        let base = run_mach(&m, &t, &[], DEFAULT_FUEL).unwrap().cycles;
        m.used_nonvolatiles = vec![PhysReg::int(12), PhysReg::int(13)];
        let with = run_mach(&m, &t, &[], DEFAULT_FUEL).unwrap().cycles;
        assert_eq!(with - base, 6);
    }
}
