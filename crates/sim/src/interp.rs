//! The reference interpreter for virtual-register IR.

use crate::ops::{callee_result, default_memory, eval_bin};
use crate::trace::{CallRecord, ExecError, ExecOutcome};
use pdgc_ir::{Block, Function, Inst};
use std::collections::BTreeMap;

/// Executes `func` on the given argument bit patterns.
///
/// Memory starts as deterministic address-dependent garbage
/// (`ops::default_memory`); only written addresses appear in the outcome.
/// φ-functions are executed with parallel-copy semantics (all sources read
/// before any destination is written), so the interpreter accepts both
/// SSA-form and lowered functions and gives them identical behaviour.
///
/// # Errors
///
/// [`ExecError::BadArity`] on an argument-count mismatch;
/// [`ExecError::OutOfFuel`] when `fuel` instructions have run without a
/// return; [`ExecError::UndefinedRead`] if a virtual register is read
/// before any write.
pub fn run_ir(func: &Function, args: &[u64], fuel: u64) -> Result<ExecOutcome, ExecError> {
    if args.len() != func.param_vregs.len() {
        return Err(ExecError::BadArity {
            func: func.name.clone(),
            expected: func.param_vregs.len(),
            given: args.len(),
        });
    }

    let mut regs: Vec<Option<u64>> = vec![None; func.num_vregs()];
    for (&v, &a) in func.param_vregs.iter().zip(args) {
        regs[v.index()] = Some(a);
    }
    let mut written: BTreeMap<i64, u64> = BTreeMap::new();
    let mut frame: BTreeMap<u32, u64> = BTreeMap::new();
    let mut calls: Vec<CallRecord> = Vec::new();
    let mut steps = 0u64;
    let mut cycles = 0u64;

    let read = |regs: &Vec<Option<u64>>, v: pdgc_ir::VReg| -> Result<u64, ExecError> {
        regs[v.index()].ok_or_else(|| ExecError::UndefinedRead {
            func: func.name.clone(),
            what: format!("{v}"),
        })
    };
    let load = |written: &BTreeMap<i64, u64>, addr: i64| -> u64 {
        written.get(&addr).copied().unwrap_or_else(|| default_memory(addr))
    };

    // φ execution: when control transfers prev → block, all φs at the
    // head of `block` read their prev-edge arguments simultaneously.
    let run_phis = |regs: &mut Vec<Option<u64>>, prev: Block, block: Block| -> Result<(), ExecError> {
        let phis = &func.block(block).phis;
        if phis.is_empty() {
            return Ok(());
        }
        let mut staged = Vec::with_capacity(phis.len());
        for phi in phis {
            let src = phi.arg_for(prev).ok_or_else(|| ExecError::UndefinedRead {
                func: func.name.clone(),
                what: format!("phi {} has no arg for {prev}", phi.dst),
            })?;
            let v = regs[src.index()].ok_or_else(|| ExecError::UndefinedRead {
                func: func.name.clone(),
                what: format!("{src}"),
            })?;
            staged.push((phi.dst, v));
        }
        for (d, v) in staged {
            regs[d.index()] = Some(v);
        }
        Ok(())
    };

    let mut block = Block::ENTRY;
    let mut idx = 0usize;
    loop {
        if steps >= fuel {
            return Err(ExecError::OutOfFuel {
                func: func.name.clone(),
            });
        }
        let inst = &func.block(block).insts[idx];
        steps += 1;
        cycles += crate::cycles::inst_cycles(inst);
        idx += 1;
        match inst {
            Inst::Copy { dst, src } => {
                let v = read(&regs, *src)?;
                regs[dst.index()] = Some(v);
            }
            Inst::Iconst { dst, value } => regs[dst.index()] = Some(*value as u64),
            Inst::Fconst { dst, value } => regs[dst.index()] = Some(value.to_bits()),
            Inst::Load { dst, base, offset } => {
                let addr = (read(&regs, *base)? as i64).wrapping_add(*offset as i64);
                regs[dst.index()] = Some(load(&written, addr));
            }
            Inst::Load8 { dst, base, offset } => {
                let addr = (read(&regs, *base)? as i64).wrapping_add(*offset as i64);
                regs[dst.index()] = Some(load(&written, addr) & 0xff);
            }
            Inst::Store { src, base, offset } => {
                let addr = (read(&regs, *base)? as i64).wrapping_add(*offset as i64);
                let v = read(&regs, *src)?;
                written.insert(addr, v);
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let v = eval_bin(*op, read(&regs, *lhs)?, read(&regs, *rhs)?);
                regs[dst.index()] = Some(v);
            }
            Inst::BinImm { op, dst, lhs, imm } => {
                let v = eval_bin(*op, read(&regs, *lhs)?, *imm as u64);
                regs[dst.index()] = Some(v);
            }
            Inst::Call { callee, args, ret } => {
                let mut vals = Vec::with_capacity(args.len());
                for &a in args {
                    vals.push(read(&regs, a)?);
                }
                let name = &func.callees[callee.index()];
                let result = callee_result(name, &vals);
                calls.push(CallRecord {
                    callee: name.clone(),
                    args: vals,
                });
                if let Some(r) = ret {
                    regs[r.index()] = Some(result);
                }
            }
            Inst::Jump { target } => {
                run_phis(&mut regs, block, *target)?;
                block = *target;
                idx = 0;
            }
            Inst::Branch {
                op,
                lhs,
                rhs,
                then_dst,
                else_dst,
            } => {
                let taken = op.eval(read(&regs, *lhs)? as i64, read(&regs, *rhs)? as i64);
                let target = if taken { *then_dst } else { *else_dst };
                run_phis(&mut regs, block, target)?;
                block = target;
                idx = 0;
            }
            Inst::BranchImm {
                op,
                lhs,
                imm,
                then_dst,
                else_dst,
            } => {
                let taken = op.eval(read(&regs, *lhs)? as i64, *imm);
                let target = if taken { *then_dst } else { *else_dst };
                run_phis(&mut regs, block, target)?;
                block = target;
                idx = 0;
            }
            Inst::Ret { value } => {
                let ret = match value {
                    Some(v) => Some(read(&regs, *v)?),
                    None => None,
                };
                return Ok(ExecOutcome {
                    ret,
                    calls,
                    memory: written,
                    steps,
                    cycles,
                });
            }
            Inst::Reload { dst, slot } => {
                regs[dst.index()] = Some(frame.get(slot).copied().unwrap_or(0));
            }
            Inst::Spill { src, slot } => {
                let v = read(&regs, *src)?;
                frame.insert(*slot, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_FUEL;
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};

    #[test]
    fn arithmetic_and_return() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Mul, p, 3);
        let y = b.bin_imm(BinOp::Add, x, 4);
        b.ret(Some(y));
        let f = b.finish();
        let out = run_ir(&f, &[5], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(19));
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn loop_terminates_and_counts() {
        // sum 1..=n
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let n = b.param(0);
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        let zero = b.iconst(0);
        let i0 = b.copy(n);
        let acc0 = b.copy(zero);
        b.jump(header);
        b.switch_to(header);
        b.branch(CmpOp::Gt, i0, zero, body, exit);
        b.switch_to(body);
        b.emit(pdgc_ir::Inst::Bin {
            op: BinOp::Add,
            dst: acc0,
            lhs: acc0,
            rhs: i0,
        });
        b.emit(pdgc_ir::Inst::BinImm {
            op: BinOp::Sub,
            dst: i0,
            lhs: i0,
            imm: 1,
        });
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(acc0));
        let f = b.finish();
        assert!(f.verify().is_ok());
        let out = run_ir(&f, &[10], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(55));
    }

    #[test]
    fn memory_roundtrip_and_default() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0); // default garbage
        b.store(x, p, 8);
        let y = b.load(p, 8);
        b.ret(Some(y));
        let f = b.finish();
        let out = run_ir(&f, &[1000], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(crate::ops::default_memory(1000)));
        assert_eq!(out.memory.len(), 1);
    }

    #[test]
    fn calls_recorded_in_order() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.call("g", vec![p], Some(RegClass::Int)).unwrap();
        let c = b.call("h", vec![a, p], Some(RegClass::Int)).unwrap();
        b.ret(Some(c));
        let f = b.finish();
        let out = run_ir(&f, &[9], DEFAULT_FUEL).unwrap();
        assert_eq!(out.calls.len(), 2);
        assert_eq!(out.calls[0].callee, "g");
        assert_eq!(out.calls[0].args, vec![9]);
        assert_eq!(out.calls[1].callee, "h");
        let g = crate::ops::callee_result("g", &[9]);
        assert_eq!(out.calls[1].args, vec![g, 9]);
        assert_eq!(out.ret, Some(crate::ops::callee_result("h", &[g, 9])));
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let l = b.create_block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let f = b.finish();
        assert!(matches!(
            run_ir(&f, &[], 100),
            Err(ExecError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn undefined_read_detected() {
        let mut b = FunctionBuilder::new("f", vec![], Some(RegClass::Int));
        let v = b.new_vreg(RegClass::Int);
        b.ret(Some(v));
        let f = b.finish();
        assert!(matches!(
            run_ir(&f, &[], 100),
            Err(ExecError::UndefinedRead { .. })
        ));
    }

    #[test]
    fn bad_arity_detected() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        b.ret(None);
        let f = b.finish();
        assert!(matches!(
            run_ir(&f, &[], 100),
            Err(ExecError::BadArity { .. })
        ));
    }

    #[test]
    fn float_pipeline() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Float], Some(RegClass::Float));
        let q = b.param(0);
        let h = b.fconst(0.5);
        let r = b.bin(BinOp::FMul, q, h);
        b.ret(Some(r));
        let f = b.finish();
        let out = run_ir(&f, &[3.0f64.to_bits()], DEFAULT_FUEL).unwrap();
        assert_eq!(out.ret, Some(1.5f64.to_bits()));
    }
}
