//! Shared operator semantics for both interpreters.
//!
//! Values are 64-bit patterns: integer registers hold `i64` two's
//! complement, float registers hold `f64` bits. Both interpreters use
//! exactly these functions, so any observable divergence between IR and
//! machine execution is an allocation bug, never a semantics mismatch.

use pdgc_ir::BinOp;

/// Evaluates a binary operator on two 64-bit patterns.
///
/// Integer operations wrap; shifts use the low 6 bits of the right
/// operand; division by zero yields zero (documented IR semantics).
pub fn eval_bin(op: BinOp, lhs: u64, rhs: u64) -> u64 {
    if op.is_float() {
        let (a, b) = (f64::from_bits(lhs), f64::from_bits(rhs));
        let r = match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            _ => unreachable!(),
        };
        r.to_bits()
    } else {
        let (a, b) = (lhs as i64, rhs as i64);
        let r = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            _ => unreachable!(),
        };
        r as u64
    }
}

/// The deterministic value returned by the synthetic callee named
/// `callee` for the given argument bit patterns. Both interpreters use
/// this, so call results agree whenever the callee name and argument
/// *values* agree — which is exactly what correct argument-register
/// routing must guarantee. Hashing the *name* (not a table index) keeps
/// semantics stable across callee-table orderings.
pub fn callee_result(callee: &str, args: &[u64]) -> u64 {
    let mut name_h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in callee.bytes() {
        name_h ^= b as u64;
        name_h = name_h.wrapping_mul(0x100_0000_01b3);
    }
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ name_h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    for &a in args {
        h ^= a;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
    }
    // Keep results small-ish integers so loop counters derived from call
    // results terminate quickly when used in synthetic workloads.
    h
}

/// The deterministic content of uninitialized memory at `addr`: defined,
/// address-dependent garbage (better at catching bugs than zero).
pub fn default_memory(addr: i64) -> u64 {
    let mut h = (addr as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= h >> 29;
    h.wrapping_mul(0xbf58_476d_1ce4_e5b9)
}

/// The junk pattern a call writes into clobbered volatile register
/// `reg_index` at dynamic call number `call_seq`.
pub fn clobber_pattern(call_seq: u64, reg_index: usize) -> u64 {
    0xdead_beef_0000_0000u64 ^ (call_seq << 8) ^ reg_index as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops_wrap_and_guard() {
        assert_eq!(eval_bin(BinOp::Add, 1, 2), 3);
        assert_eq!(
            eval_bin(BinOp::Add, i64::MAX as u64, 1) as i64,
            i64::MIN
        );
        assert_eq!(eval_bin(BinOp::Div, 10, 0), 0);
        assert_eq!(eval_bin(BinOp::Div, 10, 3), 3);
        assert_eq!(eval_bin(BinOp::Shl, 1, 64), 1); // shift masked to 0
        assert_eq!(eval_bin(BinOp::Shr, (-8i64) as u64, 1) as i64, -4);
    }

    #[test]
    fn float_ops_via_bits() {
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        assert_eq!(f64::from_bits(eval_bin(BinOp::FMul, two, three)), 6.0);
        assert_eq!(f64::from_bits(eval_bin(BinOp::FDiv, three, two)), 1.5);
    }

    #[test]
    fn callee_results_deterministic_and_arg_sensitive() {
        let a = callee_result("g", &[1, 2]);
        assert_eq!(a, callee_result("g", &[1, 2]));
        assert_ne!(a, callee_result("g", &[2, 1]));
        assert_ne!(a, callee_result("h", &[1, 2]));
    }

    #[test]
    fn memory_default_varies_by_address() {
        assert_ne!(default_memory(0), default_memory(8));
        assert_eq!(default_memory(64), default_memory(64));
    }

    #[test]
    fn clobber_patterns_differ() {
        assert_ne!(clobber_pattern(0, 1), clobber_pattern(0, 2));
        assert_ne!(clobber_pattern(0, 1), clobber_pattern(1, 1));
    }
}
