//! The target builder: the validated way to construct a
//! [`TargetDesc`].
//!
//! The builder makes the old unchecked-index bug class unrepresentable:
//! [`TargetBuilder::finish`] refuses to produce a description unless
//! every [`RegClass`] has been described, and every per-class parameter
//! (volatile mask, byte prefix, pair rule, register names) is validated
//! against the file size before a [`TargetDesc`] exists at all.

use crate::error::TargetError;
use crate::{ClassDesc, PairRule, PhysReg, TargetDesc};
use pdgc_ir::RegClass;

/// The largest register file a class may carry: the volatile set is a
/// 64-bit mask.
pub const MAX_REGS: usize = 64;

/// Per-class input to the [`TargetBuilder`]: file size plus the optional
/// irregularities.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassSpec {
    num_regs: usize,
    volatile_mask: Option<u64>,
    byte_regs: Option<u8>,
    pair: Option<PairRule>,
    reg_names: Vec<String>,
}

impl ClassSpec {
    /// A class with `num_regs` registers. Until overridden, the lower
    /// half of the file (at least one register) is volatile, there is no
    /// byte restriction, no paired load, and no register names.
    pub fn new(num_regs: usize) -> ClassSpec {
        ClassSpec {
            num_regs,
            volatile_mask: None,
            byte_regs: None,
            pair: None,
            reg_names: Vec::new(),
        }
    }

    /// Marks registers `0..n` volatile (caller-saved) and the rest
    /// non-volatile — the prefix convention every shipped target uses.
    pub fn volatile_prefix(self, n: usize) -> ClassSpec {
        // A prefix of n ones; n is validated against the file size in
        // `finish`, where the class is known.
        let mask = match n {
            0 => 0,
            n if n >= 64 => u64::MAX,
            n => (1u64 << n) - 1,
        };
        self.volatile_mask(mask)
    }

    /// Marks exactly the registers in `mask` (bit `i` ⇔ register `i`)
    /// volatile, for targets whose caller-saved set is not a prefix.
    pub fn volatile_mask(mut self, mask: u64) -> ClassSpec {
        self.volatile_mask = Some(mask);
        self
    }

    /// Restricts byte operations to registers `0..n` (the paper's
    /// limited register usage).
    pub fn byte_regs(mut self, n: u8) -> ClassSpec {
        self.byte_regs = Some(n);
        self
    }

    /// Gives the class a paired-load instruction governed by `rule`.
    pub fn pair(mut self, rule: PairRule) -> ClassSpec {
        self.pair = Some(rule);
        self
    }

    /// Names the class's registers, index order; the count must match
    /// the file size.
    pub fn named<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> ClassSpec {
        self.reg_names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Validates the spec for `class` and produces the immutable
    /// description.
    fn build(self, class: RegClass) -> Result<ClassDesc, TargetError> {
        if self.num_regs == 0 {
            return Err(TargetError::NoRegisters(class));
        }
        if self.num_regs > MAX_REGS {
            return Err(TargetError::TooManyRegs {
                class,
                num_regs: self.num_regs,
                max: MAX_REGS,
            });
        }
        let file_mask = if self.num_regs >= 64 {
            u64::MAX
        } else {
            (1u64 << self.num_regs) - 1
        };
        let volatile_mask = self
            .volatile_mask
            .unwrap_or_else(|| match (self.num_regs / 2).max(1) {
                64 => u64::MAX,
                n => (1u64 << n) - 1,
            });
        if volatile_mask & !file_mask != 0 {
            return Err(TargetError::VolatileOutOfRange(class));
        }
        if volatile_mask == 0 {
            return Err(TargetError::NoVolatiles(class));
        }
        if let Some(n) = self.byte_regs {
            if n as usize > self.num_regs {
                return Err(TargetError::ByteRegsOutOfRange(class));
            }
        }
        if let Some(rule) = &self.pair {
            if rule.stride() <= 0 || rule.alignment() <= 0 || rule.window() == 0 {
                return Err(TargetError::BadPairRule(class));
            }
        }
        if !self.reg_names.is_empty() && self.reg_names.len() != self.num_regs {
            return Err(TargetError::NameCountMismatch {
                class,
                names: self.reg_names.len(),
                num_regs: self.num_regs,
            });
        }
        Ok(ClassDesc {
            num_regs: self.num_regs,
            volatile_mask,
            byte_regs: self.byte_regs,
            pair: self.pair,
            reg_names: self.reg_names,
        })
    }
}

/// Accumulates per-class specs and ABI parameters, then validates the
/// whole description at once.
#[derive(Clone, Debug)]
pub struct TargetBuilder {
    name: String,
    div_reg: Option<PhysReg>,
    classes: Vec<Option<ClassSpec>>,
}

impl TargetBuilder {
    /// Starts a builder for a target named `name`.
    pub fn new(name: impl Into<String>) -> TargetBuilder {
        TargetBuilder {
            name: name.into(),
            div_reg: None,
            classes: vec![None; RegClass::ALL.len()],
        }
    }

    /// Describes one register class (replacing any earlier description
    /// of the same class).
    pub fn class(mut self, class: RegClass, spec: ClassSpec) -> TargetBuilder {
        self.classes[class.index()] = Some(spec);
        self
    }

    /// Pins integer division results to a dedicated register.
    pub fn div_reg(mut self, reg: PhysReg) -> TargetBuilder {
        self.div_reg = Some(reg);
        self
    }

    /// Validates everything and produces the description. Fails with a
    /// typed [`TargetError`] when a class is missing or any per-class
    /// parameter is inconsistent with its file.
    pub fn finish(self) -> Result<TargetDesc, TargetError> {
        let mut classes = Vec::with_capacity(RegClass::ALL.len());
        for (class, spec) in RegClass::ALL.into_iter().zip(self.classes) {
            let spec = spec.ok_or(TargetError::MissingClass(class))?;
            classes.push(spec.build(class)?);
        }
        if let Some(div) = self.div_reg {
            if div.index() >= classes[div.class().index()].num_regs {
                return Err(TargetError::DivRegOutOfRange);
            }
        }
        Ok(TargetDesc {
            name: self.name,
            div_reg: self.div_reg,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairedLoadRule;

    fn both(spec: impl Fn() -> ClassSpec) -> TargetBuilder {
        TargetBuilder::new("t")
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
    }

    #[test]
    fn missing_class_is_a_typed_error() {
        let err = TargetBuilder::new("t")
            .class(RegClass::Int, ClassSpec::new(8))
            .finish()
            .unwrap_err();
        assert_eq!(err, TargetError::MissingClass(RegClass::Float));
    }

    #[test]
    fn empty_and_oversized_files_rejected() {
        let err = both(|| ClassSpec::new(0)).finish().unwrap_err();
        assert_eq!(err, TargetError::NoRegisters(RegClass::Int));
        let err = both(|| ClassSpec::new(65)).finish().unwrap_err();
        assert!(matches!(err, TargetError::TooManyRegs { num_regs: 65, .. }));
        assert!(both(|| ClassSpec::new(64)).finish().is_ok());
    }

    #[test]
    fn volatile_mask_validated_against_the_file() {
        let err = both(|| ClassSpec::new(4).volatile_mask(0x10))
            .finish()
            .unwrap_err();
        assert_eq!(err, TargetError::VolatileOutOfRange(RegClass::Int));
        let err = both(|| ClassSpec::new(4).volatile_mask(0))
            .finish()
            .unwrap_err();
        assert_eq!(err, TargetError::NoVolatiles(RegClass::Int));
        // A non-prefix mask is fine: volatiles are r0 and r2.
        let t = both(|| ClassSpec::new(4).volatile_mask(0b0101))
            .finish()
            .unwrap();
        assert!(t.is_volatile(PhysReg::int(0)));
        assert!(!t.is_volatile(PhysReg::int(1)));
        assert!(t.is_volatile(PhysReg::int(2)));
        assert_eq!(t.arg_reg(RegClass::Int, 1), Some(PhysReg::int(2)));
        assert_eq!(t.ret_reg(RegClass::Int), PhysReg::int(0));
    }

    #[test]
    fn byte_prefix_and_pair_rule_validated() {
        let err = both(|| ClassSpec::new(4).byte_regs(5)).finish().unwrap_err();
        assert_eq!(err, TargetError::ByteRegsOutOfRange(RegClass::Int));
        let bad = PairRule::new(PairedLoadRule::Parity, 0);
        let err = both(|| ClassSpec::new(4).pair(bad)).finish().unwrap_err();
        assert_eq!(err, TargetError::BadPairRule(RegClass::Int));
        let bad = PairRule::new(PairedLoadRule::Parity, 8).with_window(0);
        let err = both(|| ClassSpec::new(4).pair(bad)).finish().unwrap_err();
        assert_eq!(err, TargetError::BadPairRule(RegClass::Int));
    }

    #[test]
    fn name_count_must_match_file_size() {
        let err = both(|| ClassSpec::new(4).named(["a", "b"])).finish().unwrap_err();
        assert!(matches!(
            err,
            TargetError::NameCountMismatch {
                names: 2,
                num_regs: 4,
                ..
            }
        ));
    }

    #[test]
    fn div_reg_must_sit_in_its_file() {
        let err = both(|| ClassSpec::new(4))
            .div_reg(PhysReg::int(4))
            .finish()
            .unwrap_err();
        assert_eq!(err, TargetError::DivRegOutOfRange);
        let t = both(|| ClassSpec::new(4)).div_reg(PhysReg::int(3)).finish().unwrap();
        assert_eq!(t.div_reg, Some(PhysReg::int(3)));
    }

    #[test]
    fn default_volatile_split_is_the_lower_half() {
        let t = both(|| ClassSpec::new(8)).finish().unwrap();
        assert_eq!(t.volatiles(RegClass::Int).count(), 4);
        // A single-register file still gets its one volatile.
        let t = both(|| ClassSpec::new(1)).finish().unwrap();
        assert_eq!(t.volatiles(RegClass::Int).count(), 1);
    }
}
