//! Physical registers.

use pdgc_ir::RegClass;
use std::fmt;

/// A physical register: a class and an index within that class's file.
///
/// Integer registers print as `r0`, `r1`, …; floating-point registers as
/// `f0`, `f1`, …. The derived ordering sorts by class first, then index,
/// which gives deterministic callee-save lists and report tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysReg {
    class: RegClass,
    index: u8,
}

impl PhysReg {
    /// A register of `class` at `index`.
    pub fn new(class: RegClass, index: u8) -> PhysReg {
        PhysReg { class, index }
    }

    /// The integer register `r{index}`.
    pub fn int(index: u8) -> PhysReg {
        PhysReg::new(RegClass::Int, index)
    }

    /// The floating-point register `f{index}`.
    pub fn float(index: u8) -> PhysReg {
        PhysReg::new(RegClass::Float, index)
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The register's index within its class's file.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for PhysReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Float => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_with_new() {
        assert_eq!(PhysReg::int(3), PhysReg::new(RegClass::Int, 3));
        assert_eq!(PhysReg::float(3), PhysReg::new(RegClass::Float, 3));
        assert_ne!(PhysReg::int(3), PhysReg::float(3));
    }

    #[test]
    fn accessors() {
        let r = PhysReg::int(5);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 5);
    }

    #[test]
    fn display_by_class() {
        assert_eq!(PhysReg::int(0).to_string(), "r0");
        assert_eq!(PhysReg::float(12).to_string(), "f12");
    }

    #[test]
    fn ordering_is_class_then_index() {
        let mut regs = vec![PhysReg::float(0), PhysReg::int(2), PhysReg::int(1)];
        regs.sort();
        assert_eq!(
            regs,
            vec![PhysReg::int(1), PhysReg::int(2), PhysReg::float(0)]
        );
    }
}
