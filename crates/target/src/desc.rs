//! Target descriptions: register files, calling convention, and the
//! irregularities the paper's preferences exploit.

use crate::{PairedLoadRule, PhysReg, PressureModel};
use pdgc_ir::RegClass;

/// Per-class register-file description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDesc {
    /// Registers in the file.
    pub num_regs: usize,
    /// Volatile (caller-saved) registers: indices `0..num_volatile`.
    /// The rest, `num_volatile..num_regs`, are non-volatile
    /// (callee-saved).
    pub num_volatile: usize,
    /// Limited register usage (the paper's §3.1 x86 example): when
    /// `Some(n)`, only registers `0..n` are byte-capable; `None` means
    /// no restriction.
    pub byte_regs: Option<u8>,
}

/// A target and its ABI: one register file per class, a
/// volatile/non-volatile split, argument and return registers, an
/// optional dedicated division register, and the paired-load rule.
///
/// The convention is uniform across the modelled targets: arguments are
/// passed in the volatile registers in index order (per class), and
/// results return in register 0 of the result's class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TargetDesc {
    /// Target name, as accepted by the CLI (e.g. `ia64-16`).
    pub name: String,
    /// Destination constraint for fused paired loads.
    pub paired_load: PairedLoadRule,
    /// Dedicated division register (the paper's x86 example of a
    /// dedicated-register operation): when `Some`, integer `div`
    /// results are pinned to it.
    pub div_reg: Option<PhysReg>,
    classes: [ClassDesc; 2],
}

impl TargetDesc {
    /// An IA-64-like target: parity-paired loads, no byte restriction,
    /// no dedicated registers, file size per `model`.
    pub fn ia64_like(model: PressureModel) -> TargetDesc {
        let class = ClassDesc {
            num_regs: model.num_regs(),
            num_volatile: model.num_volatile(),
            byte_regs: None,
        };
        TargetDesc {
            name: format!("ia64-{}", model.num_regs()),
            paired_load: PairedLoadRule::Parity,
            div_reg: None,
            classes: [class.clone(), class],
        }
    }

    /// An x86-like target: only the first four integer registers are
    /// byte-capable, division results are pinned to `r0` (rax-style),
    /// and paired loads require sequential destinations.
    pub fn x86_like(model: PressureModel) -> TargetDesc {
        let int = ClassDesc {
            num_regs: model.num_regs(),
            num_volatile: model.num_volatile(),
            byte_regs: Some(4),
        };
        let float = ClassDesc {
            byte_regs: None,
            ..int.clone()
        };
        TargetDesc {
            name: format!("x86-{}", model.num_regs()),
            paired_load: PairedLoadRule::Sequential,
            div_reg: Some(PhysReg::int(0)),
            classes: [int, float],
        }
    }

    /// A tiny regular target with `n` registers per class, the first
    /// `n / 2` volatile — for unit tests that need controlled pressure.
    pub fn toy(n: u8) -> TargetDesc {
        let class = ClassDesc {
            num_regs: n as usize,
            num_volatile: n as usize / 2,
            byte_regs: None,
        };
        TargetDesc {
            name: format!("toy-{n}"),
            paired_load: PairedLoadRule::Parity,
            div_reg: None,
            classes: [class.clone(), class],
        }
    }

    /// The three-register machine of the paper's Figure 7: `r0` is the
    /// first argument and return register, `r1` the second argument
    /// register (both volatile), and `r2` is non-volatile. Paired loads
    /// follow the different-parity rule. (The paper numbers these
    /// r1/r2/r3; we index from zero.)
    pub fn figure7() -> TargetDesc {
        let class = ClassDesc {
            num_regs: 3,
            num_volatile: 2,
            byte_regs: None,
        };
        TargetDesc {
            name: "figure7".to_string(),
            paired_load: PairedLoadRule::Parity,
            div_reg: None,
            classes: [class.clone(), class],
        }
    }

    /// The register-file description of `class`.
    pub fn class(&self, class: RegClass) -> &ClassDesc {
        &self.classes[class.index()]
    }

    /// Registers in `class`'s file.
    pub fn num_regs(&self, class: RegClass) -> usize {
        self.class(class).num_regs
    }

    /// All registers of `class`, in index order.
    pub fn regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> {
        (0..self.num_regs(class)).map(move |i| PhysReg::new(class, i as u8))
    }

    /// Whether `reg` is volatile (caller-saved).
    pub fn is_volatile(&self, reg: PhysReg) -> bool {
        reg.index() < self.class(reg.class()).num_volatile
    }

    /// The volatile registers of `class`, in index order.
    pub fn volatiles(&self, class: RegClass) -> impl Iterator<Item = PhysReg> {
        (0..self.class(class).num_volatile).map(move |i| PhysReg::new(class, i as u8))
    }

    /// The non-volatile registers of `class`, in index order.
    pub fn nonvolatiles(&self, class: RegClass) -> impl Iterator<Item = PhysReg> {
        let c = self.class(class);
        (c.num_volatile..c.num_regs).map(move |i| PhysReg::new(class, i as u8))
    }

    /// The register carrying the `i`-th argument of `class` (per-class
    /// indexing), or `None` when the convention runs out.
    pub fn arg_reg(&self, class: RegClass, i: usize) -> Option<PhysReg> {
        (i < self.num_arg_regs(class)).then(|| PhysReg::new(class, i as u8))
    }

    /// How many arguments of `class` the convention can carry: all the
    /// class's volatile registers.
    pub fn num_arg_regs(&self, class: RegClass) -> usize {
        self.class(class).num_volatile
    }

    /// The register in which a result of `class` is returned.
    pub fn ret_reg(&self, class: RegClass) -> PhysReg {
        PhysReg::new(class, 0)
    }

    /// Whether a byte load may target `reg` without an explicit
    /// zero-extension.
    pub fn is_byte_capable(&self, reg: PhysReg) -> bool {
        match self.class(reg.class()).byte_regs {
            Some(n) => reg.index() < n as usize,
            None => true,
        }
    }

    /// Whether `class` restricts which registers byte operations may
    /// use (the paper's *limited register usage*).
    pub fn has_byte_restriction(&self, class: RegClass) -> bool {
        self.class(class).byte_regs.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [PressureModel; 3] =
        [PressureModel::High, PressureModel::Middle, PressureModel::Low];

    #[test]
    fn volatile_sets_partition_the_file() {
        for model in MODELS {
            let t = TargetDesc::ia64_like(model);
            for class in RegClass::ALL {
                let vol: Vec<_> = t.volatiles(class).collect();
                let nonvol: Vec<_> = t.nonvolatiles(class).collect();
                assert_eq!(vol.len() + nonvol.len(), t.num_regs(class));
                for r in &vol {
                    assert!(t.is_volatile(*r));
                    assert!(!nonvol.contains(r));
                }
                for r in &nonvol {
                    assert!(!t.is_volatile(*r));
                }
                let mut all: Vec<_> = vol.into_iter().chain(nonvol).collect();
                all.sort();
                assert_eq!(all, t.regs(class).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn arg_and_ret_registers_in_range_and_volatile() {
        for model in MODELS {
            for t in [TargetDesc::ia64_like(model), TargetDesc::x86_like(model)] {
                for class in RegClass::ALL {
                    let n = t.num_arg_regs(class);
                    assert_eq!(n, model.num_volatile());
                    for i in 0..n {
                        let r = t.arg_reg(class, i).unwrap();
                        assert!(r.index() < t.num_regs(class));
                        assert!(t.is_volatile(r));
                        assert_eq!(r.class(), class);
                    }
                    assert_eq!(t.arg_reg(class, n), None);
                    let ret = t.ret_reg(class);
                    assert!(ret.index() < t.num_regs(class));
                    assert!(t.is_volatile(ret));
                }
            }
        }
    }

    #[test]
    fn x86_byte_capability_is_exactly_the_first_four_int_regs() {
        let t = TargetDesc::x86_like(PressureModel::Middle);
        assert!(t.has_byte_restriction(RegClass::Int));
        for r in t.regs(RegClass::Int) {
            assert_eq!(t.is_byte_capable(r), r.index() < 4);
        }
        // Floats carry no byte restriction.
        assert!(!t.has_byte_restriction(RegClass::Float));
        assert_eq!(t.class(RegClass::Int).byte_regs, Some(4));
    }

    #[test]
    fn ia64_has_no_byte_restriction() {
        let t = TargetDesc::ia64_like(PressureModel::High);
        for class in RegClass::ALL {
            assert!(!t.has_byte_restriction(class));
            assert!(t.regs(class).all(|r| t.is_byte_capable(r)));
        }
    }

    #[test]
    fn x86_divides_through_r0() {
        let t = TargetDesc::x86_like(PressureModel::Middle);
        assert_eq!(t.div_reg, Some(PhysReg::int(0)));
        assert_eq!(TargetDesc::ia64_like(PressureModel::Middle).div_reg, None);
    }

    #[test]
    fn toy_splits_in_half() {
        let t = TargetDesc::toy(8);
        assert_eq!(t.num_regs(RegClass::Int), 8);
        assert_eq!(t.volatiles(RegClass::Int).count(), 4);
        assert_eq!(t.nonvolatiles(RegClass::Int).count(), 4);
        // Odd sizes round the volatile half down.
        let t3 = TargetDesc::toy(3);
        assert_eq!(t3.volatiles(RegClass::Int).count(), 1);
        assert_eq!(t3.nonvolatiles(RegClass::Int).count(), 2);
    }

    #[test]
    fn figure7_matches_the_paper() {
        let t = TargetDesc::figure7();
        assert_eq!(t.num_regs(RegClass::Int), 3);
        assert_eq!(t.arg_reg(RegClass::Int, 0), Some(PhysReg::int(0)));
        assert_eq!(t.arg_reg(RegClass::Int, 1), Some(PhysReg::int(1)));
        assert_eq!(t.ret_reg(RegClass::Int), PhysReg::int(0));
        assert!(!t.is_volatile(PhysReg::int(2)));
        assert_eq!(t.paired_load, PairedLoadRule::Parity);
    }

    #[test]
    fn names_round_trip_through_the_models() {
        assert_eq!(TargetDesc::ia64_like(PressureModel::High).name, "ia64-16");
        assert_eq!(TargetDesc::x86_like(PressureModel::Low).name, "x86-32");
        assert_eq!(TargetDesc::figure7().name, "figure7");
    }
}
