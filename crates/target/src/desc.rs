//! Target descriptions: register files, calling convention, and the
//! irregularities the paper's preferences exploit.
//!
//! A [`TargetDesc`] is built through [`TargetBuilder`](crate::TargetBuilder)
//! (see `builder.rs`), which validates every class and makes a missing
//! class unrepresentable: a finished description always carries one
//! [`ClassDesc`] per [`RegClass`]. Ready-made descriptions for the paper's
//! evaluation machines live on the inherent constructors below and in the
//! [`TargetRegistry`](crate::TargetRegistry).

use crate::error::TargetError;
use crate::{PairRule, PairedLoadRule, PhysReg, PressureModel};
use pdgc_ir::RegClass;

/// Per-class register-file description.
///
/// Fields are private and validated by the builder; the accessors below
/// are the only way to observe them, so every published `ClassDesc` is
/// internally consistent (volatile mask within the file, byte prefix
/// within the file, positive pair stride).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassDesc {
    pub(crate) num_regs: usize,
    /// Bit `i` set ⇔ register `i` is volatile (caller-saved).
    pub(crate) volatile_mask: u64,
    /// When `Some(n)`, only registers `0..n` are byte-capable (the
    /// paper's §3.1 limited-register-usage example).
    pub(crate) byte_regs: Option<u8>,
    /// How this class fuses paired loads; `None` means the class has no
    /// paired-load instruction at all.
    pub(crate) pair: Option<PairRule>,
    /// Optional register names (empty ⇒ the default `r{i}`/`f{i}`).
    pub(crate) reg_names: Vec<String>,
}

impl ClassDesc {
    /// Registers in the file.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// How many registers are volatile (caller-saved).
    pub fn num_volatile(&self) -> usize {
        self.volatile_mask.count_ones() as usize
    }

    /// Whether register `i` is volatile.
    pub fn is_volatile(&self, i: usize) -> bool {
        i < 64 && self.volatile_mask & (1 << i) != 0
    }

    /// Limited register usage: when `Some(n)`, only registers `0..n` are
    /// byte-capable; `None` means no restriction.
    pub fn byte_regs(&self) -> Option<u8> {
        self.byte_regs
    }

    /// The class's paired-load rule, or `None` when it has no paired
    /// load.
    pub fn pair(&self) -> Option<&PairRule> {
        self.pair.as_ref()
    }

    /// The name of register `i`, when the target names its registers.
    pub fn reg_name(&self, i: usize) -> Option<&str> {
        self.reg_names.get(i).map(String::as_str)
    }
}

/// A target and its ABI: one register file per class, a
/// volatile/non-volatile split, argument and return registers, an
/// optional dedicated division register, and per-class paired-load rules.
///
/// The convention is uniform across the modelled targets: arguments are
/// passed in the volatile registers in index order (per class), and
/// results return in the lowest-indexed volatile register of the result's
/// class (register 0 on every shipped target).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TargetDesc {
    /// Target name, as accepted by the CLI (e.g. `ia64-24`).
    pub name: String,
    /// Dedicated division register (the paper's x86 example of a
    /// dedicated-register operation): when `Some`, integer `div`
    /// results are pinned to it.
    pub div_reg: Option<PhysReg>,
    pub(crate) classes: Vec<ClassDesc>,
}

impl TargetDesc {
    /// Starts a builder for a target named `name`.
    pub fn builder(name: impl Into<String>) -> crate::TargetBuilder {
        crate::TargetBuilder::new(name)
    }

    /// An IA-64-like target: parity-paired loads at stride 8, no byte
    /// restriction, no dedicated registers, file size per `model`.
    pub fn ia64_like(model: PressureModel) -> TargetDesc {
        let spec = || {
            crate::ClassSpec::new(model.num_regs())
                .volatile_prefix(model.num_volatile())
                .pair(PairRule::new(PairedLoadRule::Parity, 8))
        };
        TargetDesc::builder(format!("ia64-{}", model.num_regs()))
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .expect("ia64-like description is statically valid")
    }

    /// An x86-like target: only the first four integer registers are
    /// byte-capable, division results are pinned to `r0` (rax-style),
    /// and paired loads require sequential destinations.
    pub fn x86_like(model: PressureModel) -> TargetDesc {
        let spec = || {
            crate::ClassSpec::new(model.num_regs())
                .volatile_prefix(model.num_volatile())
                .pair(PairRule::new(PairedLoadRule::Sequential, 8))
        };
        TargetDesc::builder(format!("x86-{}", model.num_regs()))
            .class(RegClass::Int, spec().byte_regs(4))
            .class(RegClass::Float, spec())
            .div_reg(PhysReg::int(0))
            .finish()
            .expect("x86-like description is statically valid")
    }

    /// A tiny regular target with `n` registers per class, the first
    /// `n / 2` volatile — for unit tests that need controlled pressure.
    pub fn toy(n: u8) -> TargetDesc {
        let spec = || {
            crate::ClassSpec::new(n as usize)
                .volatile_prefix((n as usize / 2).max(1))
                .pair(PairRule::new(PairedLoadRule::Parity, 8))
        };
        TargetDesc::builder(format!("toy-{n}"))
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .expect("toy description is statically valid")
    }

    /// The three-register machine of the paper's Figure 7: `r0` is the
    /// first argument and return register, `r1` the second argument
    /// register (both volatile), and `r2` is non-volatile. Paired loads
    /// follow the different-parity rule. (The paper numbers these
    /// r1/r2/r3; we index from zero.)
    pub fn figure7() -> TargetDesc {
        let spec = || {
            crate::ClassSpec::new(3)
                .volatile_prefix(2)
                .pair(PairRule::new(PairedLoadRule::Parity, 8))
        };
        TargetDesc::builder("figure7")
            .class(RegClass::Int, spec())
            .class(RegClass::Float, spec())
            .finish()
            .expect("figure7 description is statically valid")
    }

    /// A 16-register RISC-like target with MIPS-flavoured register
    /// names: `a0..a5` volatile (argument) registers, `s0..s9`
    /// callee-saved. Paired loads write a sequential register pair and
    /// fuse quadword-aligned stride-16 accesses.
    pub fn risc16() -> TargetDesc {
        let int_names: Vec<String> = (0..6)
            .map(|i| format!("a{i}"))
            .chain((0..10).map(|i| format!("s{i}")))
            .collect();
        let float_names: Vec<String> = (0..16).map(|i| format!("fa{i}")).collect();
        let spec = || {
            crate::ClassSpec::new(16)
                .volatile_prefix(6)
                .pair(PairRule::new(PairedLoadRule::Sequential, 16).with_align(16))
        };
        TargetDesc::builder("risc16")
            .class(RegClass::Int, spec().named(int_names))
            .class(RegClass::Float, spec().named(float_names))
            .finish()
            .expect("risc16 description is statically valid")
    }

    /// A constrained 8-register high-pressure target: half the file
    /// volatile, only the first two integer registers byte-capable,
    /// division pinned to `r0`, parity-paired integer loads — and no
    /// paired load at all in the float file.
    pub fn tight8() -> TargetDesc {
        TargetDesc::builder("tight8")
            .class(
                RegClass::Int,
                crate::ClassSpec::new(8)
                    .volatile_prefix(4)
                    .byte_regs(2)
                    .pair(PairRule::new(PairedLoadRule::Parity, 8)),
            )
            .class(RegClass::Float, crate::ClassSpec::new(8).volatile_prefix(4))
            .div_reg(PhysReg::int(0))
            .finish()
            .expect("tight8 description is statically valid")
    }

    /// The register-file description of `class`.
    ///
    /// Builder-made descriptions always carry every class, so this
    /// cannot fail for them; [`TargetDesc::try_class`] is the fallible
    /// spelling.
    pub fn class(&self, class: RegClass) -> &ClassDesc {
        self.try_class(class)
            .expect("builder-made targets describe every register class")
    }

    /// The register-file description of `class`, or a typed error when
    /// the description carries none.
    pub fn try_class(&self, class: RegClass) -> Result<&ClassDesc, TargetError> {
        self.classes
            .get(class.index())
            .ok_or(TargetError::UnknownClass(class))
    }

    /// The paired-load rule of `class`, or `None` when the class has no
    /// paired load.
    pub fn pair_rule(&self, class: RegClass) -> Option<&PairRule> {
        self.class(class).pair()
    }

    /// Whether a paired load may write its first word to `dst1` and its
    /// second to `dst2` on this target: the destinations' class must
    /// have a pair rule, and the rule must admit the pair.
    pub fn pair_allows(&self, dst1: PhysReg, dst2: PhysReg) -> bool {
        dst1.class() == dst2.class()
            && self
                .pair_rule(dst1.class())
                .is_some_and(|r| r.allows(dst1, dst2))
    }

    /// Registers in `class`'s file.
    pub fn num_regs(&self, class: RegClass) -> usize {
        self.class(class).num_regs
    }

    /// All registers of `class`, in index order.
    pub fn regs(&self, class: RegClass) -> impl Iterator<Item = PhysReg> {
        (0..self.num_regs(class)).map(move |i| PhysReg::new(class, i as u8))
    }

    /// Whether `reg` is volatile (caller-saved).
    pub fn is_volatile(&self, reg: PhysReg) -> bool {
        self.class(reg.class()).is_volatile(reg.index())
    }

    /// The volatile registers of `class`, in index order.
    pub fn volatiles(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        let c = self.class(class);
        (0..c.num_regs)
            .filter(move |&i| c.is_volatile(i))
            .map(move |i| PhysReg::new(class, i as u8))
    }

    /// The non-volatile registers of `class`, in index order.
    pub fn nonvolatiles(&self, class: RegClass) -> impl Iterator<Item = PhysReg> + '_ {
        let c = self.class(class);
        (0..c.num_regs)
            .filter(move |&i| !c.is_volatile(i))
            .map(move |i| PhysReg::new(class, i as u8))
    }

    /// The register carrying the `i`-th argument of `class` (per-class
    /// indexing): the `i`-th volatile register, or `None` when the
    /// convention runs out.
    pub fn arg_reg(&self, class: RegClass, i: usize) -> Option<PhysReg> {
        self.volatiles(class).nth(i)
    }

    /// How many arguments of `class` the convention can carry: all the
    /// class's volatile registers.
    pub fn num_arg_regs(&self, class: RegClass) -> usize {
        self.class(class).num_volatile()
    }

    /// The register in which a result of `class` is returned: the
    /// lowest-indexed volatile register (register 0 on every shipped
    /// target; the builder guarantees at least one volatile exists).
    pub fn ret_reg(&self, class: RegClass) -> PhysReg {
        self.volatiles(class)
            .next()
            .expect("builder guarantees at least one volatile register")
    }

    /// Whether a byte load may target `reg` without an explicit
    /// zero-extension.
    pub fn is_byte_capable(&self, reg: PhysReg) -> bool {
        match self.class(reg.class()).byte_regs {
            Some(n) => reg.index() < n as usize,
            None => true,
        }
    }

    /// Whether `class` restricts which registers byte operations may
    /// use (the paper's *limited register usage*).
    pub fn has_byte_restriction(&self, class: RegClass) -> bool {
        self.class(class).byte_regs.is_some()
    }

    /// The display name of `reg` on this target: the class's register
    /// name when it has one, the default `r{i}`/`f{i}` spelling
    /// otherwise.
    pub fn reg_name(&self, reg: PhysReg) -> String {
        match self.class(reg.class()).reg_name(reg.index()) {
            Some(name) => name.to_string(),
            None => reg.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [PressureModel; 3] =
        [PressureModel::High, PressureModel::Middle, PressureModel::Low];

    #[test]
    fn volatile_sets_partition_the_file() {
        for model in MODELS {
            let t = TargetDesc::ia64_like(model);
            for class in RegClass::ALL {
                let vol: Vec<_> = t.volatiles(class).collect();
                let nonvol: Vec<_> = t.nonvolatiles(class).collect();
                assert_eq!(vol.len() + nonvol.len(), t.num_regs(class));
                for r in &vol {
                    assert!(t.is_volatile(*r));
                    assert!(!nonvol.contains(r));
                }
                for r in &nonvol {
                    assert!(!t.is_volatile(*r));
                }
                let mut all: Vec<_> = vol.into_iter().chain(nonvol).collect();
                all.sort();
                assert_eq!(all, t.regs(class).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn arg_and_ret_registers_in_range_and_volatile() {
        for model in MODELS {
            for t in [TargetDesc::ia64_like(model), TargetDesc::x86_like(model)] {
                for class in RegClass::ALL {
                    let n = t.num_arg_regs(class);
                    assert_eq!(n, model.num_volatile());
                    for i in 0..n {
                        let r = t.arg_reg(class, i).unwrap();
                        assert!(r.index() < t.num_regs(class));
                        assert!(t.is_volatile(r));
                        assert_eq!(r.class(), class);
                    }
                    assert_eq!(t.arg_reg(class, n), None);
                    let ret = t.ret_reg(class);
                    assert!(ret.index() < t.num_regs(class));
                    assert!(t.is_volatile(ret));
                }
            }
        }
    }

    #[test]
    fn x86_byte_capability_is_exactly_the_first_four_int_regs() {
        let t = TargetDesc::x86_like(PressureModel::Middle);
        assert!(t.has_byte_restriction(RegClass::Int));
        for r in t.regs(RegClass::Int) {
            assert_eq!(t.is_byte_capable(r), r.index() < 4);
        }
        // Floats carry no byte restriction.
        assert!(!t.has_byte_restriction(RegClass::Float));
        assert_eq!(t.class(RegClass::Int).byte_regs(), Some(4));
    }

    #[test]
    fn ia64_has_no_byte_restriction() {
        let t = TargetDesc::ia64_like(PressureModel::High);
        for class in RegClass::ALL {
            assert!(!t.has_byte_restriction(class));
            assert!(t.regs(class).all(|r| t.is_byte_capable(r)));
        }
    }

    #[test]
    fn x86_divides_through_r0() {
        let t = TargetDesc::x86_like(PressureModel::Middle);
        assert_eq!(t.div_reg, Some(PhysReg::int(0)));
        assert_eq!(TargetDesc::ia64_like(PressureModel::Middle).div_reg, None);
    }

    #[test]
    fn toy_splits_in_half() {
        let t = TargetDesc::toy(8);
        assert_eq!(t.num_regs(RegClass::Int), 8);
        assert_eq!(t.volatiles(RegClass::Int).count(), 4);
        assert_eq!(t.nonvolatiles(RegClass::Int).count(), 4);
        // Odd sizes round the volatile half down.
        let t3 = TargetDesc::toy(3);
        assert_eq!(t3.volatiles(RegClass::Int).count(), 1);
        assert_eq!(t3.nonvolatiles(RegClass::Int).count(), 2);
    }

    #[test]
    fn figure7_matches_the_paper() {
        let t = TargetDesc::figure7();
        assert_eq!(t.num_regs(RegClass::Int), 3);
        assert_eq!(t.arg_reg(RegClass::Int, 0), Some(PhysReg::int(0)));
        assert_eq!(t.arg_reg(RegClass::Int, 1), Some(PhysReg::int(1)));
        assert_eq!(t.ret_reg(RegClass::Int), PhysReg::int(0));
        assert!(!t.is_volatile(PhysReg::int(2)));
        let rule = t.pair_rule(RegClass::Int).unwrap();
        assert_eq!(rule.dest(), PairedLoadRule::Parity);
        assert_eq!(rule.stride(), 8);
    }

    #[test]
    fn names_round_trip_through_the_models() {
        assert_eq!(TargetDesc::ia64_like(PressureModel::High).name, "ia64-16");
        assert_eq!(TargetDesc::x86_like(PressureModel::Low).name, "x86-32");
        assert_eq!(TargetDesc::figure7().name, "figure7");
    }

    #[test]
    fn pair_allows_consults_the_class_rule() {
        let ia64 = TargetDesc::ia64_like(PressureModel::Middle);
        assert!(ia64.pair_allows(PhysReg::int(2), PhysReg::int(1)));
        assert!(!ia64.pair_allows(PhysReg::int(1), PhysReg::float(2)));
        // tight8 pairs integers but has no float paired load at all.
        let t8 = TargetDesc::tight8();
        assert!(t8.pair_allows(PhysReg::int(1), PhysReg::int(2)));
        assert!(!t8.pair_allows(PhysReg::float(1), PhysReg::float(2)));
        assert!(t8.pair_rule(RegClass::Float).is_none());
    }

    #[test]
    fn risc16_names_its_registers() {
        let t = TargetDesc::risc16();
        assert_eq!(t.reg_name(PhysReg::int(0)), "a0");
        assert_eq!(t.reg_name(PhysReg::int(5)), "a5");
        assert_eq!(t.reg_name(PhysReg::int(6)), "s0");
        assert_eq!(t.reg_name(PhysReg::int(15)), "s9");
        assert_eq!(t.reg_name(PhysReg::float(3)), "fa3");
        // Volatiles are exactly the argument registers a0..a5.
        assert_eq!(t.num_arg_regs(RegClass::Int), 6);
        assert!(t.is_volatile(PhysReg::int(5)));
        assert!(!t.is_volatile(PhysReg::int(6)));
        // The pair rule asks for aligned stride-16 quadwords.
        let rule = t.pair_rule(RegClass::Int).unwrap();
        assert_eq!(rule.stride(), 16);
        assert_eq!(rule.alignment(), 16);
        // Unnamed targets fall back to the default spelling.
        let ia64 = TargetDesc::ia64_like(PressureModel::Middle);
        assert_eq!(ia64.reg_name(PhysReg::int(3)), "r3");
    }

    #[test]
    fn tight8_is_small_and_restricted() {
        let t = TargetDesc::tight8();
        assert_eq!(t.num_regs(RegClass::Int), 8);
        assert_eq!(t.volatiles(RegClass::Int).count(), 4);
        assert_eq!(t.class(RegClass::Int).byte_regs(), Some(2));
        assert_eq!(t.div_reg, Some(PhysReg::int(0)));
    }
}
