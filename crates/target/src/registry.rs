//! The target registry: named targets, one lookup point for the CLI,
//! the bench drivers, and the per-target test matrix.

use crate::error::TargetError;
use crate::{PressureModel, TargetDesc};

/// A set of named [`TargetDesc`]s. [`TargetRegistry::builtin`] carries
/// every shipped target; [`TargetRegistry::register`] adds custom ones.
#[derive(Clone, Debug, Default)]
pub struct TargetRegistry {
    targets: Vec<TargetDesc>,
}

impl TargetRegistry {
    /// An empty registry.
    pub fn new() -> TargetRegistry {
        TargetRegistry::default()
    }

    /// The shipped targets: the paper's evaluation machines under all
    /// three pressure models (`ia64-*`, `x86-*`), the Figure 7
    /// three-register machine, the named-register RISC-like `risc16`,
    /// and the constrained high-pressure `tight8`.
    pub fn builtin() -> TargetRegistry {
        let mut r = TargetRegistry::new();
        for model in [PressureModel::High, PressureModel::Middle, PressureModel::Low] {
            r.register(TargetDesc::ia64_like(model))
                .expect("builtin names are unique");
            r.register(TargetDesc::x86_like(model))
                .expect("builtin names are unique");
        }
        for t in [TargetDesc::figure7(), TargetDesc::risc16(), TargetDesc::tight8()] {
            r.register(t).expect("builtin names are unique");
        }
        r
    }

    /// Adds a target; its name must be new.
    pub fn register(&mut self, target: TargetDesc) -> Result<(), TargetError> {
        if self.get(&target.name).is_some() {
            return Err(TargetError::DuplicateTarget(target.name.clone()));
        }
        self.targets.push(target);
        Ok(())
    }

    /// Looks a target up by name.
    pub fn get(&self, name: &str) -> Option<&TargetDesc> {
        self.targets.iter().find(|t| t.name == name)
    }

    /// Looks a target up by name, with a typed error naming every
    /// registered target on failure.
    pub fn resolve(&self, name: &str) -> Result<&TargetDesc, TargetError> {
        self.get(name).ok_or_else(|| TargetError::UnknownTarget {
            name: name.to_string(),
            known: self.names().iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.targets.iter().map(|t| t.name.as_str()).collect()
    }

    /// Every registered target, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &TargetDesc> {
        self.targets.iter()
    }

    /// How many targets are registered.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_the_shipped_targets() {
        let r = TargetRegistry::builtin();
        assert_eq!(
            r.names(),
            vec![
                "ia64-16", "x86-16", "ia64-24", "x86-24", "ia64-32", "x86-32", "figure7",
                "risc16", "tight8",
            ]
        );
        assert!(r.len() >= 3);
        assert_eq!(r.get("ia64-24").unwrap(), &TargetDesc::ia64_like(PressureModel::Middle));
    }

    #[test]
    fn resolve_reports_every_known_name() {
        let r = TargetRegistry::builtin();
        assert_eq!(r.resolve("risc16").unwrap().name, "risc16");
        let err = r.resolve("vax").unwrap_err();
        match err {
            TargetError::UnknownTarget { name, known } => {
                assert_eq!(name, "vax");
                assert_eq!(known.len(), r.len());
            }
            other => panic!("expected UnknownTarget, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = TargetRegistry::new();
        assert!(r.is_empty());
        r.register(TargetDesc::toy(4)).unwrap();
        let err = r.register(TargetDesc::toy(4)).unwrap_err();
        assert_eq!(err, TargetError::DuplicateTarget("toy-4".into()));
        assert_eq!(r.len(), 1);
    }
}
