//! Typed errors for target construction and lookup.

use pdgc_ir::RegClass;
use std::fmt;

/// What can go wrong while building a [`TargetDesc`](crate::TargetDesc)
/// through the builder, registering it, or looking one up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TargetError {
    /// The builder was finished without describing this register class.
    MissingClass(RegClass),
    /// The description carries no register file for this class (lookup
    /// on a malformed description).
    UnknownClass(RegClass),
    /// A class was described with zero registers.
    NoRegisters(RegClass),
    /// A class was described with more registers than the volatile mask
    /// can carry.
    TooManyRegs {
        /// The offending class.
        class: RegClass,
        /// The requested file size.
        num_regs: usize,
        /// The maximum representable file size.
        max: usize,
    },
    /// A class has no volatile registers, so the convention has nowhere
    /// to pass arguments or return results.
    NoVolatiles(RegClass),
    /// The volatile mask names registers outside the class's file.
    VolatileOutOfRange(RegClass),
    /// The byte-capable prefix is larger than the class's file.
    ByteRegsOutOfRange(RegClass),
    /// A pair rule with a non-positive stride, alignment, or window.
    BadPairRule(RegClass),
    /// Register names were given but their count does not match the
    /// file size.
    NameCountMismatch {
        /// The offending class.
        class: RegClass,
        /// How many names were given.
        names: usize,
        /// The class's file size.
        num_regs: usize,
    },
    /// The dedicated division register lies outside its class's file.
    DivRegOutOfRange,
    /// A target with this name is already registered.
    DuplicateTarget(String),
    /// No registered target has this name.
    UnknownTarget {
        /// The requested name.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
}

impl fmt::Display for TargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetError::MissingClass(c) => {
                write!(f, "register class {c:?} was never described")
            }
            TargetError::UnknownClass(c) => {
                write!(f, "target carries no register file for class {c:?}")
            }
            TargetError::NoRegisters(c) => {
                write!(f, "class {c:?} has zero registers")
            }
            TargetError::TooManyRegs {
                class,
                num_regs,
                max,
            } => write!(
                f,
                "class {class:?} asks for {num_regs} registers; at most {max} are representable"
            ),
            TargetError::NoVolatiles(c) => write!(
                f,
                "class {c:?} has no volatile registers; the convention needs at least one"
            ),
            TargetError::VolatileOutOfRange(c) => write!(
                f,
                "class {c:?} marks registers outside its file as volatile"
            ),
            TargetError::ByteRegsOutOfRange(c) => write!(
                f,
                "class {c:?} has a byte-capable prefix larger than its file"
            ),
            TargetError::BadPairRule(c) => write!(
                f,
                "class {c:?} has a pair rule with a non-positive stride, alignment, or window"
            ),
            TargetError::NameCountMismatch {
                class,
                names,
                num_regs,
            } => write!(
                f,
                "class {class:?} was given {names} register names for {num_regs} registers"
            ),
            TargetError::DivRegOutOfRange => {
                write!(f, "the dedicated division register lies outside its class's file")
            }
            TargetError::DuplicateTarget(name) => {
                write!(f, "a target named `{name}` is already registered")
            }
            TargetError::UnknownTarget { name, known } => {
                write!(f, "unknown target `{name}`; registered targets: {}", known.join(", "))
            }
        }
    }
}

impl std::error::Error for TargetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_class_and_target() {
        let e = TargetError::MissingClass(RegClass::Float);
        assert!(e.to_string().contains("Float"));
        let e = TargetError::UnknownTarget {
            name: "m68k".into(),
            known: vec!["ia64-24".into(), "figure7".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("m68k"));
        assert!(msg.contains("ia64-24, figure7"));
    }
}
