//! A parser for the textual machine-code form produced by
//! [`MachFunction`]'s `Display` implementation — dual to it, so
//! post-allocation golden files and corpus round-trip checks are
//! possible.
//!
//! The grammar, line-oriented:
//!
//! ```text
//! fn NAME(int, float) -> int {   ; or no "-> class"
//!     ; frame: 2 slots           ; structure, not a comment
//!     ; saves: r9 f8             ; structure, not a comment
//! b0:
//!     r1 = r0                    ; copy
//!     r2 = 5                     ; iconst
//!     f0 = 1.5f                  ; fconst (inff, NaNf, -0f ok)
//!     r3 = [r0+8]                ; load (negative offsets: [r0+-8])
//!     r4 = byte [r0+0]           ; byte load
//!     r5, r6 = pair [r0+0], [r0+8]
//!     [r0+16] = r3               ; store
//!     r7 = add r3, r2            ; bin
//!     r7 = add r3, #3            ; bin with immediate
//!     r0 = call g(r0, f0)        ; result register optional
//!     r1 = frame[0]              ; spill reload
//!     frame[1] = r1              ; spill store
//!     goto b1
//!     if ne r1, r2 goto b1 else b2
//!     if ne r1, #0 goto b1 else b2
//!     ret
//! b1:
//! b2:
//!     ret
//! }
//! ```
//!
//! Registers are written `rN` (integer class) and `fN` (float class), so
//! the form is self-classifying and no inference is needed. The
//! `; frame:` and `; saves:` header lines are parsed as structure when
//! they appear before the first block label; everywhere else both `;`
//! and `//` start a comment (matching the IR parser). Callee names are
//! interned in order of appearance, which makes
//! `parse_mach_function(&m.to_string())` print back byte-identically
//! and re-parse to a structurally equal function.

use crate::{MInst, MachFunction, PhysReg};
use pdgc_ir::{validate_ident, BinOp, Block, CalleeId, CmpOp, FuncSig, RegClass};
use std::fmt;

/// A machine-code parse failure, with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachParseError {
    /// Line the error was found on (1-based; 0 = whole input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for MachParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mach parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MachParseError {}

macro_rules! merr {
    ($line:expr, $($arg:tt)*) => {
        return Err(MachParseError { line: $line, message: format!($($arg)*) })
    };
}

/// Strips a trailing comment (both `;` and `//` forms).
fn strip_comment(line: &str) -> &str {
    let end = match (line.find("//"), line.find(';')) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => return line,
    };
    &line[..end]
}

/// Parses the textual form of one allocated function.
///
/// # Errors
///
/// Returns a [`MachParseError`] on malformed syntax or out-of-range
/// block references.
pub fn parse_mach_function(text: &str) -> Result<MachFunction, MachParseError> {
    let mut mach = MachFunction {
        name: String::new(),
        sig: FuncSig::default(),
        blocks: Vec::new(),
        num_slots: 0,
        used_nonvolatiles: Vec::new(),
        callees: Vec::new(),
    };
    let mut saw_header = false;
    let mut saw_frame = false;
    let mut saw_saves = false;
    let mut closed_at: Option<usize> = None;
    let mut in_block = false;

    for (ln, raw) in text.lines().enumerate().map(|(i, l)| (i + 1, l)) {
        let trimmed = raw.trim();
        if let Some(end) = closed_at {
            if !strip_comment(trimmed).trim().is_empty() {
                merr!(ln, "trailing content after closing brace (line {end})");
            }
            continue;
        }
        // The `; frame:` / `; saves:` lines between the header and the
        // first block label are structure; elsewhere `;` starts a
        // comment.
        if saw_header && !in_block {
            if let Some(rest) = trimmed.strip_prefix("; frame:") {
                if saw_frame {
                    merr!(ln, "duplicate `; frame:` header");
                }
                saw_frame = true;
                let n = rest.trim().strip_suffix("slots").map(str::trim);
                mach.num_slots = n
                    .and_then(|x| x.parse().ok())
                    .ok_or_else(|| MachParseError {
                        line: ln,
                        message: format!("expected `; frame: N slots`, got `{trimmed}`"),
                    })?;
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix("; saves:") {
                if saw_saves {
                    merr!(ln, "duplicate `; saves:` header");
                }
                saw_saves = true;
                for r in rest.split_whitespace() {
                    mach.used_nonvolatiles.push(parse_reg(ln, r)?);
                }
                continue;
            }
        }
        let line = strip_comment(trimmed).trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            let (name, sig) = parse_header(ln, line)?;
            mach.name = name;
            mach.sig = sig;
            saw_header = true;
            continue;
        }
        if line == "}" {
            closed_at = Some(ln);
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let idx = parse_block(ln, label)?;
            if idx.index() != mach.blocks.len() {
                merr!(ln, "blocks must be declared in order; expected b{}", mach.blocks.len());
            }
            mach.blocks.push(Vec::new());
            in_block = true;
            continue;
        }
        if !in_block {
            merr!(ln, "instruction before any block label");
        }
        let inst = parse_line(ln, line, &mut mach.callees)?;
        mach.blocks.last_mut().unwrap().push(inst);
    }

    if !saw_header {
        merr!(0, "empty input");
    }
    if closed_at.is_none() {
        merr!(0, "missing closing brace");
    }
    if mach.blocks.is_empty() {
        merr!(0, "function has no blocks");
    }
    // Post-pass: every block reference must be in range.
    for (b, insts) in mach.blocks.iter().enumerate() {
        for inst in insts {
            let targets = match inst {
                MInst::Jump { target } => vec![*target],
                MInst::Branch {
                    then_dst, else_dst, ..
                }
                | MInst::BranchImm {
                    then_dst, else_dst, ..
                } => vec![*then_dst, *else_dst],
                _ => Vec::new(),
            };
            for t in targets {
                if t.index() >= mach.blocks.len() {
                    merr!(0, "block b{b} branches to out-of-range {t}");
                }
            }
        }
    }
    Ok(mach)
}

fn parse_header(ln: usize, line: &str) -> Result<(String, FuncSig), MachParseError> {
    let Some(rest) = line.strip_prefix("fn ") else {
        merr!(ln, "expected `fn NAME(...)`");
    };
    let Some(open) = rest.find('(') else {
        merr!(ln, "expected `(` in function header");
    };
    let name = rest[..open].trim().to_string();
    if let Err(e) = validate_ident(&name) {
        merr!(ln, "function name: {e}");
    }
    let Some(close) = rest.find(')') else {
        merr!(ln, "expected `)` in function header");
    };
    let mut params = Vec::new();
    let plist = &rest[open + 1..close];
    if !plist.trim().is_empty() {
        for part in plist.split(',') {
            params.push(parse_class(ln, part.trim())?);
        }
    }
    let tail = rest[close + 1..].trim();
    let ret = if let Some(r) = tail.strip_prefix("->") {
        let r = r.trim().trim_end_matches('{').trim();
        Some(parse_class(ln, r)?)
    } else if tail == "{" {
        None
    } else {
        merr!(ln, "expected `{{` or `-> class {{` after parameters");
    };
    Ok((name, FuncSig { params, ret }))
}

fn parse_class(ln: usize, s: &str) -> Result<RegClass, MachParseError> {
    match s {
        "int" => Ok(RegClass::Int),
        "float" => Ok(RegClass::Float),
        other => merr!(ln, "unknown register class `{other}`"),
    }
}

fn parse_reg(ln: usize, s: &str) -> Result<PhysReg, MachParseError> {
    let (class, digits) = if let Some(d) = s.strip_prefix('r') {
        (RegClass::Int, d)
    } else if let Some(d) = s.strip_prefix('f') {
        (RegClass::Float, d)
    } else {
        merr!(ln, "expected a register (`rN` or `fN`), got `{s}`");
    };
    let idx: u8 = digits.parse().map_err(|_| MachParseError {
        line: ln,
        message: format!("bad register `{s}`"),
    })?;
    Ok(PhysReg::new(class, idx))
}

fn parse_block(ln: usize, s: &str) -> Result<Block, MachParseError> {
    let Some(n) = s.strip_prefix('b') else {
        merr!(ln, "expected a block label, got `{s}`");
    };
    let i: usize = n.parse().map_err(|_| MachParseError {
        line: ln,
        message: format!("bad block `{s}`"),
    })?;
    Ok(Block::new(i))
}

fn parse_imm(ln: usize, s: &str) -> Result<i64, MachParseError> {
    let s = s.strip_prefix('#').unwrap_or(s);
    s.parse().map_err(|_| MachParseError {
        line: ln,
        message: format!("bad immediate `{s}`"),
    })
}

/// Parses a `[base+offset]` address (negative offsets spell `+-8`).
fn parse_addr(ln: usize, s: &str) -> Result<(PhysReg, i32), MachParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| MachParseError {
            line: ln,
            message: format!("expected `[base+offset]`, got `{s}`"),
        })?;
    let (b, o) = inner.split_once('+').ok_or_else(|| MachParseError {
        line: ln,
        message: format!("expected `base+offset` in `{s}`"),
    })?;
    let off: i32 = o.parse().map_err(|_| MachParseError {
        line: ln,
        message: format!("bad offset `{o}`"),
    })?;
    Ok((parse_reg(ln, b.trim())?, off))
}

fn parse_cmp(ln: usize, s: &str) -> Result<CmpOp, MachParseError> {
    match s {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => merr!(ln, "unknown comparison `{other}`"),
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn intern(callees: &mut Vec<String>, name: &str) -> CalleeId {
    if let Some(i) = callees.iter().position(|c| c == name) {
        CalleeId::new(i)
    } else {
        callees.push(name.to_string());
        CalleeId::new(callees.len() - 1)
    }
}

/// Parses a call tail: `NAME(reg, ...)`.
fn parse_call(
    ln: usize,
    s: &str,
    callees: &mut Vec<String>,
    ret_reg: Option<PhysReg>,
) -> Result<MInst, MachParseError> {
    let Some(open) = s.find('(') else {
        merr!(ln, "expected `(` in call");
    };
    let Some(close) = s.rfind(')') else {
        merr!(ln, "expected `)` in call");
    };
    let name = s[..open].trim();
    if let Err(e) = validate_ident(name) {
        merr!(ln, "callee name: {e}");
    }
    let mut arg_regs = Vec::new();
    let alist = &s[open + 1..close];
    if !alist.trim().is_empty() {
        for a in alist.split(',') {
            arg_regs.push(parse_reg(ln, a.trim())?);
        }
    }
    Ok(MInst::Call {
        callee: intern(callees, name),
        arg_regs,
        ret_reg,
    })
}

fn parse_line(ln: usize, line: &str, callees: &mut Vec<String>) -> Result<MInst, MachParseError> {
    // Control flow.
    if let Some(t) = line.strip_prefix("goto ") {
        return Ok(MInst::Jump {
            target: parse_block(ln, t.trim())?,
        });
    }
    if line == "ret" {
        return Ok(MInst::Ret);
    }
    if let Some(rest) = line.strip_prefix("if ") {
        let Some((cond, targets)) = rest.split_once(" goto ") else {
            merr!(ln, "expected `goto` in branch");
        };
        let Some((then_s, else_s)) = targets.split_once(" else ") else {
            merr!(ln, "expected `else` in branch");
        };
        let mut it = cond.splitn(2, ' ');
        let op = parse_cmp(ln, it.next().unwrap_or(""))?;
        let operands = it.next().unwrap_or("");
        let Some((lhs_s, rhs_s)) = operands.split_once(',') else {
            merr!(ln, "expected two branch operands");
        };
        let lhs = parse_reg(ln, lhs_s.trim())?;
        let rhs_s = rhs_s.trim();
        let then_dst = parse_block(ln, then_s.trim())?;
        let else_dst = parse_block(ln, else_s.trim())?;
        return Ok(if let Some(imm) = rhs_s.strip_prefix('#') {
            MInst::BranchImm {
                op,
                lhs,
                imm: parse_imm(ln, imm)?,
                then_dst,
                else_dst,
            }
        } else {
            MInst::Branch {
                op,
                lhs,
                rhs: parse_reg(ln, rhs_s)?,
                then_dst,
                else_dst,
            }
        });
    }
    // Void call.
    if let Some(c) = line.strip_prefix("call ") {
        return parse_call(ln, c, callees, None);
    }
    // Stores: `[base+off] = reg`, `frame[slot] = reg`.
    if line.starts_with('[') || line.starts_with("frame[") {
        let Some((addr_s, src_s)) = line.split_once('=') else {
            merr!(ln, "expected `=` in store");
        };
        let (addr_s, src_s) = (addr_s.trim(), src_s.trim());
        let src = parse_reg(ln, src_s)?;
        if let Some(slot_s) = addr_s.strip_prefix("frame[") {
            let slot: u32 = slot_s
                .strip_suffix(']')
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| MachParseError {
                    line: ln,
                    message: format!("bad frame slot in `{addr_s}`"),
                })?;
            return Ok(MInst::SpillStore { src, slot });
        }
        let (base, offset) = parse_addr(ln, addr_s)?;
        return Ok(MInst::Store { src, base, offset });
    }

    // Everything else defines registers: `REG[, REG] = RHS`.
    let Some((lhs_s, rhs_s)) = line.split_once('=') else {
        merr!(ln, "unrecognized instruction `{line}`");
    };
    let (lhs_s, rhs) = (lhs_s.trim(), rhs_s.trim());

    // Paired load: `r1, r2 = pair [r0+0], [r0+8]`.
    if let Some((d1, d2)) = lhs_s.split_once(',') {
        let Some(addrs) = rhs.strip_prefix("pair ") else {
            merr!(ln, "two destinations require a `pair` load");
        };
        let dst1 = parse_reg(ln, d1.trim())?;
        let dst2 = parse_reg(ln, d2.trim())?;
        let Some((a1, a2)) = addrs.split_once("], ") else {
            merr!(ln, "expected two addresses in `pair`");
        };
        let (base, offset) = parse_addr(ln, &format!("{}]", a1.trim()))?;
        let (base2, offset2) = parse_addr(ln, a2.trim())?;
        if base2 != base {
            merr!(ln, "paired load reads from two different bases");
        }
        return Ok(MInst::LoadPair {
            dst1,
            dst2,
            base,
            offset,
            offset2,
        });
    }

    let dst = parse_reg(ln, lhs_s)?;
    // Call with result.
    if let Some(c) = rhs.strip_prefix("call ") {
        return parse_call(ln, c, callees, Some(dst));
    }
    // Spill reload.
    if let Some(slot_s) = rhs.strip_prefix("frame[") {
        let slot: u32 = slot_s
            .strip_suffix(']')
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| MachParseError {
                line: ln,
                message: format!("bad frame slot in `{rhs}`"),
            })?;
        return Ok(MInst::SpillLoad { dst, slot });
    }
    // Byte load.
    if let Some(a) = rhs.strip_prefix("byte ") {
        let (base, offset) = parse_addr(ln, a.trim())?;
        return Ok(MInst::Load8 { dst, base, offset });
    }
    // Word load.
    if rhs.starts_with('[') {
        let (base, offset) = parse_addr(ln, rhs)?;
        return Ok(MInst::Load { dst, base, offset });
    }
    // Binary op.
    let mut it = rhs.splitn(2, ' ');
    let head = it.next().unwrap_or("");
    if let Some(op) = parse_binop(head) {
        let operands = it.next().unwrap_or("");
        let Some((a, b)) = operands.split_once(',') else {
            merr!(ln, "expected two operands for `{head}`");
        };
        let lhs = parse_reg(ln, a.trim())?;
        let b = b.trim();
        return Ok(if let Some(imm) = b.strip_prefix('#') {
            MInst::BinImm {
                op,
                dst,
                lhs,
                imm: parse_imm(ln, imm)?,
            }
        } else {
            MInst::Bin {
                op,
                dst,
                lhs,
                rhs: parse_reg(ln, b)?,
            }
        });
    }
    // Float constant: `1.5f` (also `inff`, `NaNf`, `-0f`). Register
    // names (`f3`) never end in `f`, so the suffix is unambiguous.
    if let Some(f) = rhs.strip_suffix('f') {
        if let Ok(v) = f.parse::<f64>() {
            return Ok(MInst::Fconst { dst, value: v });
        }
        if f.starts_with(|c: char| c.is_ascii_digit() || matches!(c, '-' | '+' | '.')) {
            merr!(ln, "bad float constant `{rhs}`");
        }
    }
    // Integer constant.
    if let Ok(v) = rhs.parse::<i64>() {
        return Ok(MInst::Iconst { dst, value: v });
    }
    // Copy.
    if (rhs.starts_with('r') || rhs.starts_with('f')) && !rhs.contains(' ') {
        return Ok(MInst::Copy {
            dst,
            src: parse_reg(ln, rhs)?,
        });
    }
    merr!(ln, "unrecognized right-hand side `{rhs}`")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: &MachFunction) {
        let text = m.to_string();
        let parsed = parse_mach_function(&text)
            .unwrap_or_else(|e| panic!("reparse of {} failed: {e}\n{text}", m.name));
        assert_eq!(&parsed, m, "round-trip mismatch for {}\n{text}", m.name);
        assert_eq!(parsed.to_string(), text, "print-parse-print not a fixpoint");
    }

    fn sample() -> MachFunction {
        MachFunction {
            name: "f".into(),
            sig: FuncSig {
                params: vec![RegClass::Int, RegClass::Float],
                ret: Some(RegClass::Int),
            },
            blocks: vec![
                vec![
                    MInst::LoadPair {
                        dst1: PhysReg::int(1),
                        dst2: PhysReg::int(2),
                        base: PhysReg::int(0),
                        offset: -8,
                        offset2: 0,
                    },
                    MInst::Copy {
                        dst: PhysReg::float(1),
                        src: PhysReg::float(0),
                    },
                    MInst::Fconst {
                        dst: PhysReg::float(2),
                        value: 0.5,
                    },
                    MInst::Bin {
                        op: BinOp::FMul,
                        dst: PhysReg::float(1),
                        lhs: PhysReg::float(1),
                        rhs: PhysReg::float(2),
                    },
                    MInst::Iconst {
                        dst: PhysReg::int(3),
                        value: -7,
                    },
                    MInst::BinImm {
                        op: BinOp::Shl,
                        dst: PhysReg::int(3),
                        lhs: PhysReg::int(3),
                        imm: 2,
                    },
                    MInst::Load8 {
                        dst: PhysReg::int(4),
                        base: PhysReg::int(0),
                        offset: 3,
                    },
                    MInst::Store {
                        src: PhysReg::int(4),
                        base: PhysReg::int(0),
                        offset: 16,
                    },
                    MInst::SpillStore {
                        src: PhysReg::int(1),
                        slot: 0,
                    },
                    MInst::Call {
                        callee: CalleeId::new(0),
                        arg_regs: vec![PhysReg::int(1), PhysReg::float(1)],
                        ret_reg: Some(PhysReg::int(0)),
                    },
                    MInst::SpillLoad {
                        dst: PhysReg::int(1),
                        slot: 0,
                    },
                    MInst::BranchImm {
                        op: CmpOp::Ne,
                        lhs: PhysReg::int(1),
                        imm: 0,
                        then_dst: Block::new(1),
                        else_dst: Block::new(2),
                    },
                ],
                vec![
                    MInst::Load {
                        dst: PhysReg::int(0),
                        base: PhysReg::int(1),
                        offset: 0,
                    },
                    MInst::Branch {
                        op: CmpOp::Lt,
                        lhs: PhysReg::int(0),
                        rhs: PhysReg::int(3),
                        then_dst: Block::new(1),
                        else_dst: Block::new(2),
                    },
                ],
                vec![
                    MInst::Call {
                        callee: CalleeId::new(1),
                        arg_regs: vec![],
                        ret_reg: None,
                    },
                    MInst::Jump {
                        target: Block::new(3),
                    },
                ],
                vec![MInst::Ret],
            ],
            num_slots: 1,
            used_nonvolatiles: vec![PhysReg::int(2), PhysReg::float(1)],
            callees: vec!["g".into(), "log".into()],
        }
    }

    #[test]
    fn roundtrip_every_minst_variant() {
        roundtrip(&sample());
    }

    #[test]
    fn roundtrip_minimal_function() {
        let m = MachFunction {
            name: "nop".into(),
            sig: FuncSig::default(),
            blocks: vec![vec![MInst::Ret]],
            num_slots: 0,
            used_nonvolatiles: vec![],
            callees: vec![],
        };
        let text = m.to_string();
        assert!(!text.contains("frame:"));
        assert!(!text.contains("saves:"));
        roundtrip(&m);
    }

    #[test]
    fn frame_and_saves_parse_as_structure() {
        let m = parse_mach_function(
            "fn f() {\n    ; frame: 3 slots\n    ; saves: r9 f8\nb0:\n    ret\n}",
        )
        .unwrap();
        assert_eq!(m.num_slots, 3);
        assert_eq!(m.used_nonvolatiles, vec![PhysReg::int(9), PhysReg::float(8)]);
    }

    #[test]
    fn comments_are_stripped_in_both_forms() {
        let m = parse_mach_function(
            "fn f() { // header comment\nb0:\n    r0 = 1 ; trailing\n    // full line\n    ; also full line\n    ret\n}",
        )
        .unwrap();
        assert_eq!(m.blocks[0].len(), 2);
    }

    #[test]
    fn nonfinite_float_constants_roundtrip() {
        for (text, check) in [
            ("inff", f64::is_infinite as fn(f64) -> bool),
            ("NaNf", f64::is_nan),
            ("-0f", f64::is_sign_negative),
        ] {
            let src = format!("fn f() {{\nb0:\n    f0 = {text}\n    ret\n}}");
            let m = parse_mach_function(&src).unwrap();
            let MInst::Fconst { value, .. } = m.blocks[0][0] else {
                panic!("expected fconst from `{text}`");
            };
            assert!(check(value), "{text}");
            // The printed fixpoint (NaN breaks derived equality).
            let printed = m.to_string();
            assert!(printed.contains(&format!("f0 = {text}")));
            assert_eq!(parse_mach_function(&printed).unwrap().to_string(), printed);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_mach_function("fn f() {\nb0:\n    r0 = bogus r1\n}").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_mach_function("not machine code").unwrap_err();
        assert!(e.message.contains("fn"));
        let e = parse_mach_function("fn f() {\nb0:\n    ret\n").unwrap_err();
        assert!(e.message.contains("closing brace"));
        let e = parse_mach_function("fn f() {\nb0:\n    ret\n}\nfn g() {\n}").unwrap_err();
        assert!(e.message.contains("trailing content"));
        let e = parse_mach_function("fn f() {\nb0:\n    f0 = 1..5f\n    ret\n}").unwrap_err();
        assert!(e.message.contains("bad float constant"), "{e}");
    }

    #[test]
    fn structural_errors_are_rejected() {
        // Out-of-range branch target.
        let e = parse_mach_function("fn f() {\nb0:\n    goto b7\n}").unwrap_err();
        assert!(e.message.contains("out-of-range"), "{e}");
        // Blocks out of order.
        let e = parse_mach_function("fn f() {\nb1:\n    ret\n}").unwrap_err();
        assert!(e.message.contains("in order"), "{e}");
        // Mismatched pair bases.
        let e = parse_mach_function(
            "fn f() {\nb0:\n    r1, r2 = pair [r0+0], [r3+8]\n    ret\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("different bases"), "{e}");
        // Instruction before any label.
        let e = parse_mach_function("fn f() {\n    r0 = 1\nb0:\n    ret\n}").unwrap_err();
        assert!(e.message.contains("before any block"), "{e}");
        // Bad callee name.
        let e = parse_mach_function("fn f() {\nb0:\n    call 9g()\n    ret\n}").unwrap_err();
        assert!(e.message.contains("callee name"), "{e}");
    }

    #[test]
    fn callees_intern_in_appearance_order() {
        let m = parse_mach_function(
            "fn f() {\nb0:\n    call b_second()\n    call a_first()\n    call b_second()\n    ret\n}",
        )
        .unwrap();
        assert_eq!(m.callees, vec!["b_second".to_string(), "a_first".to_string()]);
    }
}
