//! The paper's register-pressure models and paired-load rules.

use crate::PhysReg;

/// The three register-file sizes of the paper's evaluation (§6): the
/// same workloads are allocated against 16, 24, and 32 registers per
/// class to vary pressure. Half of each file is volatile
/// (caller-saved), half non-volatile (callee-saved).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PressureModel {
    /// 32 registers per class: low pressure.
    Low,
    /// 24 registers per class: middle pressure.
    Middle,
    /// 16 registers per class: high pressure.
    High,
}

impl PressureModel {
    /// Registers per class under this model.
    pub fn num_regs(self) -> usize {
        match self {
            PressureModel::Low => 32,
            PressureModel::Middle => 24,
            PressureModel::High => 16,
        }
    }

    /// Volatile (caller-saved) registers per class: the lower half of
    /// the file.
    pub fn num_volatile(self) -> usize {
        self.num_regs() / 2
    }
}

/// Which destination-register pairs a fused paired load may write.
///
/// The rule is consulted as `allows(dst1, dst2)` where `dst1` receives
/// the lower-addressed word and `dst2` the higher.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PairedLoadRule {
    /// IA-64-like: the two destinations must be adjacent registers of
    /// different parity (indices differing by exactly one, in either
    /// order).
    Parity,
    /// Power/S390-like: the destinations must be the sequential pair
    /// `r`, `r+1`, in that order.
    Sequential,
}

impl PairedLoadRule {
    /// Whether a paired load may write its first word to `dst1` and its
    /// second to `dst2`.
    pub fn allows(self, dst1: PhysReg, dst2: PhysReg) -> bool {
        if dst1.class() != dst2.class() {
            return false;
        }
        match self {
            PairedLoadRule::Parity => dst1.index().abs_diff(dst2.index()) == 1,
            PairedLoadRule::Sequential => dst2.index() == dst1.index() + 1,
        }
    }
}

/// A class's complete paired-load description: the destination rule plus
/// the address shape (stride between the two words, required alignment of
/// the first word) and how far apart the two loads may sit in the
/// instruction stream and still fuse.
///
/// The old model was a single global rule with a hardcoded stride of 8
/// that only fused exactly-adjacent loads; carrying the stride, alignment,
/// and window here lets each register class of each target describe its
/// own pairing shape.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PairRule {
    dest: PairedLoadRule,
    stride: i32,
    align: i32,
    window: usize,
}

impl PairRule {
    /// A rule with the given destination constraint and address stride,
    /// no alignment requirement, and the default scan window of 4
    /// instructions.
    pub const fn new(dest: PairedLoadRule, stride: i32) -> PairRule {
        PairRule {
            dest,
            stride,
            align: 1,
            window: 4,
        }
    }

    /// Requires the first word's offset to be a multiple of `align`.
    pub const fn with_align(mut self, align: i32) -> PairRule {
        self.align = align;
        self
    }

    /// Sets how many instructions past the first load the fusion scan may
    /// look for the second (1 = adjacent only).
    pub const fn with_window(mut self, window: usize) -> PairRule {
        self.window = window;
        self
    }

    /// The destination-register constraint.
    pub fn dest(&self) -> PairedLoadRule {
        self.dest
    }

    /// The address stride between the two words.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// The required alignment of the first word's offset (1 = none).
    pub fn alignment(&self) -> i32 {
        self.align
    }

    /// The fusion scan window, in instructions past the first load.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether an offset satisfies the alignment requirement.
    pub fn aligned(&self, offset: i32) -> bool {
        self.align <= 1 || offset.rem_euclid(self.align) == 0
    }

    /// Whether a paired load under this rule may write its first word to
    /// `dst1` and its second to `dst2`.
    pub fn allows(&self, dst1: PhysReg, dst2: PhysReg) -> bool {
        self.dest.allows(dst1, dst2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes() {
        assert_eq!(PressureModel::High.num_regs(), 16);
        assert_eq!(PressureModel::Middle.num_regs(), 24);
        assert_eq!(PressureModel::Low.num_regs(), 32);
    }

    #[test]
    fn half_the_file_is_volatile() {
        for m in [PressureModel::High, PressureModel::Middle, PressureModel::Low] {
            assert_eq!(m.num_volatile() * 2, m.num_regs());
        }
    }

    #[test]
    fn parity_admits_adjacent_either_order() {
        let p = PairedLoadRule::Parity;
        assert!(p.allows(PhysReg::int(1), PhysReg::int(2)));
        assert!(p.allows(PhysReg::int(2), PhysReg::int(1)));
        assert!(!p.allows(PhysReg::int(1), PhysReg::int(3)));
        assert!(!p.allows(PhysReg::int(1), PhysReg::int(1)));
    }

    #[test]
    fn sequential_requires_r_then_r_plus_one() {
        let s = PairedLoadRule::Sequential;
        assert!(s.allows(PhysReg::int(4), PhysReg::int(5)));
        assert!(!s.allows(PhysReg::int(5), PhysReg::int(4)));
        assert!(!s.allows(PhysReg::int(4), PhysReg::int(6)));
    }

    #[test]
    fn rules_reject_cross_class_pairs() {
        for rule in [PairedLoadRule::Parity, PairedLoadRule::Sequential] {
            assert!(!rule.allows(PhysReg::int(0), PhysReg::float(1)));
        }
    }

    #[test]
    fn pair_rule_defaults_and_setters() {
        let r = PairRule::new(PairedLoadRule::Parity, 8);
        assert_eq!(r.stride(), 8);
        assert_eq!(r.alignment(), 1);
        assert_eq!(r.window(), 4);
        let r = PairRule::new(PairedLoadRule::Sequential, 16)
            .with_align(16)
            .with_window(2);
        assert_eq!(r.stride(), 16);
        assert_eq!(r.alignment(), 16);
        assert_eq!(r.window(), 2);
        assert_eq!(r.dest(), PairedLoadRule::Sequential);
    }

    #[test]
    fn alignment_checks_offsets() {
        let r = PairRule::new(PairedLoadRule::Parity, 16).with_align(16);
        assert!(r.aligned(0));
        assert!(r.aligned(32));
        assert!(!r.aligned(8));
        assert!(r.aligned(-16));
        assert!(!r.aligned(-8));
        // align 1 accepts everything.
        assert!(PairRule::new(PairedLoadRule::Parity, 8).aligned(3));
    }

    #[test]
    fn pair_rule_delegates_destination_check() {
        let r = PairRule::new(PairedLoadRule::Sequential, 8);
        assert!(r.allows(PhysReg::int(2), PhysReg::int(3)));
        assert!(!r.allows(PhysReg::int(3), PhysReg::int(2)));
    }
}
