//! The paper's register-pressure models and paired-load rules.

use crate::PhysReg;

/// The three register-file sizes of the paper's evaluation (§6): the
/// same workloads are allocated against 16, 24, and 32 registers per
/// class to vary pressure. Half of each file is volatile
/// (caller-saved), half non-volatile (callee-saved).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PressureModel {
    /// 32 registers per class: low pressure.
    Low,
    /// 24 registers per class: middle pressure.
    Middle,
    /// 16 registers per class: high pressure.
    High,
}

impl PressureModel {
    /// Registers per class under this model.
    pub fn num_regs(self) -> usize {
        match self {
            PressureModel::Low => 32,
            PressureModel::Middle => 24,
            PressureModel::High => 16,
        }
    }

    /// Volatile (caller-saved) registers per class: the lower half of
    /// the file.
    pub fn num_volatile(self) -> usize {
        self.num_regs() / 2
    }
}

/// Which destination-register pairs a fused paired load may write.
///
/// The rule is consulted as `allows(dst1, dst2)` where `dst1` receives
/// the lower-addressed word and `dst2` the higher.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PairedLoadRule {
    /// IA-64-like: the two destinations must be adjacent registers of
    /// different parity (indices differing by exactly one, in either
    /// order).
    Parity,
    /// Power/S390-like: the destinations must be the sequential pair
    /// `r`, `r+1`, in that order.
    Sequential,
}

impl PairedLoadRule {
    /// Whether a paired load may write its first word to `dst1` and its
    /// second to `dst2`.
    pub fn allows(self, dst1: PhysReg, dst2: PhysReg) -> bool {
        if dst1.class() != dst2.class() {
            return false;
        }
        match self {
            PairedLoadRule::Parity => dst1.index().abs_diff(dst2.index()) == 1,
            PairedLoadRule::Sequential => dst2.index() == dst1.index() + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sizes() {
        assert_eq!(PressureModel::High.num_regs(), 16);
        assert_eq!(PressureModel::Middle.num_regs(), 24);
        assert_eq!(PressureModel::Low.num_regs(), 32);
    }

    #[test]
    fn half_the_file_is_volatile() {
        for m in [PressureModel::High, PressureModel::Middle, PressureModel::Low] {
            assert_eq!(m.num_volatile() * 2, m.num_regs());
        }
    }

    #[test]
    fn parity_admits_adjacent_either_order() {
        let p = PairedLoadRule::Parity;
        assert!(p.allows(PhysReg::int(1), PhysReg::int(2)));
        assert!(p.allows(PhysReg::int(2), PhysReg::int(1)));
        assert!(!p.allows(PhysReg::int(1), PhysReg::int(3)));
        assert!(!p.allows(PhysReg::int(1), PhysReg::int(1)));
    }

    #[test]
    fn sequential_requires_r_then_r_plus_one() {
        let s = PairedLoadRule::Sequential;
        assert!(s.allows(PhysReg::int(4), PhysReg::int(5)));
        assert!(!s.allows(PhysReg::int(5), PhysReg::int(4)));
        assert!(!s.allows(PhysReg::int(4), PhysReg::int(6)));
    }

    #[test]
    fn rules_reject_cross_class_pairs() {
        for rule in [PairedLoadRule::Parity, PairedLoadRule::Sequential] {
            assert!(!rule.allows(PhysReg::int(0), PhysReg::float(1)));
        }
    }
}
