//! Allocated machine code: what the rewriter emits and the machine
//! interpreter executes.

use crate::PhysReg;
use pdgc_ir::{BinOp, Block, CalleeId, CmpOp, FuncSig};
use std::fmt;

/// One machine instruction. Every operand is a physical register; the
/// only remaining symbolic references are block targets, callee ids, and
/// frame-slot indices.
#[derive(Clone, PartialEq, Debug)]
pub enum MInst {
    /// Register move: `dst = src`.
    Copy {
        /// Destination register.
        dst: PhysReg,
        /// Source register.
        src: PhysReg,
    },
    /// Integer constant: `dst = value`.
    Iconst {
        /// Destination register.
        dst: PhysReg,
        /// The constant.
        value: i64,
    },
    /// Floating-point constant: `dst = value`.
    Fconst {
        /// Destination register.
        dst: PhysReg,
        /// The constant.
        value: f64,
    },
    /// Word load: `dst = [base + offset]`.
    Load {
        /// Destination register.
        dst: PhysReg,
        /// Base-address register.
        base: PhysReg,
        /// Byte offset.
        offset: i32,
    },
    /// Byte load: `dst = [base + offset] & 0xff` — but only byte-capable
    /// destinations are zero-extended by the hardware; the rewriter adds
    /// an explicit extension otherwise.
    Load8 {
        /// Destination register.
        dst: PhysReg,
        /// Base-address register.
        base: PhysReg,
        /// Byte offset.
        offset: i32,
    },
    /// Fused paired load: `dst1 = [base + offset]; dst2 = [base +
    /// offset2]` in one instruction (the paper's IA-64 `ldfp` analog).
    /// The destinations satisfy the target's
    /// [`PairedLoadRule`](crate::PairedLoadRule).
    LoadPair {
        /// Destination of the first word.
        dst1: PhysReg,
        /// Destination of the second word.
        dst2: PhysReg,
        /// Base-address register.
        base: PhysReg,
        /// Byte offset of the first word.
        offset: i32,
        /// Byte offset of the second word.
        offset2: i32,
    },
    /// Word store: `[base + offset] = src`.
    Store {
        /// The value stored.
        src: PhysReg,
        /// Base-address register.
        base: PhysReg,
        /// Byte offset.
        offset: i32,
    },
    /// Two-operand operation: `dst = lhs op rhs`.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: PhysReg,
        /// Left operand.
        lhs: PhysReg,
        /// Right operand.
        rhs: PhysReg,
    },
    /// Two-operand operation with an immediate: `dst = lhs op imm`.
    BinImm {
        /// The operation.
        op: BinOp,
        /// Destination register.
        dst: PhysReg,
        /// Left operand.
        lhs: PhysReg,
        /// The immediate.
        imm: i64,
    },
    /// Call through the convention: arguments already sit in `arg_regs`,
    /// the result (if any) appears in `ret_reg`, and every volatile
    /// register is clobbered.
    Call {
        /// The callee.
        callee: CalleeId,
        /// Registers carrying the arguments, in order.
        arg_regs: Vec<PhysReg>,
        /// Register receiving the result, if any.
        ret_reg: Option<PhysReg>,
    },
    /// Reload from a frame slot: `dst = frame[slot]`.
    SpillLoad {
        /// Destination register.
        dst: PhysReg,
        /// Frame slot index.
        slot: u32,
    },
    /// Store to a frame slot: `frame[slot] = src`.
    SpillStore {
        /// The value stored.
        src: PhysReg,
        /// Frame slot index.
        slot: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: Block,
    },
    /// Conditional branch: `if lhs op rhs goto then_dst else else_dst`.
    Branch {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        lhs: PhysReg,
        /// Right operand.
        rhs: PhysReg,
        /// Block taken when the comparison holds.
        then_dst: Block,
        /// Block taken otherwise.
        else_dst: Block,
    },
    /// Conditional branch against an immediate:
    /// `if lhs op imm goto then_dst else else_dst`.
    BranchImm {
        /// The comparison.
        op: CmpOp,
        /// Left operand.
        lhs: PhysReg,
        /// The immediate.
        imm: i64,
        /// Block taken when the comparison holds.
        then_dst: Block,
        /// Block taken otherwise.
        else_dst: Block,
    },
    /// Return; the result (if the function has one) sits in the
    /// convention's return register.
    Ret,
}

impl MInst {
    /// The registers this instruction reads or writes, in operand order
    /// (with repeats).
    pub fn regs(&self) -> Vec<PhysReg> {
        match self {
            MInst::Copy { dst, src } => vec![*dst, *src],
            MInst::Iconst { dst, .. } | MInst::Fconst { dst, .. } => vec![*dst],
            MInst::Load { dst, base, .. } | MInst::Load8 { dst, base, .. } => vec![*dst, *base],
            MInst::LoadPair {
                dst1, dst2, base, ..
            } => vec![*dst1, *dst2, *base],
            MInst::Store { src, base, .. } => vec![*src, *base],
            MInst::Bin { dst, lhs, rhs, .. } => vec![*dst, *lhs, *rhs],
            MInst::BinImm { dst, lhs, .. } => vec![*dst, *lhs],
            MInst::Call {
                arg_regs, ret_reg, ..
            } => {
                let mut rs = arg_regs.clone();
                rs.extend(*ret_reg);
                rs
            }
            MInst::SpillLoad { dst, .. } => vec![*dst],
            MInst::SpillStore { src, .. } => vec![*src],
            MInst::Branch { lhs, rhs, .. } => vec![*lhs, *rhs],
            MInst::BranchImm { lhs, .. } => vec![*lhs],
            MInst::Jump { .. } | MInst::Ret => vec![],
        }
    }

    /// The registers this instruction writes. A `Call` additionally
    /// clobbers every volatile register; only its named result is
    /// listed here.
    pub fn defs(&self) -> Vec<PhysReg> {
        match self {
            MInst::Copy { dst, .. }
            | MInst::Iconst { dst, .. }
            | MInst::Fconst { dst, .. }
            | MInst::Load { dst, .. }
            | MInst::Load8 { dst, .. }
            | MInst::Bin { dst, .. }
            | MInst::BinImm { dst, .. }
            | MInst::SpillLoad { dst, .. } => vec![*dst],
            MInst::LoadPair { dst1, dst2, .. } => vec![*dst1, *dst2],
            MInst::Call { ret_reg, .. } => ret_reg.iter().copied().collect(),
            MInst::Store { .. }
            | MInst::SpillStore { .. }
            | MInst::Jump { .. }
            | MInst::Branch { .. }
            | MInst::BranchImm { .. }
            | MInst::Ret => vec![],
        }
    }

    /// Whether this instruction moves a value between a register and a
    /// frame slot (spill traffic).
    pub fn is_spill_traffic(&self) -> bool {
        matches!(self, MInst::SpillLoad { .. } | MInst::SpillStore { .. })
    }
}

/// An allocated function: straight-line machine code per block, plus the
/// frame and callee-save bookkeeping the prologue/epilogue needs.
#[derive(Clone, PartialEq, Debug)]
pub struct MachFunction {
    /// Function name.
    pub name: String,
    /// The signature (argument classes and result class).
    pub sig: FuncSig,
    /// Machine code, indexed by [`Block`] index.
    pub blocks: Vec<Vec<MInst>>,
    /// Frame slots used by spill code and caller-save shadows.
    pub num_slots: u32,
    /// Non-volatile registers written by the body; the prologue saves
    /// and the epilogue restores each, sorted.
    pub used_nonvolatiles: Vec<PhysReg>,
    /// Callee names, indexed by [`CalleeId`] index.
    pub callees: Vec<String>,
}

impl MachFunction {
    /// Total instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Remaining (uncoalesced) register moves.
    pub fn num_copies(&self) -> usize {
        self.count(|i| matches!(i, MInst::Copy { .. }))
    }

    /// Fused paired loads.
    pub fn num_paired_loads(&self) -> usize {
        self.count(|i| matches!(i, MInst::LoadPair { .. }))
    }

    /// Frame-slot loads and stores (spill traffic plus caller saves).
    pub fn num_spill_insts(&self) -> usize {
        self.count(|i| matches!(i, MInst::SpillLoad { .. } | MInst::SpillStore { .. }))
    }

    /// Every register appearing in an operand position, each counted
    /// once, sorted.
    pub fn regs_used(&self) -> Vec<PhysReg> {
        let mut regs: Vec<PhysReg> = self
            .blocks
            .iter()
            .flatten()
            .flat_map(MInst::regs)
            .collect();
        regs.sort();
        regs.dedup();
        regs
    }

    fn count(&self, pred: impl Fn(&MInst) -> bool) -> usize {
        self.blocks.iter().flatten().filter(|i| pred(i)).count()
    }
}

impl fmt::Display for MachFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, class) in self.sig.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{class}")?;
        }
        write!(f, ")")?;
        if let Some(r) = self.sig.ret {
            write!(f, " -> {r}")?;
        }
        writeln!(f, " {{")?;
        if self.num_slots > 0 {
            writeln!(f, "    ; frame: {} slots", self.num_slots)?;
        }
        if !self.used_nonvolatiles.is_empty() {
            write!(f, "    ; saves:")?;
            for r in &self.used_nonvolatiles {
                write!(f, " {r}")?;
            }
            writeln!(f)?;
        }
        for (b, insts) in self.blocks.iter().enumerate() {
            writeln!(f, "b{b}:")?;
            for inst in insts {
                writeln!(f, "    {}", DisplayMInst { inst, mach: self })?;
            }
        }
        write!(f, "}}")
    }
}

/// Renders one instruction with callee names resolved.
struct DisplayMInst<'a> {
    inst: &'a MInst,
    mach: &'a MachFunction,
}

impl fmt::Display for DisplayMInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            MInst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            MInst::Iconst { dst, value } => write!(f, "{dst} = {value}"),
            MInst::Fconst { dst, value } => write!(f, "{dst} = {value}f"),
            MInst::Load { dst, base, offset } => write!(f, "{dst} = [{base}+{offset}]"),
            MInst::Load8 { dst, base, offset } => write!(f, "{dst} = byte [{base}+{offset}]"),
            MInst::LoadPair {
                dst1,
                dst2,
                base,
                offset,
                offset2,
            } => write!(
                f,
                "{dst1}, {dst2} = pair [{base}+{offset}], [{base}+{offset2}]"
            ),
            MInst::Store { src, base, offset } => write!(f, "[{base}+{offset}] = {src}"),
            MInst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            MInst::BinImm { op, dst, lhs, imm } => write!(f, "{dst} = {op} {lhs}, #{imm}"),
            MInst::Call {
                callee,
                arg_regs,
                ret_reg,
            } => {
                if let Some(r) = ret_reg {
                    write!(f, "{r} = ")?;
                }
                write!(f, "call {}(", self.mach.callees[callee.index()])?;
                for (i, r) in arg_regs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, ")")
            }
            MInst::SpillLoad { dst, slot } => write!(f, "{dst} = frame[{slot}]"),
            MInst::SpillStore { src, slot } => write!(f, "frame[{slot}] = {src}"),
            MInst::Jump { target } => write!(f, "goto {target}"),
            MInst::Branch {
                op,
                lhs,
                rhs,
                then_dst,
                else_dst,
            } => write!(f, "if {op} {lhs}, {rhs} goto {then_dst} else {else_dst}"),
            MInst::BranchImm {
                op,
                lhs,
                imm,
                then_dst,
                else_dst,
            } => write!(f, "if {op} {lhs}, #{imm} goto {then_dst} else {else_dst}"),
            MInst::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::RegClass;

    fn sample() -> MachFunction {
        MachFunction {
            name: "f".into(),
            sig: FuncSig {
                params: vec![RegClass::Int],
                ret: Some(RegClass::Int),
            },
            blocks: vec![vec![
                MInst::LoadPair {
                    dst1: PhysReg::int(1),
                    dst2: PhysReg::int(2),
                    base: PhysReg::int(0),
                    offset: 0,
                    offset2: 8,
                },
                MInst::Copy {
                    dst: PhysReg::int(0),
                    src: PhysReg::int(1),
                },
                MInst::SpillStore {
                    src: PhysReg::int(0),
                    slot: 0,
                },
                MInst::Call {
                    callee: CalleeId::new(0),
                    arg_regs: vec![PhysReg::int(0)],
                    ret_reg: Some(PhysReg::int(0)),
                },
                MInst::SpillLoad {
                    dst: PhysReg::int(0),
                    slot: 0,
                },
                MInst::Ret,
            ]],
            num_slots: 1,
            used_nonvolatiles: vec![PhysReg::int(2)],
            callees: vec!["g".into()],
        }
    }

    #[test]
    fn counters() {
        let m = sample();
        assert_eq!(m.num_insts(), 6);
        assert_eq!(m.num_copies(), 1);
        assert_eq!(m.num_paired_loads(), 1);
        assert_eq!(m.num_spill_insts(), 2);
    }

    #[test]
    fn defs_cover_writes_only() {
        let m = sample();
        let defs: Vec<Vec<PhysReg>> = m.blocks[0].iter().map(MInst::defs).collect();
        assert_eq!(defs[0], vec![PhysReg::int(1), PhysReg::int(2)]); // pair
        assert_eq!(defs[1], vec![PhysReg::int(0)]); // copy
        assert_eq!(defs[2], Vec::<PhysReg>::new()); // spill store
        assert_eq!(defs[3], vec![PhysReg::int(0)]); // call result
        assert_eq!(defs[5], Vec::<PhysReg>::new()); // ret
    }

    #[test]
    fn regs_used_deduplicates() {
        let m = sample();
        assert_eq!(
            m.regs_used(),
            vec![PhysReg::int(0), PhysReg::int(1), PhysReg::int(2)]
        );
    }

    #[test]
    fn display_renders_every_piece() {
        let text = sample().to_string();
        assert!(text.starts_with("fn f(int) -> int {"));
        assert!(text.contains("frame: 1 slots"));
        assert!(text.contains("saves: r2"));
        assert!(text.contains("r1, r2 = pair [r0+0], [r0+8]"));
        assert!(text.contains("r0 = call g(r0)"));
        assert!(text.contains("r0 = frame[0]"));
        assert!(text.ends_with("}"));
    }
}
