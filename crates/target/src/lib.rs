//! Target and ABI models for the pdgc register allocator.
//!
//! This crate owns everything the paper calls "machine dependent": the
//! register files and their volatile/non-volatile split, the calling
//! convention (argument and return registers), dedicated-register
//! operations, paired-load destination rules, the three pressure models
//! of the evaluation (§6), and the allocated machine code the rewriter
//! emits ([`MachFunction`] / [`MInst`]).
//!
//! ```
//! use pdgc_ir::RegClass;
//! use pdgc_target::{PhysReg, PressureModel, TargetDesc, TargetRegistry};
//!
//! let target = TargetDesc::ia64_like(PressureModel::High);
//! assert_eq!(target.num_regs(RegClass::Int), 16);
//! // The lower half of the file is volatile; arguments go there.
//! assert!(target.is_volatile(PhysReg::int(7)));
//! assert!(!target.is_volatile(PhysReg::int(8)));
//! assert_eq!(target.arg_reg(RegClass::Int, 0), Some(PhysReg::int(0)));
//! // Parity-paired loads accept adjacent destinations.
//! assert!(target.pair_allows(PhysReg::int(1), PhysReg::int(2)));
//! // The same description is reachable by name through the registry.
//! let registry = TargetRegistry::builtin();
//! assert_eq!(registry.resolve("ia64-16").unwrap(), &target);
//! ```
//!
//! Custom targets go through the validating builder:
//!
//! ```
//! use pdgc_ir::RegClass;
//! use pdgc_target::{ClassSpec, PairRule, PairedLoadRule, TargetDesc};
//!
//! let dsp = TargetDesc::builder("dsp12")
//!     .class(
//!         RegClass::Int,
//!         ClassSpec::new(12)
//!             .volatile_prefix(6)
//!             .pair(PairRule::new(PairedLoadRule::Sequential, 4).with_align(4)),
//!     )
//!     .class(RegClass::Float, ClassSpec::new(12).volatile_prefix(6))
//!     .finish()
//!     .unwrap();
//! assert_eq!(dsp.pair_rule(RegClass::Int).unwrap().stride(), 4);
//! assert!(dsp.pair_rule(RegClass::Float).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod desc;
mod error;
mod mach;
mod mparse;
mod pressure;
mod registry;
mod reg;

pub use builder::{ClassSpec, TargetBuilder, MAX_REGS};
pub use desc::{ClassDesc, TargetDesc};
pub use error::TargetError;
pub use mach::{MInst, MachFunction};
pub use mparse::{parse_mach_function, MachParseError};
pub use pressure::{PairRule, PairedLoadRule, PressureModel};
pub use reg::PhysReg;
pub use registry::TargetRegistry;
