//! Target and ABI models for the pdgc register allocator.
//!
//! This crate owns everything the paper calls "machine dependent": the
//! register files and their volatile/non-volatile split, the calling
//! convention (argument and return registers), dedicated-register
//! operations, paired-load destination rules, the three pressure models
//! of the evaluation (§6), and the allocated machine code the rewriter
//! emits ([`MachFunction`] / [`MInst`]).
//!
//! ```
//! use pdgc_ir::RegClass;
//! use pdgc_target::{PhysReg, PressureModel, TargetDesc};
//!
//! let target = TargetDesc::ia64_like(PressureModel::High);
//! assert_eq!(target.num_regs(RegClass::Int), 16);
//! // The lower half of the file is volatile; arguments go there.
//! assert!(target.is_volatile(PhysReg::int(7)));
//! assert!(!target.is_volatile(PhysReg::int(8)));
//! assert_eq!(target.arg_reg(RegClass::Int, 0), Some(PhysReg::int(0)));
//! // Parity-paired loads accept adjacent destinations.
//! assert!(target.paired_load.allows(PhysReg::int(1), PhysReg::int(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod desc;
mod mach;
mod pressure;
mod reg;

pub use desc::{ClassDesc, TargetDesc};
pub use mach::{MInst, MachFunction};
pub use pressure::{PairedLoadRule, PressureModel};
pub use reg::PhysReg;
