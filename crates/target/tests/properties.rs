//! Property tests over the target descriptions: the invariants every
//! consumer of `pdgc-target` relies on, checked across the whole
//! constructor/model space.

use pdgc_ir::RegClass;
use pdgc_target::{PairedLoadRule, PhysReg, PressureModel, TargetDesc};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = PressureModel> {
    prop_oneof![
        Just(PressureModel::High),
        Just(PressureModel::Middle),
        Just(PressureModel::Low),
    ]
}

fn targets() -> impl Strategy<Value = TargetDesc> {
    prop_oneof![
        models().prop_map(TargetDesc::ia64_like),
        models().prop_map(TargetDesc::x86_like),
        (2u8..=32).prop_map(TargetDesc::toy),
        Just(TargetDesc::figure7()),
    ]
}

proptest! {
    /// `volatiles` and `nonvolatiles` partition `regs` for every class.
    #[test]
    fn volatility_partitions_the_file(t in targets()) {
        for class in RegClass::ALL {
            let vol: Vec<PhysReg> = t.volatiles(class).collect();
            let nonvol: Vec<PhysReg> = t.nonvolatiles(class).collect();
            let all: Vec<PhysReg> = t.regs(class).collect();
            prop_assert_eq!(vol.len() + nonvol.len(), all.len());
            for r in &all {
                let in_vol = vol.contains(r);
                let in_nonvol = nonvol.contains(r);
                prop_assert!(in_vol != in_nonvol);
                prop_assert_eq!(t.is_volatile(*r), in_vol);
            }
        }
    }

    /// Every argument register is in range and volatile; indexes past
    /// the convention yield `None`.
    #[test]
    fn arg_regs_in_range_and_volatile(t in targets(), i in 0usize..64) {
        for class in RegClass::ALL {
            match t.arg_reg(class, i) {
                Some(r) => {
                    prop_assert!(i < t.num_arg_regs(class));
                    prop_assert!(r.index() < t.num_regs(class));
                    prop_assert!(t.is_volatile(r));
                }
                None => prop_assert!(i >= t.num_arg_regs(class)),
            }
            let ret = t.ret_reg(class);
            prop_assert!(ret.index() < t.num_regs(class));
            prop_assert!(t.is_volatile(ret));
        }
    }

    /// Parity pairing admits exactly the even/odd-adjacent pairs.
    #[test]
    fn parity_is_adjacency(a in 0u8..64, b in 0u8..64) {
        let allowed = PairedLoadRule::Parity.allows(PhysReg::int(a), PhysReg::int(b));
        prop_assert_eq!(allowed, a.abs_diff(b) == 1);
        if allowed {
            // Adjacent indices always differ in parity.
            prop_assert_ne!(a % 2, b % 2);
        }
    }

    /// Sequential pairing admits exactly `r, r+1`.
    #[test]
    fn sequential_is_successor(a in 0u8..64, b in 0u8..64) {
        let allowed = PairedLoadRule::Sequential.allows(PhysReg::int(a), PhysReg::int(b));
        prop_assert_eq!(allowed, b == a + 1);
    }

    /// Byte capability on the x86-like target covers exactly the first
    /// four integer registers, under every pressure model.
    #[test]
    fn x86_byte_caps_are_first_four(m in models()) {
        let t = TargetDesc::x86_like(m);
        for r in t.regs(RegClass::Int) {
            prop_assert_eq!(t.is_byte_capable(r), r.index() < 4);
        }
        for r in t.regs(RegClass::Float) {
            prop_assert!(t.is_byte_capable(r));
        }
    }
}
