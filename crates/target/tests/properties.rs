//! Property tests over the target descriptions: the invariants every
//! consumer of `pdgc-target` relies on, checked across the whole
//! constructor/model space.

use pdgc_ir::RegClass;
use pdgc_target::{
    ClassSpec, PairRule, PairedLoadRule, PhysReg, PressureModel, TargetDesc, TargetError,
};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = PressureModel> {
    prop_oneof![
        Just(PressureModel::High),
        Just(PressureModel::Middle),
        Just(PressureModel::Low),
    ]
}

fn targets() -> impl Strategy<Value = TargetDesc> {
    prop_oneof![
        models().prop_map(TargetDesc::ia64_like),
        models().prop_map(TargetDesc::x86_like),
        (2u8..=32).prop_map(TargetDesc::toy),
        Just(TargetDesc::figure7()),
        Just(TargetDesc::risc16()),
        Just(TargetDesc::tight8()),
    ]
}

proptest! {
    /// `volatiles` and `nonvolatiles` partition `regs` for every class.
    #[test]
    fn volatility_partitions_the_file(t in targets()) {
        for class in RegClass::ALL {
            let vol: Vec<PhysReg> = t.volatiles(class).collect();
            let nonvol: Vec<PhysReg> = t.nonvolatiles(class).collect();
            let all: Vec<PhysReg> = t.regs(class).collect();
            prop_assert_eq!(vol.len() + nonvol.len(), all.len());
            for r in &all {
                let in_vol = vol.contains(r);
                let in_nonvol = nonvol.contains(r);
                prop_assert!(in_vol != in_nonvol);
                prop_assert_eq!(t.is_volatile(*r), in_vol);
            }
        }
    }

    /// Every argument register is in range and volatile; indexes past
    /// the convention yield `None`.
    #[test]
    fn arg_regs_in_range_and_volatile(t in targets(), i in 0usize..64) {
        for class in RegClass::ALL {
            match t.arg_reg(class, i) {
                Some(r) => {
                    prop_assert!(i < t.num_arg_regs(class));
                    prop_assert!(r.index() < t.num_regs(class));
                    prop_assert!(t.is_volatile(r));
                }
                None => prop_assert!(i >= t.num_arg_regs(class)),
            }
            let ret = t.ret_reg(class);
            prop_assert!(ret.index() < t.num_regs(class));
            prop_assert!(t.is_volatile(ret));
        }
    }

    /// Parity pairing admits exactly the even/odd-adjacent pairs.
    #[test]
    fn parity_is_adjacency(a in 0u8..64, b in 0u8..64) {
        let allowed = PairedLoadRule::Parity.allows(PhysReg::int(a), PhysReg::int(b));
        prop_assert_eq!(allowed, a.abs_diff(b) == 1);
        if allowed {
            // Adjacent indices always differ in parity.
            prop_assert_ne!(a % 2, b % 2);
        }
    }

    /// Sequential pairing admits exactly `r, r+1`.
    #[test]
    fn sequential_is_successor(a in 0u8..64, b in 0u8..64) {
        let allowed = PairedLoadRule::Sequential.allows(PhysReg::int(a), PhysReg::int(b));
        prop_assert_eq!(allowed, b == a + 1);
    }

    /// Byte capability on the x86-like target covers exactly the first
    /// four integer registers, under every pressure model.
    #[test]
    fn x86_byte_caps_are_first_four(m in models()) {
        let t = TargetDesc::x86_like(m);
        for r in t.regs(RegClass::Int) {
            prop_assert_eq!(t.is_byte_capable(r), r.index() < 4);
        }
        for r in t.regs(RegClass::Float) {
            prop_assert!(t.is_byte_capable(r));
        }
    }

    /// Builder round trip: a description built from an arbitrary valid
    /// spec, read back through the public accessors and rebuilt, equals
    /// the original — the accessors expose everything the builder took
    /// in, and the builder accepts everything the accessors emit.
    #[test]
    fn builder_round_trips_through_the_accessors(
        num_regs in 1usize..=64,
        mask_seed in 1u64..=u64::MAX,
        byte in 0u8..=8,
        pair_bits in 0u16..=255,
    ) {
        let file_mask = if num_regs >= 64 { u64::MAX } else { (1u64 << num_regs) - 1 };
        let volatile_mask = match mask_seed & file_mask {
            0 => 1,
            m => m,
        };
        let byte_regs = (byte != 0).then(|| byte.min(num_regs as u8));
        let pair = (pair_bits & 1 != 0).then(|| {
            let dest = if pair_bits & 2 != 0 {
                PairedLoadRule::Parity
            } else {
                PairedLoadRule::Sequential
            };
            let stride = 8 * (1 + (pair_bits >> 2 & 3)) as i32;
            let align = if pair_bits & 16 != 0 { stride } else { 1 };
            let window = 1 + (pair_bits >> 5 & 7) as usize;
            PairRule::new(dest, stride).with_align(align).with_window(window)
        });
        let names: Vec<String> = if pair_bits & 128 != 0 {
            (0..num_regs).map(|i| format!("x{i}")).collect()
        } else {
            Vec::new()
        };

        let spec = |with_byte: bool| {
            let mut s = ClassSpec::new(num_regs)
                .volatile_mask(volatile_mask)
                .named(names.clone());
            if let Some(n) = byte_regs.filter(|_| with_byte) {
                s = s.byte_regs(n);
            }
            if let Some(rule) = pair {
                s = s.pair(rule);
            }
            s
        };
        let mut b = TargetDesc::builder("roundtrip")
            .class(RegClass::Int, spec(true))
            .class(RegClass::Float, spec(false));
        if pair_bits & 64 != 0 {
            b = b.div_reg(PhysReg::int((num_regs - 1) as u8));
        }
        let t = b.finish().expect("generated spec is valid");

        // Read everything back through the accessors...
        let reread = |class: RegClass| {
            let c = t.class(class);
            let mut mask = 0u64;
            for i in 0..c.num_regs() {
                if c.is_volatile(i) {
                    mask |= 1 << i;
                }
            }
            let mut s = ClassSpec::new(c.num_regs()).volatile_mask(mask);
            if let Some(n) = c.byte_regs() {
                s = s.byte_regs(n);
            }
            if let Some(rule) = c.pair() {
                s = s.pair(*rule);
            }
            let names: Vec<String> =
                (0..c.num_regs()).filter_map(|i| c.reg_name(i).map(String::from)).collect();
            if !names.is_empty() {
                s = s.named(names);
            }
            s
        };
        // ...and the rebuilt description is indistinguishable.
        let mut b2 = TargetDesc::builder("roundtrip")
            .class(RegClass::Int, reread(RegClass::Int))
            .class(RegClass::Float, reread(RegClass::Float));
        if let Some(div) = t.div_reg {
            b2 = b2.div_reg(div);
        }
        let t2 = b2.finish().expect("accessor output is a valid spec");
        prop_assert_eq!(&t, &t2);

        // The accessors agree with the inputs along the way.
        let c = t.class(RegClass::Int);
        prop_assert_eq!(c.num_regs(), num_regs);
        prop_assert_eq!(c.num_volatile(), volatile_mask.count_ones() as usize);
        prop_assert_eq!(c.byte_regs(), byte_regs);
        prop_assert_eq!(c.pair().copied(), pair);
        prop_assert!(t.class(RegClass::Float).byte_regs().is_none());
    }

    /// Every volatile bit outside the file is a typed error, never a
    /// silently-truncated mask.
    #[test]
    fn out_of_file_volatile_bits_are_rejected(
        num_regs in 1usize..=63,
        bit_seed in 0usize..64,
    ) {
        let bad_bit = num_regs + bit_seed % (64 - num_regs);
        let mask = (1u64 << bad_bit) | 1;
        let err = TargetDesc::builder("bad")
            .class(RegClass::Int, ClassSpec::new(num_regs).volatile_mask(mask))
            .class(RegClass::Float, ClassSpec::new(num_regs))
            .finish()
            .unwrap_err();
        prop_assert_eq!(err, TargetError::VolatileOutOfRange(RegClass::Int));
    }

    /// A name list of any wrong size is a typed error carrying both
    /// counts.
    #[test]
    fn wrong_name_counts_are_rejected(num_regs in 1usize..=64, names in 0usize..=64) {
        prop_assume!(names != 0 && names != num_regs);
        let err = TargetDesc::builder("bad")
            .class(
                RegClass::Int,
                ClassSpec::new(num_regs).named((0..names).map(|i| format!("x{i}"))),
            )
            .class(RegClass::Float, ClassSpec::new(num_regs))
            .finish()
            .unwrap_err();
        prop_assert_eq!(
            err,
            TargetError::NameCountMismatch { class: RegClass::Int, names, num_regs }
        );
    }
}
