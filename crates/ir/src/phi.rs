//! φ-functions and their lowering to copies.
//!
//! The paper motivates preference-directed coloring with SSA-form input:
//! "a naïve SSA-transformed program has many copy operations, and therefore,
//! it is necessary to remove as many copies as possible by a good register
//! selection" (§1). [`lower_phis`] performs the naïve out-of-SSA translation
//! — one copy per φ-argument at the end of each predecessor — producing
//! exactly the copy-rich code that register coalescing must clean up.
//!
//! Lowering is *parallel-copy correct*: all φs at a block head conceptually
//! execute simultaneously, so the copies inserted into a predecessor are
//! sequentialized with cycle-breaking temporaries where needed.

use crate::{Block, Function, Inst, VReg};
use std::collections::HashMap;

/// An SSA φ-function: `dst = φ(args[pred0], args[pred1], ...)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Phi {
    /// The merged value.
    pub dst: VReg,
    /// One `(predecessor, value)` pair per incoming edge.
    pub args: Vec<(Block, VReg)>,
}

impl Phi {
    /// The incoming value for predecessor `pred`, if present.
    pub fn arg_for(&self, pred: Block) -> Option<VReg> {
        self.args.iter().find(|(b, _)| *b == pred).map(|(_, v)| *v)
    }
}

/// Replaces all φ-functions with copies in predecessor blocks.
///
/// For each block `b` with φs and each predecessor `p`, a parallel copy
/// `(dst_i ← arg_i)` is sequentialized and inserted immediately before
/// `p`'s terminator. Critical edges must have been split beforehand (the
/// builder's `jump`/`branch` helpers make this easy); lowering through a
/// critical edge would incorrectly execute the copies on the other edge,
/// so this function panics if a φ-block has a predecessor with multiple
/// successors and the block itself has multiple predecessors.
///
/// Returns the number of copy instructions inserted.
///
/// # Panics
///
/// Panics on an unsplit critical edge into a φ-block.
pub fn lower_phis(func: &mut Function) -> usize {
    let mut inserted = 0;
    // Collect per-predecessor parallel copies.
    let mut pending: HashMap<Block, Vec<(VReg, VReg)>> = HashMap::new();
    for b in func.block_ids() {
        let phis = std::mem::take(&mut func.block_mut(b).phis);
        if phis.is_empty() {
            continue;
        }
        let npreds = preds_of(func, b).len();
        for phi in &phis {
            for &(pred, src) in &phi.args {
                let pred_succs = func.block(pred).successors().len();
                assert!(
                    pred_succs == 1 || npreds == 1,
                    "critical edge {pred} -> {b} must be split before phi lowering"
                );
                pending.entry(pred).or_default().push((phi.dst, src));
            }
        }
    }
    for (pred, moves) in pending {
        let seq = sequentialize(func, &moves);
        inserted += seq.len();
        let insts = &mut func.block_mut(pred).insts;
        let at = insts.len() - 1; // before the terminator
        for (i, inst) in seq.into_iter().enumerate() {
            insts.insert(at + i, inst);
        }
    }
    inserted
}

/// Computes the predecessors of `b` by scanning terminators.
fn preds_of(func: &Function, b: Block) -> Vec<Block> {
    func.block_ids()
        .filter(|&p| func.block(p).successors().contains(&b))
        .collect()
}

/// Sequentializes a parallel copy `(dst ← src)*` into `Copy` instructions,
/// breaking cycles with a fresh temporary per cycle.
///
/// Uses the standard worklist algorithm: emit any copy whose destination is
/// not a pending source; when stuck, a cycle remains — rotate it through a
/// temporary.
fn sequentialize(func: &mut Function, moves: &[(VReg, VReg)]) -> Vec<Inst> {
    let mut out = Vec::new();
    // Drop no-op moves.
    let mut pending: Vec<(VReg, VReg)> = moves
        .iter()
        .copied()
        .filter(|(d, s)| d != s)
        .collect();
    // Destinations must be distinct (SSA guarantees this).
    debug_assert!({
        let mut ds: Vec<_> = pending.iter().map(|(d, _)| *d).collect();
        ds.sort();
        ds.dedup();
        ds.len() == pending.len()
    });
    while !pending.is_empty() {
        let ready = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| s == d));
        match ready {
            Some(i) => {
                let (d, s) = pending.remove(i);
                out.push(Inst::Copy { dst: d, src: s });
            }
            None => {
                // Every destination is also a pending source: pure cycles.
                // Break one by copying its source into a temporary.
                let (d, s) = pending[0];
                let tmp = func.new_vreg(func.class_of(d));
                out.push(Inst::Copy { dst: tmp, src: s });
                pending[0] = (d, tmp);
                // Redirect other reads of `s`? Not needed: destinations are
                // distinct, and only the cycle edge consuming `s` matters —
                // any other pending copy reading `s` keeps the original
                // value because `s` is only overwritten by the copy whose
                // dst is `s`, which is still blocked until its readers run.
                // We must, however, make the copy *writing* `s` runnable:
                // it now is, since the read of `s` has been satisfied.
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, RegClass};

    /// Builds a diamond: entry -> (left | right) -> join, with a φ at join.
    fn diamond_with_phi() -> Function {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let left = b.create_block();
        let right = b.create_block();
        let join = b.create_block();
        let zero = b.iconst(0);
        b.branch(crate::CmpOp::Eq, p, zero, left, right);

        b.switch_to(left);
        let a = b.iconst(1);
        b.jump(join);

        b.switch_to(right);
        let c = b.iconst(2);
        b.jump(join);

        b.switch_to(join);
        let d = b.phi(RegClass::Int, vec![(left, a), (right, c)]);
        b.ret(Some(d));
        b.finish()
    }

    #[test]
    fn lower_simple_phi() {
        let mut f = diamond_with_phi();
        assert!(f.verify().is_ok());
        let n = lower_phis(&mut f);
        assert_eq!(n, 2);
        assert_eq!(f.num_copies(), 2);
        // All φs gone.
        assert!(f.blocks.iter().all(|b| b.phis.is_empty()));
        assert!(f.verify().is_ok());
    }

    #[test]
    fn sequentialize_swap_uses_temp() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int, RegClass::Int], None);
        let x = b.param(0);
        let y = b.param(1);
        b.ret(None);
        let mut f = b.finish();
        let before = f.num_vregs();
        let seq = sequentialize(&mut f, &[(x, y), (y, x)]);
        // A swap needs three copies and one fresh temp.
        assert_eq!(seq.len(), 3);
        assert_eq!(f.num_vregs(), before + 1);
    }

    #[test]
    fn sequentialize_chain_no_temp() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![RegClass::Int, RegClass::Int, RegClass::Int],
            None,
        );
        let x = b.param(0);
        let y = b.param(1);
        let z = b.param(2);
        b.ret(None);
        let mut f = b.finish();
        let before = f.num_vregs();
        // z <- y, y <- x : must emit z<-y before y<-x.
        let seq = sequentialize(&mut f, &[(y, x), (z, y)]);
        assert_eq!(seq.len(), 2);
        assert_eq!(f.num_vregs(), before);
        assert_eq!(seq[0].as_copy(), Some((z, y)));
        assert_eq!(seq[1].as_copy(), Some((y, x)));
    }

    #[test]
    fn sequentialize_drops_noop() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let x = b.param(0);
        b.ret(None);
        let mut f = b.finish();
        let seq = sequentialize(&mut f, &[(x, x)]);
        assert!(seq.is_empty());
    }
}
