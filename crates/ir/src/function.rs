//! Functions, basic blocks, and signatures.

use crate::{Block, Inst, Phi, RegClass, VReg};
use std::fmt;

/// A reference to a (symbolic) callee in a function's callee table.
///
/// The allocator never needs callee bodies — only the call sites — so
/// callees are identified by name. The simulator gives each callee a
/// deterministic pure semantics derived from this identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CalleeId(u32);

impl CalleeId {
    /// Creates a callee reference from its dense index.
    pub fn new(index: usize) -> Self {
        CalleeId(u32::try_from(index).expect("callee index overflow"))
    }

    /// Returns the dense index of this callee.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CalleeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// A function signature: parameter classes and optional return class.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FuncSig {
    /// Register class of each parameter, in order.
    pub params: Vec<RegClass>,
    /// Register class of the return value, if any.
    pub ret: Option<RegClass>,
}

/// A basic block: zero or more φ-functions followed by instructions, the
/// last of which must be a terminator.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct BlockData {
    /// φ-functions at the head of the block (empty once lowered).
    pub phis: Vec<Phi>,
    /// The block body; the final instruction is the terminator.
    pub insts: Vec<Inst>,
}

impl BlockData {
    /// The block's terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty or unterminated (checked by
    /// [`Function::verify`]).
    pub fn terminator(&self) -> &Inst {
        let last = self.insts.last().expect("empty block");
        assert!(last.is_terminator(), "unterminated block");
        last
    }

    /// Control-flow successors of this block.
    pub fn successors(&self) -> Vec<Block> {
        self.terminator().successors()
    }
}

/// A function: a CFG of [`BlockData`] plus a virtual-register table.
///
/// Build one with [`FunctionBuilder`](crate::FunctionBuilder).
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name (used in diagnostics and reports).
    pub name: String,
    /// The signature.
    pub sig: FuncSig,
    /// The virtual registers holding the incoming parameters, in order.
    pub param_vregs: Vec<VReg>,
    /// Basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<BlockData>,
    /// Register class of each virtual register, indexed by [`VReg::index`].
    pub vreg_classes: Vec<RegClass>,
    /// Names of called functions, indexed by [`CalleeId::index`].
    pub callees: Vec<String>,
}

impl Function {
    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_classes.len()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The register class of `vreg`.
    ///
    /// # Panics
    ///
    /// Panics if `vreg` is out of range for this function.
    pub fn class_of(&self, vreg: VReg) -> RegClass {
        self.vreg_classes[vreg.index()]
    }

    /// Appends a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        let v = VReg::new(self.vreg_classes.len());
        self.vreg_classes.push(class);
        v
    }

    /// Shared access to a block's data.
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block's data.
    pub fn block_mut(&mut self, b: Block) -> &mut BlockData {
        &mut self.blocks[b.index()]
    }

    /// Iterates over all block references in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = Block> {
        (0..self.blocks.len()).map(Block::new)
    }

    /// Total number of instructions (φs excluded).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Counts instructions matching a predicate.
    pub fn count_insts(&self, mut pred: impl FnMut(&Inst) -> bool) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| pred(i))
            .count()
    }

    /// Number of register-to-register copy instructions.
    pub fn num_copies(&self) -> usize {
        self.count_insts(|i| matches!(i, Inst::Copy { .. }))
    }

    /// Number of call instructions.
    pub fn num_calls(&self) -> usize {
        self.count_insts(Inst::is_call)
    }

    /// Interns a callee name, returning its id.
    pub fn intern_callee(&mut self, name: &str) -> CalleeId {
        if let Some(i) = self.callees.iter().position(|c| c == name) {
            CalleeId::new(i)
        } else {
            self.callees.push(name.to_string());
            CalleeId::new(self.callees.len() - 1)
        }
    }

    /// Returns a copy with the callee table renumbered in first-appearance
    /// order (block index order, instruction order) and unreferenced
    /// names dropped.
    ///
    /// The textual form resolves callee ids to names, so printing is
    /// unaffected — but the parser can only reconstruct the table in
    /// appearance order. This helper states the round-trip contract
    /// exactly: `parse(print(f))` is structurally equal to
    /// `f.with_canonical_callees()`, and is the identity on functions
    /// already in canonical form.
    pub fn with_canonical_callees(&self) -> Function {
        let mut order: Vec<usize> = Vec::new();
        for b in &self.blocks {
            for inst in &b.insts {
                if let Inst::Call { callee, .. } = inst {
                    if !order.contains(&callee.index()) {
                        order.push(callee.index());
                    }
                }
            }
        }
        let mut remap = vec![usize::MAX; self.callees.len()];
        for (new, &old) in order.iter().enumerate() {
            remap[old] = new;
        }
        let mut out = self.clone();
        out.callees = order.iter().map(|&i| self.callees[i].clone()).collect();
        for b in &mut out.blocks {
            for inst in &mut b.insts {
                if let Inst::Call { callee, .. } = inst {
                    *callee = CalleeId::new(remap[callee.index()]);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn new_vreg_extends_table() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        let n = f.num_vregs();
        let v = f.new_vreg(RegClass::Float);
        assert_eq!(v.index(), n);
        assert_eq!(f.class_of(v), RegClass::Float);
    }

    #[test]
    fn intern_callee_dedups() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        let a = f.intern_callee("g");
        let b2 = f.intern_callee("h");
        let a2 = f.intern_callee("g");
        assert_eq!(a, a2);
        assert_ne!(a, b2);
        assert_eq!(f.callees, vec!["g".to_string(), "h".to_string()]);
    }

    #[test]
    fn canonical_callees_follow_appearance_order() {
        use crate::{Block, Inst};
        let mut b = FunctionBuilder::new("f", vec![], None);
        let later = b.create_block();
        b.switch_to(later);
        b.call("second_in_text", vec![], None); // interned first
        b.ret(None);
        b.switch_to(Block::ENTRY);
        b.call("first_in_text", vec![], None);
        b.intern_callee("never_called");
        b.jump(later);
        let f = b.finish();
        assert_eq!(f.callees[0], "second_in_text");
        let canon = f.with_canonical_callees();
        assert_eq!(canon.callees, vec!["first_in_text", "second_in_text"]);
        let entry_call = &canon.block(Block::ENTRY).insts[0];
        let Inst::Call { callee, .. } = entry_call else {
            panic!("expected call");
        };
        assert_eq!(canon.callees[callee.index()], "first_in_text");
        // Canonicalizing is idempotent.
        assert_eq!(canon.with_canonical_callees(), canon);
    }

    #[test]
    fn counts() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        b.ret(Some(c));
        let f = b.finish();
        assert_eq!(f.num_copies(), 1);
        assert_eq!(f.num_calls(), 0);
        assert_eq!(f.num_insts(), 2);
    }
}
