//! Entity references: virtual registers, basic blocks, and register classes.

use std::fmt;

/// A virtual register: an SSA value or, after live-range renaming, a live
/// range. The allocator's job is to map every `VReg` of a function to a
/// physical register or a spill slot.
///
/// `VReg`s are dense indices into the owning [`Function`](crate::Function)'s
/// register table, which records each register's [`RegClass`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(u32);

impl VReg {
    /// Creates a virtual-register reference from its dense index.
    pub fn new(index: usize) -> Self {
        VReg(u32::try_from(index).expect("vreg index overflow"))
    }

    /// Returns the dense index of this virtual register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block reference. Block 0 is always the function entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Block(u32);

impl Block {
    /// Creates a block reference from its dense index.
    pub fn new(index: usize) -> Self {
        Block(u32::try_from(index).expect("block index overflow"))
    }

    /// Returns the dense index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The function entry block.
    pub const ENTRY: Block = Block(0);
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A register class. Integer and floating-point registers are disjoint
/// register files (as on IA-64, the paper's evaluation target), so
/// allocation proceeds independently per class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum RegClass {
    /// General-purpose (integer/pointer) registers.
    #[default]
    Int,
    /// Floating-point registers.
    Float,
}

impl RegClass {
    /// All register classes, in a fixed order.
    pub const ALL: [RegClass; 2] = [RegClass::Int, RegClass::Float];

    /// Returns a dense index for the class (0 = Int, 1 = Float).
    pub fn index(self) -> usize {
        match self {
            RegClass::Int => 0,
            RegClass::Float => 1,
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Float => write!(f, "float"),
        }
    }
}
