//! Structural verification of functions.

use crate::{validate_ident, Function, Inst, RegClass, VReg};
use std::fmt;

/// An invariant violation found by [`Function::verify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir verify error: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

macro_rules! fail {
    ($($arg:tt)*) => {
        return Err(VerifyError { message: format!($($arg)*) })
    };
}

impl Function {
    /// Checks structural invariants:
    ///
    /// * at least one block; every block non-empty and terminated exactly at
    ///   its end;
    /// * all block references in range;
    /// * all `VReg` references in range, with classes consistent with their
    ///   instruction positions (e.g. `Load` base is integer, float `Bin`
    ///   operands are float);
    /// * every φ has at least one argument, and the arguments cover
    ///   exactly the block's predecessors;
    /// * parameter registers match the signature;
    /// * `Ret` presence/absence of a value matches the signature;
    /// * the function name and every callee name are valid identifiers
    ///   (so the textual form can round-trip).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        if let Err(e) = validate_ident(&self.name) {
            fail!("function name: {e}");
        }
        for callee in &self.callees {
            if let Err(e) = validate_ident(callee) {
                fail!("callee name: {e}");
            }
        }
        if self.blocks.is_empty() {
            fail!("function {} has no blocks", self.name);
        }
        if self.param_vregs.len() != self.sig.params.len() {
            fail!("param vreg count != signature params");
        }
        for (i, (&v, &c)) in self.param_vregs.iter().zip(&self.sig.params).enumerate() {
            self.check_vreg(v)?;
            if self.class_of(v) != c {
                fail!("param {i} register {v} has class {:?}, expected {c:?}", self.class_of(v));
            }
        }

        // Predecessor map for φ checks.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.blocks.len()];

        for b in self.block_ids() {
            let data = self.block(b);
            let Some(last) = data.insts.last() else {
                fail!("block {b} is empty");
            };
            if !last.is_terminator() {
                fail!("block {b} does not end in a terminator");
            }
            for (i, inst) in data.insts.iter().enumerate() {
                if inst.is_terminator() && i + 1 != data.insts.len() {
                    fail!("terminator in the middle of block {b}");
                }
                self.check_inst(inst)?;
            }
            for s in last.successors() {
                if s.index() >= self.blocks.len() {
                    fail!("block {b} branches to out-of-range {s}");
                }
                preds[s.index()].push(b.index());
            }
        }

        for b in self.block_ids() {
            for phi in &self.block(b).phis {
                self.check_vreg(phi.dst)?;
                if phi.args.is_empty() {
                    // An empty φ would print as `vN = phi`, which the
                    // parser (rightly) refuses to read back.
                    fail!("phi {} in {b} has no arguments", phi.dst);
                }
                let mut seen: Vec<usize> = Vec::new();
                for &(pred, v) in &phi.args {
                    self.check_vreg(v)?;
                    if self.class_of(v) != self.class_of(phi.dst) {
                        fail!("phi {0} in {b} mixes classes", phi.dst);
                    }
                    if pred.index() >= self.blocks.len() {
                        fail!("phi in {b} references out-of-range block {pred}");
                    }
                    if !preds[b.index()].contains(&pred.index()) {
                        fail!("phi in {b} has arg for non-predecessor {pred}");
                    }
                    if seen.contains(&pred.index()) {
                        fail!("phi in {b} has duplicate arg for {pred}");
                    }
                    seen.push(pred.index());
                }
                if seen.len() != preds[b.index()].len() {
                    fail!(
                        "phi in {b} covers {} of {} predecessors",
                        seen.len(),
                        preds[b.index()].len()
                    );
                }
            }
        }
        Ok(())
    }

    fn check_vreg(&self, v: VReg) -> Result<(), VerifyError> {
        if v.index() >= self.num_vregs() {
            fail!("vreg {v} out of range ({} registers)", self.num_vregs());
        }
        Ok(())
    }

    fn check_inst(&self, inst: &Inst) -> Result<(), VerifyError> {
        if let Some(d) = inst.def() {
            self.check_vreg(d)?;
        }
        let mut err = None;
        inst.visit_uses(|u| {
            if err.is_none() {
                if let Err(e) = self.check_vreg(u) {
                    err = Some(e);
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        match inst {
            Inst::Copy { dst, src } => {
                if self.class_of(*dst) != self.class_of(*src) {
                    fail!("copy {dst} <- {src} mixes classes");
                }
            }
            Inst::Iconst { dst, .. } => {
                if self.class_of(*dst) != RegClass::Int {
                    fail!("iconst into non-int {dst}");
                }
            }
            Inst::Fconst { dst, .. } => {
                if self.class_of(*dst) != RegClass::Float {
                    fail!("fconst into non-float {dst}");
                }
            }
            Inst::Load { base, .. } | Inst::Store { base, .. } => {
                if self.class_of(*base) != RegClass::Int {
                    fail!("memory base {base} is not an integer register");
                }
            }
            Inst::Load8 { dst, base, .. } => {
                for v in [dst, base] {
                    if self.class_of(*v) != RegClass::Int {
                        fail!("byte load operand {v} is not an integer register");
                    }
                }
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let want = if op.is_float() {
                    RegClass::Float
                } else {
                    RegClass::Int
                };
                for v in [dst, lhs, rhs] {
                    if self.class_of(*v) != want {
                        fail!("{op} operand {v} has wrong class");
                    }
                }
            }
            Inst::BinImm { op, dst, lhs, .. } => {
                if op.is_float() {
                    fail!("bin_imm with float op {op}");
                }
                for v in [dst, lhs] {
                    if self.class_of(*v) != RegClass::Int {
                        fail!("{op} imm operand {v} has wrong class");
                    }
                }
            }
            Inst::Call { callee, .. } => {
                if callee.index() >= self.callees.len() {
                    fail!("call to out-of-range callee {callee:?}");
                }
            }
            Inst::Branch { lhs, rhs, .. } => {
                for v in [lhs, rhs] {
                    if self.class_of(*v) != RegClass::Int {
                        fail!("branch operand {v} is not integer");
                    }
                }
            }
            Inst::BranchImm { lhs, .. } => {
                if self.class_of(*lhs) != RegClass::Int {
                    fail!("branch operand {lhs} is not integer");
                }
            }
            Inst::Ret { value } => match (value, self.sig.ret) {
                (Some(v), Some(c)) => {
                    if self.class_of(*v) != c {
                        fail!("return value {v} has wrong class");
                    }
                }
                (None, None) => {}
                (Some(_), None) => fail!("return with value in void function"),
                (None, Some(_)) => fail!("bare return in value-returning function"),
            },
            Inst::Jump { .. } | Inst::Reload { .. } | Inst::Spill { .. } => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Block, FunctionBuilder, Phi};

    #[test]
    fn empty_block_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        f.blocks.push(Default::default());
        assert!(f.verify().is_err());
    }

    #[test]
    fn class_mismatch_rejected() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int, RegClass::Float], None);
        let i = b.param(0);
        let fl = b.param(1);
        b.ret(None);
        let mut f = b.finish();
        // Hand-build a bad copy.
        f.block_mut(Block::ENTRY)
            .insts
            .insert(0, Inst::Copy { dst: i, src: fl });
        assert!(f.verify().is_err());
    }

    #[test]
    fn float_bin_with_int_operand_rejected() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        b.ret(None);
        let mut f = b.finish();
        let d = f.new_vreg(RegClass::Float);
        f.block_mut(Block::ENTRY).insts.insert(
            0,
            Inst::Bin {
                op: BinOp::FAdd,
                dst: d,
                lhs: p,
                rhs: p,
            },
        );
        assert!(f.verify().is_err());
    }

    #[test]
    fn phi_must_cover_preds() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let l = b.create_block();
        let r = b.create_block();
        let j = b.create_block();
        let z = b.iconst(0);
        b.branch(crate::CmpOp::Eq, p, z, l, r);
        b.switch_to(l);
        b.jump(j);
        b.switch_to(r);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(p));
        let mut f = b.finish();
        // φ covering only one of two predecessors.
        let d = f.new_vreg(RegClass::Int);
        f.block_mut(j).phis.push(Phi {
            dst: d,
            args: vec![(l, p)],
        });
        assert!(f.verify().is_err());
    }

    #[test]
    fn empty_phi_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        let d = f.new_vreg(RegClass::Int);
        // An empty φ in the entry block (zero predecessors) used to slip
        // past the predecessor-coverage check.
        f.block_mut(Block::ENTRY).phis.push(Phi {
            dst: d,
            args: vec![],
        });
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("no arguments"), "{e}");
    }

    #[test]
    fn unparseable_names_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        f.name = "two words".into();
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("function name"), "{e}");
        f.name = "f".into();
        f.callees.push("g(".into());
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("callee name"), "{e}");
    }

    #[test]
    fn ret_mismatch_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], Some(RegClass::Int));
        b.ret(None);
        let f = b.finish();
        assert!(f.verify().is_err());
    }

    #[test]
    fn out_of_range_vreg_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let mut f = b.finish();
        f.block_mut(Block::ENTRY).insts.insert(
            0,
            Inst::Iconst {
                dst: VReg::new(99),
                value: 0,
            },
        );
        assert!(f.verify().is_err());
    }
}
