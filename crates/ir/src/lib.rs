//! Register-transfer intermediate representation (IR) for the `pdgc`
//! register-allocation toolkit.
//!
//! The IR models the "intermediate code" that reaches the register allocator
//! in the paper *Preference-Directed Graph Coloring* (Koseki, Komatsu,
//! Nakatani; PLDI 2002): a control-flow graph of basic blocks holding
//! register-transfer instructions over an unbounded supply of virtual
//! registers ([`VReg`]), optionally in SSA form with block-level φ-functions
//! ([`Phi`]) that are later lowered to copies.
//!
//! # Example
//!
//! ```
//! use pdgc_ir::{FunctionBuilder, RegClass, BinOp};
//!
//! let mut b = FunctionBuilder::new("add3", vec![RegClass::Int], Some(RegClass::Int));
//! let p = b.param(0);
//! let t = b.iconst(3);
//! let r = b.bin(BinOp::Add, p, t);
//! b.ret(Some(r));
//! let f = b.finish();
//! assert!(f.verify().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod display;
mod entities;
mod function;
mod ident;
mod inst;
mod parse;
mod phi;
mod verify;

pub use builder::FunctionBuilder;
pub use entities::{Block, RegClass, VReg};
pub use function::{BlockData, CalleeId, FuncSig, Function};
pub use ident::{validate_ident, IdentError};
pub use inst::{BinOp, CmpOp, Inst};
pub use parse::{parse_function, parse_functions, ParseError};
pub use phi::{lower_phis, Phi};
pub use verify::VerifyError;
