//! Identifier validation shared by the builder, verifier, and parser.
//!
//! Function and callee names appear verbatim in the textual IR form
//! (`fn NAME(...)`, `call NAME(...)`), so any name the builder accepts
//! must survive `print → parse`. Names containing `(`, whitespace, or a
//! comment marker print fine but cannot be re-parsed; this module pins
//! down the set that can.

use std::fmt;

/// Why a name is not a valid identifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdentError {
    /// The offending name.
    pub name: String,
    /// What is wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for IdentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid identifier `{}`: {}", self.name, self.reason)
    }
}

impl std::error::Error for IdentError {}

/// Validates a function or callee name for the textual form.
///
/// An identifier is non-empty, starts with an ASCII letter or `_`, and
/// continues with ASCII letters, digits, `_`, `.`, `$`, or `-`. This is
/// exactly the set the parser can re-read: no whitespace, no `(`/`)`,
/// no comment markers (`//`, `;`), no `:`. A leading `-` is excluded so
/// names can never be confused with negative literals.
///
/// # Errors
///
/// Returns an [`IdentError`] naming the offending string and the rule
/// it breaks.
pub fn validate_ident(name: &str) -> Result<(), IdentError> {
    let err = |reason| {
        Err(IdentError {
            name: name.to_string(),
            reason,
        })
    };
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return err("must not be empty");
    };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return err("must start with an ASCII letter or `_`");
    }
    for c in chars {
        if !(c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '-')) {
            return err("may contain only ASCII letters, digits, `_`, `.`, `$`, or `-`");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_plain_names() {
        for ok in ["f", "g0", "_start", "sin", "java.lang.Math$abs", "a_b.c", "check-prop_0"] {
            assert!(validate_ident(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn rejects_unparseable_names() {
        for bad in [
            "",
            "f(",
            "two words",
            "a//b",
            "a;b",
            "9lives",
            "a:b",
            "tab\tname",
            "paren)",
            "né", // non-ASCII
        ] {
            let e = validate_ident(bad).unwrap_err();
            assert_eq!(e.name, bad);
            assert!(!e.reason.is_empty());
        }
    }

    #[test]
    fn error_display_names_the_offender() {
        let e = validate_ident("bad name").unwrap_err();
        assert!(e.to_string().contains("`bad name`"));
    }
}
