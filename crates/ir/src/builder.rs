//! A convenience builder for [`Function`]s.

use crate::{
    validate_ident, BinOp, Block, BlockData, CalleeId, CmpOp, FuncSig, Function, IdentError, Inst,
    Phi, RegClass, VReg,
};

/// Incrementally constructs a [`Function`].
///
/// The builder starts positioned at the entry block. Create further blocks
/// with [`create_block`](Self::create_block), move between them with
/// [`switch_to`](Self::switch_to), and append instructions with the typed
/// helpers. Each helper that produces a value allocates and returns a fresh
/// [`VReg`], keeping the emitted code in SSA form by construction (reusing
/// destinations is still possible via [`emit`](Self::emit) for non-SSA
/// code).
///
/// # Example
///
/// ```
/// use pdgc_ir::{FunctionBuilder, RegClass, BinOp, CmpOp};
///
/// // fn count(n) { s = 0; for (i = n; i != 0; i -= 1) s += i; return s }
/// let mut b = FunctionBuilder::new("count", vec![RegClass::Int], Some(RegClass::Int));
/// let n = b.param(0);
/// let header = b.create_block();
/// let exit = b.create_block();
/// b.jump(header);
/// b.switch_to(header);
/// // (loop elided)
/// b.switch_to(exit);
/// b.ret(Some(n));
/// # let _ = (header, exit);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Block,
}

impl FunctionBuilder {
    /// Starts a new function with the given name and signature and positions
    /// the builder at the freshly created entry block.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid identifier (see
    /// [`validate_ident`]): such a name would print fine but could never
    /// be re-parsed. Use [`try_new`](Self::try_new) for a fallible
    /// variant.
    pub fn new(name: &str, params: Vec<RegClass>, ret: Option<RegClass>) -> Self {
        match Self::try_new(name, params, ret) {
            Ok(b) => b,
            Err(e) => panic!("FunctionBuilder::new: {e}"),
        }
    }

    /// Fallible [`new`](Self::new): returns the typed [`IdentError`]
    /// instead of panicking when `name` cannot round-trip through the
    /// textual form.
    ///
    /// # Errors
    ///
    /// Returns an [`IdentError`] if `name` is not a valid identifier.
    pub fn try_new(
        name: &str,
        params: Vec<RegClass>,
        ret: Option<RegClass>,
    ) -> Result<Self, IdentError> {
        validate_ident(name)?;
        let param_vregs: Vec<VReg> = params.iter().map(|_| VReg::new(0)).collect();
        let mut func = Function {
            name: name.to_string(),
            sig: FuncSig {
                params: params.clone(),
                ret,
            },
            param_vregs,
            blocks: vec![BlockData::default()],
            vreg_classes: Vec::new(),
            callees: Vec::new(),
        };
        for (i, &class) in params.iter().enumerate() {
            let v = func.new_vreg(class);
            func.param_vregs[i] = v;
        }
        Ok(FunctionBuilder {
            func,
            current: Block::ENTRY,
        })
    }

    /// The virtual register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> VReg {
        self.func.param_vregs[i]
    }

    /// Allocates a fresh virtual register of the given class.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.func.new_vreg(class)
    }

    /// Creates a new, empty block (does not move the builder).
    pub fn create_block(&mut self) -> Block {
        self.func.blocks.push(BlockData::default());
        Block::new(self.func.blocks.len() - 1)
    }

    /// Moves the builder to `block`.
    pub fn switch_to(&mut self, block: Block) {
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> Block {
        self.current
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, inst: Inst) {
        let block = self.func.block_mut(self.current);
        if let Some(last) = block.insts.last() {
            assert!(
                !last.is_terminator(),
                "emitting {inst:?} into terminated block {}",
                self.current
            );
        }
        block.insts.push(inst);
    }

    /// Emits `dst = value` for a fresh integer register.
    pub fn iconst(&mut self, value: i64) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.emit(Inst::Iconst { dst, value });
        dst
    }

    /// Emits `dst = value` for a fresh float register.
    pub fn fconst(&mut self, value: f64) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.emit(Inst::Fconst { dst, value });
        dst
    }

    /// Emits `dst = src` for a fresh register of `src`'s class.
    pub fn copy(&mut self, src: VReg) -> VReg {
        let dst = self.new_vreg(self.func.class_of(src));
        self.emit(Inst::Copy { dst, src });
        dst
    }

    /// Emits `dst = src` into an existing destination register.
    pub fn copy_to(&mut self, dst: VReg, src: VReg) {
        self.emit(Inst::Copy { dst, src });
    }

    /// Emits an integer load `dst = [base + offset]`.
    pub fn load(&mut self, base: VReg, offset: i32) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.emit(Inst::Load { dst, base, offset });
        dst
    }

    /// Emits a byte load `dst = zx([base + offset] & 0xff)`.
    pub fn load8(&mut self, base: VReg, offset: i32) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.emit(Inst::Load8 { dst, base, offset });
        dst
    }

    /// Emits a float load `dst = [base + offset]`.
    pub fn fload(&mut self, base: VReg, offset: i32) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.emit(Inst::Load { dst, base, offset });
        dst
    }

    /// Emits a store `[base + offset] = src`.
    pub fn store(&mut self, src: VReg, base: VReg, offset: i32) {
        self.emit(Inst::Store { src, base, offset });
    }

    /// Emits `dst = lhs op rhs` for a fresh register of the operator's class.
    pub fn bin(&mut self, op: BinOp, lhs: VReg, rhs: VReg) -> VReg {
        let class = if op.is_float() {
            RegClass::Float
        } else {
            RegClass::Int
        };
        let dst = self.new_vreg(class);
        self.emit(Inst::Bin { op, dst, lhs, rhs });
        dst
    }

    /// Emits `dst = lhs op imm` (integer only).
    pub fn bin_imm(&mut self, op: BinOp, lhs: VReg, imm: i64) -> VReg {
        assert!(!op.is_float(), "bin_imm is integer-only");
        let dst = self.new_vreg(RegClass::Int);
        self.emit(Inst::BinImm { dst, op, lhs, imm });
        dst
    }

    /// Emits a call `ret = callee(args...)`; `ret_class` selects whether a
    /// value is produced and in which class.
    ///
    /// # Panics
    ///
    /// Panics if `callee` is not a valid identifier (see
    /// [`validate_ident`]); use [`try_call`](Self::try_call) for a
    /// fallible variant.
    pub fn call(&mut self, callee: &str, args: Vec<VReg>, ret_class: Option<RegClass>) -> Option<VReg> {
        match self.try_call(callee, args, ret_class) {
            Ok(ret) => ret,
            Err(e) => panic!("FunctionBuilder::call: {e}"),
        }
    }

    /// Fallible [`call`](Self::call): returns the typed [`IdentError`]
    /// instead of panicking when `callee` cannot round-trip through the
    /// textual form.
    ///
    /// # Errors
    ///
    /// Returns an [`IdentError`] if `callee` is not a valid identifier.
    pub fn try_call(
        &mut self,
        callee: &str,
        args: Vec<VReg>,
        ret_class: Option<RegClass>,
    ) -> Result<Option<VReg>, IdentError> {
        validate_ident(callee)?;
        let callee = self.func.intern_callee(callee);
        let ret = ret_class.map(|c| self.func.new_vreg(c));
        self.emit(Inst::Call { callee, args, ret });
        Ok(ret)
    }

    /// Emits an unconditional jump, terminating the current block.
    pub fn jump(&mut self, target: Block) {
        self.emit(Inst::Jump { target });
    }

    /// Emits a conditional branch, terminating the current block.
    pub fn branch(&mut self, op: CmpOp, lhs: VReg, rhs: VReg, then_dst: Block, else_dst: Block) {
        self.emit(Inst::Branch {
            op,
            lhs,
            rhs,
            then_dst,
            else_dst,
        });
    }

    /// Emits a conditional branch against an immediate, terminating the
    /// current block.
    pub fn branch_imm(&mut self, op: CmpOp, lhs: VReg, imm: i64, then_dst: Block, else_dst: Block) {
        self.emit(Inst::BranchImm {
            op,
            lhs,
            imm,
            then_dst,
            else_dst,
        });
    }

    /// Emits a return, terminating the current block.
    pub fn ret(&mut self, value: Option<VReg>) {
        self.emit(Inst::Ret { value });
    }

    /// Adds a φ-function at the head of the current block and returns its
    /// destination.
    pub fn phi(&mut self, class: RegClass, args: Vec<(Block, VReg)>) -> VReg {
        let dst = self.new_vreg(class);
        self.func
            .block_mut(self.current)
            .phis
            .push(Phi { dst, args });
        dst
    }

    /// Interns a callee name without emitting a call.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid identifier (see
    /// [`validate_ident`]).
    pub fn intern_callee(&mut self, name: &str) -> CalleeId {
        if let Err(e) = validate_ident(name) {
            panic!("FunctionBuilder::intern_callee: {e}");
        }
        self.func.intern_callee(name)
    }

    /// Finishes construction and returns the function.
    ///
    /// The function is *not* verified automatically; call
    /// [`Function::verify`] when invariants should be checked.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_have_declared_classes() {
        let b = FunctionBuilder::new(
            "f",
            vec![RegClass::Int, RegClass::Float],
            Some(RegClass::Float),
        );
        let f0 = b.param(0);
        let f1 = b.param(1);
        assert_ne!(f0, f1);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emit_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        b.iconst(1);
    }

    #[test]
    fn call_produces_value_of_requested_class() {
        let mut b = FunctionBuilder::new("f", vec![], Some(RegClass::Float));
        let r = b.call("sin", vec![], Some(RegClass::Float)).unwrap();
        b.ret(Some(r));
        let f = b.finish();
        assert_eq!(f.class_of(r), RegClass::Float);
        assert_eq!(f.callees, vec!["sin".to_string()]);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn bad_function_name_is_a_typed_error() {
        let e = FunctionBuilder::try_new("two words", vec![], None).unwrap_err();
        assert_eq!(e.name, "two words");
        let e = FunctionBuilder::try_new("f(", vec![], None).unwrap_err();
        assert!(e.to_string().contains("`f(`"));
        assert!(FunctionBuilder::try_new("ok_name", vec![], None).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid identifier")]
    fn bad_function_name_panics_in_new() {
        let _ = FunctionBuilder::new("a//b", vec![], None);
    }

    #[test]
    fn bad_callee_name_is_a_typed_error() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let e = b.try_call("g(", vec![], None).unwrap_err();
        assert_eq!(e.name, "g(");
        // The bad name was not interned.
        b.ret(None);
        assert!(b.finish().callees.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid identifier")]
    fn bad_callee_name_panics_in_call() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.call("has space", vec![], None);
    }

    #[test]
    fn builder_roundtrip_verifies() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let one = b.iconst(1);
        let s = b.bin(BinOp::Add, p, one);
        let t = b.bin_imm(BinOp::Mul, s, 3);
        b.ret(Some(t));
        let f = b.finish();
        assert!(f.verify().is_ok());
        assert_eq!(f.num_insts(), 4);
    }
}
