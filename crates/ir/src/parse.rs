//! A parser for the textual IR form produced by [`Function`]'s `Display`
//! implementation.
//!
//! The syntax round-trips exactly: `parse_function(&func.to_string())`
//! yields a function structurally equal to `func` (for functions whose
//! callee table is in first-appearance order — see
//! [`Function::with_canonical_callees`]), and `print → parse → print`
//! is a fixpoint. The grammar, line-oriented:
//!
//! ```text
//! fn NAME(v0: int, v1: float) -> int {     // or no "-> class"
//! b0:
//!     v2 = 5                                // iconst
//!     v3 = 1.5f                             // fconst (inff, NaNf, -0f ok)
//!     v4 = [v0+8]                           // int load
//!     v5 = f64[v0+8]                        // float load
//!     v6 = byte [v0+0]                      // byte load
//!     [v0+16] = v4                          // int store
//!     f64[v0+24] = v3                       // float store
//!     v7 = v4                               // copy
//!     v8 = add v4, v2                       // bin
//!     v9 = add v4, #3                       // bin with immediate
//!     v10 = call g(v4, v5)                  // int-returning call
//!     v11: float = call h()                 // float-returning call
//!     call k(v4)                            // void call
//!     v12 = phi [b0: v2], [b1: v8]          // φ (block head)
//!     v13 = frame[0]                        // int reload
//!     v14: float = frame[2]                 ; float reload (ascribed)
//!     frame[1] = v13                        // spill
//!     jump b1
//!     if ne v4, v2 goto b1 else b2
//!     if ne v4, #0 goto b1 else b2
//!     ret v8                                // or bare "ret"
//! }
//! ```
//!
//! Comments run from `//` or `;` to end of line (both forms, matching
//! the machine-code printer's `;` headers). Negative offsets print as
//! `[v0+-8]` and parse back. `NAME` and callee names are validated
//! identifiers ([`validate_ident`](crate::validate_ident)), so every
//! name that builds also re-parses.
//!
//! Register classes are inferred: parameters and ascriptions are
//! explicit, loads/constants/operators are self-evident, `ret` adopts
//! the signature's return class, and copies/φs propagate to a fixpoint
//! (an unconstrained copy cycle defaults to `int`). The result is
//! [`Function::verify`]-checked before being returned.
//!
//! A `.pdgc` file may hold several functions back to back;
//! [`parse_functions`] reads them all.

use crate::{
    validate_ident, BinOp, Block, BlockData, CmpOp, FuncSig, Function, Inst, Phi, RegClass, VReg,
};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Line the error was found on (1-based; 0 = whole input).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

macro_rules! perr {
    ($line:expr, $($arg:tt)*) => {
        return Err(ParseError { line: $line, message: format!($($arg)*) })
    };
}

/// Parses the textual form of one function.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax, and converts any
/// [`VerifyError`](crate::VerifyError) on the assembled function into a
/// `ParseError` at line 0.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut p = Parser::new(text);
    let func = p.parse_one()?;
    if let Some((ln, _)) = p.next_line() {
        perr!(ln, "trailing content after closing brace");
    }
    Ok(func)
}

/// Parses one or more functions from a `.pdgc` corpus text, back to
/// back.
///
/// # Errors
///
/// As [`parse_function`]; line numbers refer to the whole text.
pub fn parse_functions(text: &str) -> Result<Vec<Function>, ParseError> {
    let mut p = Parser::new(text);
    let mut funcs = vec![p.parse_one()?];
    while !p.at_end() {
        funcs.push(p.parse_one()?);
    }
    Ok(funcs)
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    /// Highest vreg index referenced (per function).
    max_vreg: usize,
    /// Class constraints gathered while parsing (per function).
    known: HashMap<usize, RegClass>,
    /// Same-class constraints (copy/φ edges) for the fixpoint.
    same: Vec<(usize, usize)>,
    /// The current function's return class (evidence for `ret vN`).
    ret_class: Option<RegClass>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, strip_comment(l).trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            max_vreg: 0,
            known: HashMap::new(),
            same: Vec::new(),
            ret_class: None,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.lines.len()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.lines.get(self.pos).copied();
        self.pos += 1;
        l
    }

    fn parse_one(&mut self) -> Result<Function, ParseError> {
        self.max_vreg = 0;
        self.known.clear();
        self.same.clear();
        let (ln, header) = self
            .next_line()
            .ok_or_else(|| ParseError {
                line: 0,
                message: "empty input".into(),
            })?;
        let (name, params, ret) = self.parse_header(ln, header)?;
        self.ret_class = ret;
        for &(v, c) in params.iter() {
            self.note_class(ln, v, c)?;
        }

        let mut blocks: Vec<BlockData> = Vec::new();
        let mut callees: Vec<String> = Vec::new();
        loop {
            let Some((ln, line)) = self.next_line() else {
                perr!(0, "missing closing brace");
            };
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                let idx = parse_block(ln, label)?;
                if idx.index() != blocks.len() {
                    perr!(ln, "blocks must be declared in order; expected b{}", blocks.len());
                }
                blocks.push(BlockData::default());
                continue;
            }
            let Some(block) = blocks.last_mut() else {
                perr!(ln, "instruction before any block label");
            };
            if let Some(term) = block.insts.last() {
                if term.is_terminator() {
                    perr!(ln, "instruction after terminator");
                }
            }
            // Split borrows: parse into locals, then push.
            let mut evidence: Vec<(usize, RegClass)> = Vec::new();
            let parsed = parse_line(ln, line, &mut callees, &mut evidence)?;
            for (v, c) in evidence {
                self.note_class(ln, v, c)?;
            }
            match parsed {
                Parsed::Inst(inst) => {
                    self.note_inst(ln, &inst)?;
                    block.insts.push(inst);
                }
                Parsed::Phi(phi) => {
                    if !block.insts.is_empty() {
                        perr!(ln, "phi after a non-phi instruction");
                    }
                    self.note_phi(&phi);
                    block.phis.push(phi);
                }
            }
        }
        // Resolve classes to a fixpoint.
        let mut classes = vec![None; self.max_vreg + 1];
        for (&v, &c) in &self.known {
            classes[v] = Some(c);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &(a, b) in &self.same {
                match (classes[a], classes[b]) {
                    (Some(ca), Some(cb)) if ca != cb => {
                        perr!(0, "v{a} and v{b} are constrained to different classes")
                    }
                    (Some(c), None) => {
                        classes[b] = Some(c);
                        changed = true;
                    }
                    (None, Some(c)) => {
                        classes[a] = Some(c);
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        let vreg_classes: Vec<RegClass> =
            classes.into_iter().map(|c| c.unwrap_or(RegClass::Int)).collect();

        let func = Function {
            name,
            sig: FuncSig {
                params: params.iter().map(|&(_, c)| c).collect(),
                ret,
            },
            param_vregs: params.iter().map(|&(v, _)| VReg::new(v)).collect(),
            blocks,
            vreg_classes,
            callees,
        };
        func.verify().map_err(|e| ParseError {
            line: 0,
            message: e.to_string(),
        })?;
        Ok(func)
    }

    #[allow(clippy::type_complexity)]
    fn parse_header(
        &mut self,
        ln: usize,
        line: &str,
    ) -> Result<(String, Vec<(usize, RegClass)>, Option<RegClass>), ParseError> {
        let Some(rest) = line.strip_prefix("fn ") else {
            perr!(ln, "expected `fn NAME(...)`");
        };
        let Some(open) = rest.find('(') else {
            perr!(ln, "expected `(` in function header");
        };
        let name = rest[..open].trim().to_string();
        if let Err(e) = validate_ident(&name) {
            perr!(ln, "function name: {e}");
        }
        let Some(close) = rest.find(')') else {
            perr!(ln, "expected `)` in function header");
        };
        let mut params = Vec::new();
        let plist = &rest[open + 1..close];
        if !plist.trim().is_empty() {
            for part in plist.split(',') {
                let Some((v, c)) = part.split_once(':') else {
                    perr!(ln, "parameter `{part}` must be `vN: class`");
                };
                let v = parse_vreg(ln, v.trim())?;
                self.touch(v);
                params.push((v, parse_class(ln, c.trim())?));
            }
        }
        let tail = rest[close + 1..].trim();
        let ret = if let Some(r) = tail.strip_prefix("->") {
            let r = r.trim().trim_end_matches('{').trim();
            Some(parse_class(ln, r)?)
        } else if tail == "{" {
            None
        } else {
            perr!(ln, "expected `{{` or `-> class {{` after parameters");
        };
        Ok((name, params, ret))
    }

    fn touch(&mut self, v: usize) {
        self.max_vreg = self.max_vreg.max(v);
    }

    fn note_class(&mut self, ln: usize, v: usize, c: RegClass) -> Result<(), ParseError> {
        self.touch(v);
        if let Some(&prev) = self.known.get(&v) {
            if prev != c {
                perr!(ln, "v{v} used as both {prev} and {c}");
            }
        }
        self.known.insert(v, c);
        Ok(())
    }

    fn note_same(&mut self, a: usize, b: usize) {
        self.touch(a);
        self.touch(b);
        self.same.push((a, b));
    }

    /// Records class evidence from one instruction.
    fn note_inst(&mut self, ln: usize, inst: &Inst) -> Result<(), ParseError> {
        // Touch everything first so max_vreg is right.
        if let Some(d) = inst.def() {
            self.touch(d.index());
        }
        inst.visit_uses(|u| self.max_vreg = self.max_vreg.max(u.index()));
        match inst {
            Inst::Copy { dst, src } => self.note_same(dst.index(), src.index()),
            Inst::Iconst { dst, .. } => self.note_class(ln, dst.index(), RegClass::Int)?,
            Inst::Fconst { dst, .. } => self.note_class(ln, dst.index(), RegClass::Float)?,
            Inst::Load { base, .. } | Inst::Store { base, .. } => {
                // dst/src class was recorded by the caller (syntax marker).
                self.note_class(ln, base.index(), RegClass::Int)?;
            }
            Inst::Load8 { dst, base, .. } => {
                self.note_class(ln, dst.index(), RegClass::Int)?;
                self.note_class(ln, base.index(), RegClass::Int)?;
            }
            Inst::Bin { op, dst, lhs, rhs } => {
                let c = if op.is_float() {
                    RegClass::Float
                } else {
                    RegClass::Int
                };
                for v in [dst, lhs, rhs] {
                    self.note_class(ln, v.index(), c)?;
                }
            }
            Inst::BinImm { dst, lhs, .. } => {
                self.note_class(ln, dst.index(), RegClass::Int)?;
                self.note_class(ln, lhs.index(), RegClass::Int)?;
            }
            Inst::Branch { lhs, rhs, .. } => {
                self.note_class(ln, lhs.index(), RegClass::Int)?;
                self.note_class(ln, rhs.index(), RegClass::Int)?;
            }
            Inst::BranchImm { lhs, .. } => self.note_class(ln, lhs.index(), RegClass::Int)?,
            Inst::Ret { value: Some(v) } => {
                // The returned value adopts the signature's return class.
                if let Some(c) = self.ret_class {
                    self.note_class(ln, v.index(), c)?;
                }
            }
            Inst::Call { .. }
            | Inst::Jump { .. }
            | Inst::Ret { value: None }
            | Inst::Reload { .. }
            | Inst::Spill { .. } => {}
        }
        Ok(())
    }

    fn note_phi(&mut self, phi: &Phi) {
        self.touch(phi.dst.index());
        for &(_, v) in &phi.args {
            self.note_same(phi.dst.index(), v.index());
        }
    }
}

enum Parsed {
    Inst(Inst),
    Phi(Phi),
}

/// Strips a trailing comment: both `//` (the IR form) and `;` (the
/// machine-code form) start one.
fn strip_comment(line: &str) -> &str {
    let end = match (line.find("//"), line.find(';')) {
        (Some(a), Some(b)) => a.min(b),
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => return line,
    };
    &line[..end]
}

fn parse_vreg(ln: usize, s: &str) -> Result<usize, ParseError> {
    let Some(n) = s.strip_prefix('v') else {
        perr!(ln, "expected a virtual register, got `{s}`");
    };
    n.parse()
        .map_err(|_| ParseError {
            line: ln,
            message: format!("bad register `{s}`"),
        })
}

fn vreg(ln: usize, s: &str) -> Result<VReg, ParseError> {
    Ok(VReg::new(parse_vreg(ln, s)?))
}

fn parse_block(ln: usize, s: &str) -> Result<Block, ParseError> {
    let Some(n) = s.strip_prefix('b') else {
        perr!(ln, "expected a block label, got `{s}`");
    };
    let i: usize = n.parse().map_err(|_| ParseError {
        line: ln,
        message: format!("bad block `{s}`"),
    })?;
    Ok(Block::new(i))
}

fn parse_class(ln: usize, s: &str) -> Result<RegClass, ParseError> {
    match s {
        "int" => Ok(RegClass::Int),
        "float" => Ok(RegClass::Float),
        other => perr!(ln, "unknown register class `{other}`"),
    }
}

fn parse_imm(ln: usize, s: &str) -> Result<i64, ParseError> {
    let s = s.strip_prefix('#').unwrap_or(s);
    s.parse().map_err(|_| ParseError {
        line: ln,
        message: format!("bad immediate `{s}`"),
    })
}

/// Parses a `[base+off]` or `f64[base+off]` or `frame[slot]` address.
fn parse_addr(ln: usize, s: &str) -> Result<(VReg, i32), ParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| ParseError {
            line: ln,
            message: format!("expected `[base+offset]`, got `{s}`"),
        })?;
    // base+off or base+-off (negative offsets print as "+-5").
    let (b, o) = inner.split_once('+').ok_or_else(|| ParseError {
        line: ln,
        message: format!("expected `base+offset` in `{s}`"),
    })?;
    let off: i32 = o.parse().map_err(|_| ParseError {
        line: ln,
        message: format!("bad offset `{o}`"),
    })?;
    Ok((vreg(ln, b.trim())?, off))
}

fn parse_cmp(ln: usize, s: &str) -> Result<CmpOp, ParseError> {
    match s {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => perr!(ln, "unknown comparison `{other}`"),
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn intern(callees: &mut Vec<String>, name: &str) -> crate::CalleeId {
    if let Some(i) = callees.iter().position(|c| c == name) {
        crate::CalleeId::new(i)
    } else {
        callees.push(name.to_string());
        crate::CalleeId::new(callees.len() - 1)
    }
}

/// Parses a call tail: `NAME(arg, ...)`.
fn parse_call(
    ln: usize,
    s: &str,
    callees: &mut Vec<String>,
    ret: Option<VReg>,
) -> Result<Inst, ParseError> {
    let Some(open) = s.find('(') else {
        perr!(ln, "expected `(` in call");
    };
    let Some(close) = s.rfind(')') else {
        perr!(ln, "expected `)` in call");
    };
    let name = s[..open].trim();
    if let Err(e) = validate_ident(name) {
        perr!(ln, "callee name: {e}");
    }
    let mut args = Vec::new();
    let alist = &s[open + 1..close];
    if !alist.trim().is_empty() {
        for a in alist.split(',') {
            args.push(vreg(ln, a.trim())?);
        }
    }
    Ok(Inst::Call {
        callee: intern(callees, name),
        args,
        ret,
    })
}

fn parse_line(
    ln: usize,
    line: &str,
    callees: &mut Vec<String>,
    evidence: &mut Vec<(usize, RegClass)>,
) -> Result<Parsed, ParseError> {
    // Control flow.
    if let Some(t) = line.strip_prefix("jump ") {
        return Ok(Parsed::Inst(Inst::Jump {
            target: parse_block(ln, t.trim())?,
        }));
    }
    if line == "ret" {
        return Ok(Parsed::Inst(Inst::Ret { value: None }));
    }
    if let Some(v) = line.strip_prefix("ret ") {
        return Ok(Parsed::Inst(Inst::Ret {
            value: Some(vreg(ln, v.trim())?),
        }));
    }
    if let Some(rest) = line.strip_prefix("if ") {
        // `OP lhs, rhs goto bX else bY` (rhs may be #imm)
        let Some((cond, targets)) = rest.split_once(" goto ") else {
            perr!(ln, "expected `goto` in branch");
        };
        let Some((then_s, else_s)) = targets.split_once(" else ") else {
            perr!(ln, "expected `else` in branch");
        };
        let mut it = cond.splitn(2, ' ');
        let op = parse_cmp(ln, it.next().unwrap_or(""))?;
        let operands = it.next().unwrap_or("");
        let Some((lhs_s, rhs_s)) = operands.split_once(',') else {
            perr!(ln, "expected two branch operands");
        };
        let lhs = vreg(ln, lhs_s.trim())?;
        let rhs_s = rhs_s.trim();
        let then_dst = parse_block(ln, then_s.trim())?;
        let else_dst = parse_block(ln, else_s.trim())?;
        return Ok(Parsed::Inst(if let Some(imm) = rhs_s.strip_prefix('#') {
            Inst::BranchImm {
                op,
                lhs,
                imm: parse_imm(ln, imm)?,
                then_dst,
                else_dst,
            }
        } else {
            Inst::Branch {
                op,
                lhs,
                rhs: vreg(ln, rhs_s)?,
                then_dst,
                else_dst,
            }
        }));
    }
    // Void call.
    if let Some(c) = line.strip_prefix("call ") {
        return Ok(Parsed::Inst(parse_call(ln, c, callees, None)?));
    }
    // Stores: `[b+o] = v`, `f64[b+o] = v`, `frame[s] = v`.
    if line.starts_with('[') || line.starts_with("f64[") || line.starts_with("frame[") {
        let Some((addr_s, src_s)) = line.split_once('=') else {
            perr!(ln, "expected `=` in store");
        };
        let (addr_s, src_s) = (addr_s.trim(), src_s.trim());
        if let Some(slot_s) = addr_s.strip_prefix("frame[") {
            let slot: u32 = slot_s
                .strip_suffix(']')
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| ParseError {
                    line: ln,
                    message: format!("bad frame slot in `{addr_s}`"),
                })?;
            return Ok(Parsed::Inst(Inst::Spill {
                src: vreg(ln, src_s)?,
                slot,
            }));
        }
        let is_float = addr_s.starts_with("f64");
        let bare = addr_s.strip_prefix("f64").unwrap_or(addr_s);
        let (base, offset) = parse_addr(ln, bare)?;
        let src = vreg(ln, src_s)?;
        evidence.push((
            src.index(),
            if is_float { RegClass::Float } else { RegClass::Int },
        ));
        return Ok(Parsed::Inst(Inst::Store { src, base, offset }));
    }

    // Everything else defines a register: `vN[: class] = RHS`.
    let Some((lhs_s, rhs_s)) = line.split_once('=') else {
        perr!(ln, "unrecognized instruction `{line}`");
    };
    let (lhs_s, rhs) = (lhs_s.trim(), rhs_s.trim());
    let (dst_s, ascription) = match lhs_s.split_once(':') {
        Some((d, c)) => (d.trim(), Some(parse_class(ln, c.trim())?)),
        None => (lhs_s, None),
    };
    let dst = vreg(ln, dst_s)?;
    if let Some(c) = ascription {
        evidence.push((dst.index(), c));
    }

    // φ.
    if rhs == "phi" {
        // Printed by (invalid) empty φs; `Function::verify` rejects them
        // at build time, and the parser mirrors that with a specific
        // diagnostic rather than the generic unrecognized-RHS error.
        perr!(ln, "phi has no arguments");
    }
    if let Some(p) = rhs.strip_prefix("phi ") {
        let mut args = Vec::new();
        for part in p.split("],") {
            let part = part.trim().trim_start_matches('[').trim_end_matches(']');
            let Some((b, v)) = part.split_once(':') else {
                perr!(ln, "phi arg `{part}` must be `[bN: vM]`");
            };
            args.push((parse_block(ln, b.trim())?, vreg(ln, v.trim())?));
        }
        return Ok(Parsed::Phi(Phi { dst, args }));
    }
    // Call with result: the ascription decides the class (default int).
    if let Some(c) = rhs.strip_prefix("call ") {
        let inst = parse_call(ln, c, callees, Some(dst))?;
        evidence.push((dst.index(), ascription.unwrap_or(RegClass::Int)));
        return Ok(Parsed::Inst(inst));
    }
    // Reload.
    if let Some(slot_s) = rhs.strip_prefix("frame[") {
        let slot: u32 = slot_s
            .strip_suffix(']')
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| ParseError {
                line: ln,
                message: format!("bad frame slot in `{rhs}`"),
            })?;
        return Ok(Parsed::Inst(Inst::Reload { dst, slot }));
    }
    // Byte load.
    if let Some(a) = rhs.strip_prefix("byte ") {
        let (base, offset) = parse_addr(ln, a.trim())?;
        return Ok(Parsed::Inst(Inst::Load8 { dst, base, offset }));
    }
    // Float load.
    if let Some(a) = rhs.strip_prefix("f64[") {
        let (base, offset) = parse_addr(ln, &format!("[{a}"))?;
        evidence.push((dst.index(), RegClass::Float));
        return Ok(Parsed::Inst(Inst::Load { dst, base, offset }));
    }
    // Int load.
    if rhs.starts_with('[') {
        let (base, offset) = parse_addr(ln, rhs)?;
        evidence.push((dst.index(), RegClass::Int));
        return Ok(Parsed::Inst(Inst::Load { dst, base, offset }));
    }
    // Binary op: `OP lhs, rhs` with rhs possibly `#imm`.
    let mut it = rhs.splitn(2, ' ');
    let head = it.next().unwrap_or("");
    if let Some(op) = parse_binop(head) {
        let operands = it.next().unwrap_or("");
        let Some((a, b)) = operands.split_once(',') else {
            perr!(ln, "expected two operands for `{head}`");
        };
        let lhs = vreg(ln, a.trim())?;
        let b = b.trim();
        return Ok(Parsed::Inst(if let Some(imm) = b.strip_prefix('#') {
            Inst::BinImm {
                op,
                dst,
                lhs,
                imm: parse_imm(ln, imm)?,
            }
        } else {
            Inst::Bin {
                op,
                dst,
                lhs,
                rhs: vreg(ln, b)?,
            }
        }));
    }
    // Float constant: `1.5f` (also `inff`, `NaNf`, `-0f`, `1e300f`).
    if let Some(f) = rhs.strip_suffix('f') {
        if let Ok(v) = f.parse::<f64>() {
            return Ok(Parsed::Inst(Inst::Fconst { dst, value: v }));
        }
        // Anything numeric-looking with the `f` suffix was a float
        // constant attempt; report it as such instead of falling
        // through to the generic unrecognized-RHS error.
        if f.starts_with(|c: char| c.is_ascii_digit() || matches!(c, '-' | '+' | '.')) {
            perr!(ln, "bad float constant `{rhs}`");
        }
    }
    // Integer constant.
    if let Ok(v) = rhs.parse::<i64>() {
        return Ok(Parsed::Inst(Inst::Iconst { dst, value: v }));
    }
    // Copy.
    if rhs.starts_with('v') && !rhs.contains(' ') {
        return Ok(Parsed::Inst(Inst::Copy {
            dst,
            src: vreg(ln, rhs)?,
        }));
    }
    perr!(ln, "unrecognized right-hand side `{rhs}`")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    fn roundtrip(f: &Function) {
        let text = f.to_string();
        let parsed = parse_function(&text)
            .unwrap_or_else(|e| panic!("reparse of {} failed: {e}\n{text}", f.name));
        assert_eq!(&parsed, f, "round-trip mismatch for {}\n{text}", f.name);
        assert_eq!(parsed.to_string(), text, "print-parse-print not a fixpoint");
    }

    #[test]
    fn roundtrip_straight_line() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 8);
        let y = b.load8(p, 0);
        let s = b.bin(BinOp::Add, x, y);
        let t = b.bin_imm(BinOp::Mul, s, -3);
        b.store(t, p, 64);
        b.ret(Some(t));
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrip_floats_and_calls() {
        let mut b = FunctionBuilder::new("g", vec![RegClass::Float, RegClass::Int], None);
        let q = b.param(0);
        let p = b.param(1);
        let h = b.fconst(0.5);
        let m = b.bin(BinOp::FMul, q, h);
        b.store(m, p, 0);
        let fl = b.fload(p, 16);
        let r = b.call("sin", vec![fl], Some(RegClass::Float)).unwrap();
        let i = b.call("trunc", vec![r], Some(RegClass::Int)).unwrap();
        b.call("log", vec![i], None);
        b.ret(None);
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrip_control_flow_and_phi() {
        let mut b = FunctionBuilder::new("h", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let t = b.create_block();
        let e = b.create_block();
        let j = b.create_block();
        b.branch_imm(CmpOp::Ge, p, 10, t, e);
        b.switch_to(t);
        let a = b.iconst(1);
        b.jump(j);
        b.switch_to(e);
        let c = b.bin_imm(BinOp::Add, p, 1);
        b.jump(j);
        b.switch_to(j);
        let m = b.phi(RegClass::Int, vec![(t, a), (e, c)]);
        b.ret(Some(m));
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrip_branch_two_regs_and_spills() {
        let mut b = FunctionBuilder::new("k", vec![RegClass::Int, RegClass::Int], None);
        let p = b.param(0);
        let q = b.param(1);
        let t = b.create_block();
        let e = b.create_block();
        b.emit(Inst::Spill { src: p, slot: 3 });
        let r = b.new_vreg(RegClass::Int);
        b.emit(Inst::Reload { dst: r, slot: 3 });
        b.branch(CmpOp::Lt, r, q, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrip_generated_workloads() {
        // The printer and parser must agree on everything the generator
        // can produce (pre-lowering, φs included).
        // Use a tiny custom program with comments stripped.
        let text = "\
fn demo(v0: int) -> int {   // header comment
b0:
    v1 = [v0+0]
    v2 = xor v1, #255
    ret v2
}";
        let f = parse_function(text).unwrap();
        assert_eq!(f.name, "demo");
        assert_eq!(f.num_insts(), 3);
        roundtrip(&f);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_function("fn f() {\nb0:\n    v0 = bogus v1\n}").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_function("not a function").unwrap_err();
        assert!(e.message.contains("fn"));
        let e = parse_function("fn f() {\nb0:\n    ret\n").unwrap_err();
        assert!(e.message.contains("closing brace"));
    }

    #[test]
    fn verify_failures_surface() {
        // Branch to an out-of-range block.
        let e = parse_function("fn f() {\nb0:\n    jump b7\n}").unwrap_err();
        assert!(e.message.contains("out-of-range"), "{e}");
    }

    #[test]
    fn roundtrip_float_reload_and_negative_offsets() {
        let mut b = FunctionBuilder::new("fr", vec![RegClass::Int], Some(RegClass::Float));
        let p = b.param(0);
        let x = b.fload(p, -8);
        b.emit(Inst::Spill { src: x, slot: 0 });
        let r = b.new_vreg(RegClass::Float);
        b.emit(Inst::Reload { dst: r, slot: 0 });
        b.store(r, p, -16);
        b.ret(Some(r));
        let f = b.finish();
        assert!(f.to_string().contains("v2: float = frame[0]"));
        assert!(f.to_string().contains("f64[v0+-16]"));
        roundtrip(&f);
    }

    #[test]
    fn ret_value_adopts_signature_class() {
        // Without the `ret` evidence the reload-defined web would
        // default to int and verification would reject the function.
        let text = "fn f() -> float {\nb0:\n    v0 = frame[0]\n    v1 = v0\n    ret v1\n}";
        let f = parse_function(text).unwrap();
        assert_eq!(f.class_of(VReg::new(0)), RegClass::Float);
        assert_eq!(f.class_of(VReg::new(1)), RegClass::Float);
        // The printer re-adds the float-reload ascription.
        assert!(f.to_string().contains("v0: float = frame[0]"));
        roundtrip(&f);
    }

    #[test]
    fn both_comment_forms_are_stripped() {
        let text = "\
fn c(v0: int) -> int {  ; machine-style comment
b0:
    v1 = add v0, #1     // ir-style comment
    ; a full-line comment
    // another
    ret v1
}";
        let f = parse_function(text).unwrap();
        assert_eq!(f.num_insts(), 2);
        roundtrip(&f);
    }

    #[test]
    fn multi_function_texts_parse() {
        let a = "fn a() {\nb0:\n    ret\n}";
        let b = "fn b(v0: int) -> int {\nb0:\n    ret v0\n}";
        let funcs = parse_functions(&format!("{a}\n\n{b}\n")).unwrap();
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "a");
        assert_eq!(funcs[1].name, "b");
        // parse_function still rejects trailing content...
        let e = parse_function(&format!("{a}\n{b}")).unwrap_err();
        assert!(e.message.contains("trailing content"), "{e}");
        // ...and a malformed second function points at the right line.
        let e = parse_functions(&format!("{a}\nnot a function")).unwrap_err();
        assert_eq!(e.line, 5);
    }

    #[test]
    fn bad_float_constant_is_a_specific_error() {
        let e = parse_function("fn f() {\nb0:\n    v1 = 1..5f\n    ret\n}").unwrap_err();
        assert!(e.message.contains("bad float constant"), "{e}");
        assert_eq!(e.line, 3);
        let e = parse_function("fn f() {\nb0:\n    v1 = -1-2f\n    ret\n}").unwrap_err();
        assert!(e.message.contains("bad float constant"), "{e}");
    }

    #[test]
    fn nonfinite_float_constants_roundtrip() {
        let parse_const = |text: &str| {
            let f = parse_function(&format!("fn f() {{\nb0:\n    v0 = {text}\n    ret\n}}")).unwrap();
            let Inst::Fconst { value, .. } = f.blocks[0].insts[0] else {
                panic!("expected fconst from `{text}`");
            };
            (value, f.to_string())
        };
        let (v, text) = parse_const("inff");
        assert_eq!(v, f64::INFINITY);
        assert!(text.contains("v0 = inff"));
        let (v, text) = parse_const("-inff");
        assert_eq!(v, f64::NEG_INFINITY);
        assert!(text.contains("v0 = -inff"));
        // NaN breaks derived equality, so pin the printed fixpoint.
        let (v, text) = parse_const("NaNf");
        assert!(v.is_nan());
        assert!(text.contains("v0 = NaNf"));
        assert_eq!(parse_function(&text).unwrap().to_string(), text);
        // Negative zero keeps its sign bit.
        let (v, text) = parse_const("-0f");
        assert_eq!(v, 0.0);
        assert!(v.is_sign_negative());
        assert!(text.contains("v0 = -0f"));
    }

    #[test]
    fn empty_phi_is_a_specific_error() {
        let e = parse_function("fn f() {\nb0:\n    v0 = phi\n    ret\n}").unwrap_err();
        assert!(e.message.contains("phi has no arguments"), "{e}");
    }

    #[test]
    fn unparseable_names_are_rejected_with_position() {
        let e = parse_function("fn two words() {\nb0:\n    ret\n}").unwrap_err();
        assert!(e.message.contains("function name"), "{e}");
        assert_eq!(e.line, 1);
        let e = parse_function("fn f() {\nb0:\n    call 9g(v0)\n    ret\n}").unwrap_err();
        assert!(e.message.contains("callee name"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn float_call_needs_ascription() {
        let text = "\
fn f(v0: int) {
b0:
    v1: float = call sin()
    f64[v0+0] = v1
    ret
}";
        let f = parse_function(text).unwrap();
        assert_eq!(f.class_of(VReg::new(1)), RegClass::Float);
    }
}
