//! Instructions of the register-transfer IR.

use crate::{Block, CalleeId, VReg};
use std::fmt;

/// A two-operand arithmetic or logical operator.
///
/// Integer and floating-point variants are separate so an instruction's
/// register class is syntactically evident.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (wrapping; division by zero yields zero).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift left (by the low 6 bits of the right operand).
    Shl,
    /// Arithmetic shift right (by the low 6 bits of the right operand).
    Shr,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
}

impl BinOp {
    /// Whether this operator works on the floating-point register class.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// The mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An integer comparison used by conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less than.
    Lt,
    /// Signed less than or equal.
    Le,
    /// Signed greater than.
    Gt,
    /// Signed greater than or equal.
    Ge,
}

impl CmpOp {
    /// The mnemonic used by the pretty-printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Evaluates the comparison on two signed integers.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A register-transfer instruction.
///
/// Every instruction defines at most one virtual register. Control-flow
/// instructions ([`Inst::Jump`], [`Inst::Branch`], [`Inst::Ret`]) must appear
/// only as the final instruction of a block.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Register-to-register copy: `dst = src`. Copies are the raw material
    /// of register coalescing; SSA φ-lowering and call lowering produce them
    /// in large numbers.
    Copy {
        /// Destination register.
        dst: VReg,
        /// Source register (same class as `dst`).
        src: VReg,
    },
    /// Integer constant: `dst = value`.
    Iconst {
        /// Destination register (integer class).
        dst: VReg,
        /// The constant.
        value: i64,
    },
    /// Floating-point constant: `dst = value`.
    Fconst {
        /// Destination register (float class).
        dst: VReg,
        /// The constant.
        value: f64,
    },
    /// Memory load: `dst = [base + offset]`.
    ///
    /// Two loads from `base+o` and `base+o+8` in the same block are
    /// *paired-load candidates* (IA-64 `ldfp`-style): if allocation gives
    /// their destinations registers satisfying the target's pairing rule,
    /// the rewriter fuses them into one instruction.
    Load {
        /// Destination register.
        dst: VReg,
        /// Base address register (integer class).
        base: VReg,
        /// Byte offset.
        offset: i32,
    },
    /// Byte load: `dst = zx([base + offset] & 0xff)` — the low byte of
    /// the addressed word, zero-extended.
    ///
    /// On targets with x86-style *limited register usage* (§3.1's second
    /// preference type), only a subset of registers can receive a byte
    /// load directly; any other destination needs an explicit
    /// zero-extension instruction after it. The allocator records a
    /// register-set preference for these destinations.
    Load8 {
        /// Destination register (integer class).
        dst: VReg,
        /// Base address register (integer class).
        base: VReg,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store: `[base + offset] = src`.
    Store {
        /// The value stored.
        src: VReg,
        /// Base address register (integer class).
        base: VReg,
        /// Byte offset.
        offset: i32,
    },
    /// Two-operand operation: `dst = lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Right operand.
        rhs: VReg,
    },
    /// Two-operand operation with an immediate: `dst = lhs op imm`.
    BinImm {
        /// Operator (integer only).
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        lhs: VReg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Function call: `ret = callee(args...)`.
    ///
    /// Before register allocation, arguments and return values are plain
    /// virtual registers; call lowering rewrites them through the fixed
    /// argument/return registers of the calling convention, creating the
    /// dedicated-register preferences of the paper's §3.1.
    Call {
        /// Which function is called (symbolic).
        callee: CalleeId,
        /// Argument values, in order.
        args: Vec<VReg>,
        /// Return value, if any.
        ret: Option<VReg>,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Block,
    },
    /// Conditional branch: `if lhs op rhs goto then_dst else else_dst`.
    Branch {
        /// Comparison operator.
        op: CmpOp,
        /// Left comparison operand (integer class).
        lhs: VReg,
        /// Right comparison operand (integer class).
        rhs: VReg,
        /// Target when the comparison holds.
        then_dst: Block,
        /// Target when it does not.
        else_dst: Block,
    },
    /// Conditional branch against an immediate:
    /// `if lhs op imm goto then_dst else else_dst`. Compare-with-zero
    /// loop exits (the paper's Figure 7 `if v0 != 0`) use this form so no
    /// constant occupies a register across the loop.
    BranchImm {
        /// Comparison operator.
        op: CmpOp,
        /// Left comparison operand (integer class).
        lhs: VReg,
        /// Immediate right operand.
        imm: i64,
        /// Target when the comparison holds.
        then_dst: Block,
        /// Target when it does not.
        else_dst: Block,
    },
    /// Function return.
    Ret {
        /// Returned value, if the function has one.
        value: Option<VReg>,
    },
    /// Reload from a spill slot: `dst = frame[slot]`.
    ///
    /// Emitted by spill-code insertion (Chaitin-style splitting: a load
    /// before each use of a spilled live range). Never produced by
    /// front-end builders.
    Reload {
        /// Destination register.
        dst: VReg,
        /// Frame slot index.
        slot: u32,
    },
    /// Spill to a slot: `frame[slot] = src`.
    ///
    /// Emitted by spill-code insertion (a store after each definition of a
    /// spilled live range).
    Spill {
        /// The spilled register.
        src: VReg,
        /// Frame slot index.
        slot: u32,
    },
}

impl Inst {
    /// The virtual register defined by this instruction, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Iconst { dst, .. }
            | Inst::Fconst { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Load8 { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Reload { dst, .. } => Some(*dst),
            Inst::Call { ret, .. } => *ret,
            Inst::Store { .. }
            | Inst::Spill { .. }
            | Inst::Jump { .. }
            | Inst::Branch { .. }
            | Inst::BranchImm { .. }
            | Inst::Ret { .. } => None,
        }
    }

    /// A mutable reference to the defined register, if any.
    pub fn def_mut(&mut self) -> Option<&mut VReg> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Iconst { dst, .. }
            | Inst::Fconst { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Load8 { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::BinImm { dst, .. }
            | Inst::Reload { dst, .. } => Some(dst),
            Inst::Call { ret, .. } => ret.as_mut(),
            Inst::Store { .. }
            | Inst::Spill { .. }
            | Inst::Jump { .. }
            | Inst::Branch { .. }
            | Inst::BranchImm { .. }
            | Inst::Ret { .. } => None,
        }
    }

    /// Visits every virtual register used (read) by this instruction.
    pub fn visit_uses(&self, mut f: impl FnMut(VReg)) {
        match self {
            Inst::Copy { src, .. } => f(*src),
            Inst::Iconst { .. } | Inst::Fconst { .. } => {}
            Inst::Load { base, .. } | Inst::Load8 { base, .. } => f(*base),
            Inst::Store { src, base, .. } => {
                f(*src);
                f(*base);
            }
            Inst::Bin { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::BinImm { lhs, .. } => f(*lhs),
            Inst::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            Inst::Jump { .. } => {}
            Inst::Branch { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::BranchImm { lhs, .. } => f(*lhs),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
            Inst::Reload { .. } => {}
            Inst::Spill { src, .. } => f(*src),
        }
    }

    /// Visits every used virtual register mutably, allowing renaming.
    pub fn visit_uses_mut(&mut self, mut f: impl FnMut(&mut VReg)) {
        match self {
            Inst::Copy { src, .. } => f(src),
            Inst::Iconst { .. } | Inst::Fconst { .. } => {}
            Inst::Load { base, .. } | Inst::Load8 { base, .. } => f(base),
            Inst::Store { src, base, .. } => {
                f(src);
                f(base);
            }
            Inst::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::BinImm { lhs, .. } => f(lhs),
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Jump { .. } => {}
            Inst::Branch { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::BranchImm { lhs, .. } => f(lhs),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
            Inst::Reload { .. } => {}
            Inst::Spill { src, .. } => f(src),
        }
    }

    /// Collects the used registers into a vector (convenience for tests).
    pub fn uses(&self) -> Vec<VReg> {
        let mut out = Vec::new();
        self.visit_uses(|v| out.push(v));
        out
    }

    /// Returns `(dst, src)` when this is a register-to-register copy.
    pub fn as_copy(&self) -> Option<(VReg, VReg)> {
        match self {
            Inst::Copy { dst, src } => Some((*dst, *src)),
            _ => None,
        }
    }

    /// Whether this instruction must terminate its block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jump { .. } | Inst::Branch { .. } | Inst::BranchImm { .. } | Inst::Ret { .. }
        )
    }

    /// Whether this is a function call.
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. })
    }

    /// The control-flow successors of a terminator (empty for `Ret`).
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a terminator.
    pub fn successors(&self) -> Vec<Block> {
        match self {
            Inst::Jump { target } => vec![*target],
            Inst::Branch {
                then_dst, else_dst, ..
            }
            | Inst::BranchImm {
                then_dst, else_dst, ..
            } => {
                if then_dst == else_dst {
                    vec![*then_dst]
                } else {
                    vec![*then_dst, *else_dst]
                }
            }
            Inst::Ret { .. } => Vec::new(),
            other => panic!("successors() on non-terminator {other:?}"),
        }
    }

    /// Rewrites branch/jump targets through `map`.
    pub fn map_targets(&mut self, mut map: impl FnMut(Block) -> Block) {
        match self {
            Inst::Jump { target } => *target = map(*target),
            Inst::Branch {
                then_dst, else_dst, ..
            }
            | Inst::BranchImm {
                then_dst, else_dst, ..
            } => {
                *then_dst = map(*then_dst);
                *else_dst = map(*else_dst);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VReg {
        VReg::new(i)
    }

    #[test]
    fn def_and_uses_of_bin() {
        let i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(2),
        };
        assert_eq!(i.def(), Some(v(0)));
        assert_eq!(i.uses(), vec![v(1), v(2)]);
        assert!(!i.is_terminator());
    }

    #[test]
    fn store_has_no_def() {
        let i = Inst::Store {
            src: v(3),
            base: v(4),
            offset: 8,
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![v(3), v(4)]);
    }

    #[test]
    fn call_defs_ret_and_uses_args() {
        let i = Inst::Call {
            callee: CalleeId::new(0),
            args: vec![v(1), v(2), v(3)],
            ret: Some(v(0)),
        };
        assert_eq!(i.def(), Some(v(0)));
        assert_eq!(i.uses(), vec![v(1), v(2), v(3)]);
        assert!(i.is_call());
    }

    #[test]
    fn branch_successors_dedup() {
        let i = Inst::Branch {
            op: CmpOp::Eq,
            lhs: v(0),
            rhs: v(1),
            then_dst: Block::new(3),
            else_dst: Block::new(3),
        };
        assert_eq!(i.successors(), vec![Block::new(3)]);
        let j = Inst::Branch {
            op: CmpOp::Eq,
            lhs: v(0),
            rhs: v(1),
            then_dst: Block::new(1),
            else_dst: Block::new(2),
        };
        assert_eq!(j.successors(), vec![Block::new(1), Block::new(2)]);
    }

    #[test]
    fn copy_recognized() {
        let i = Inst::Copy { dst: v(0), src: v(1) };
        assert_eq!(i.as_copy(), Some((v(0), v(1))));
        assert_eq!(
            Inst::Iconst { dst: v(0), value: 1 }.as_copy(),
            None
        );
    }

    #[test]
    fn visit_uses_mut_renames() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            dst: v(0),
            lhs: v(1),
            rhs: v(1),
        };
        i.visit_uses_mut(|u| *u = v(u.index() + 10));
        assert_eq!(i.uses(), vec![v(11), v(11)]);
    }

    #[test]
    fn cmp_eval_matrix() {
        assert!(CmpOp::Eq.eval(1, 1));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Lt.eval(-2, 1));
        assert!(CmpOp::Le.eval(1, 1));
        assert!(CmpOp::Gt.eval(5, 1));
        assert!(CmpOp::Ge.eval(5, 5));
        assert!(!CmpOp::Lt.eval(1, -2));
    }
}
