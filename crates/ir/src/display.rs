//! Textual rendering of functions (for diagnostics, examples, and tests).

use crate::{Function, Inst};
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, v) in self.param_vregs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}: {}", self.sig.params[i])?;
        }
        write!(f, ")")?;
        if let Some(r) = self.sig.ret {
            write!(f, " -> {r}")?;
        }
        writeln!(f, " {{")?;
        for b in self.block_ids() {
            writeln!(f, "{b}:")?;
            let data = self.block(b);
            for phi in &data.phis {
                write!(f, "    {} = phi", phi.dst)?;
                for (i, (pred, v)) in phi.args.iter().enumerate() {
                    write!(f, "{} [{pred}: {v}]", if i == 0 { " " } else { ", " })?;
                }
                writeln!(f)?;
            }
            for inst in &data.insts {
                writeln!(f, "    {}", DisplayInst { inst, func: self })?;
            }
        }
        write!(f, "}}")
    }
}

/// Helper that renders one instruction with callee names resolved.
struct DisplayInst<'a> {
    inst: &'a Inst,
    func: &'a Function,
}

impl fmt::Display for DisplayInst<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use crate::RegClass;
        match self.inst {
            Inst::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Inst::Iconst { dst, value } => write!(f, "{dst} = {value}"),
            Inst::Fconst { dst, value } => write!(f, "{dst} = {value}f"),
            Inst::Load { dst, base, offset } => {
                if self.func.class_of(*dst) == RegClass::Float {
                    write!(f, "{dst} = f64[{base}+{offset}]")
                } else {
                    write!(f, "{dst} = [{base}+{offset}]")
                }
            }
            Inst::Load8 { dst, base, offset } => write!(f, "{dst} = byte [{base}+{offset}]"),
            Inst::Store { src, base, offset } => {
                if self.func.class_of(*src) == RegClass::Float {
                    write!(f, "f64[{base}+{offset}] = {src}")
                } else {
                    write!(f, "[{base}+{offset}] = {src}")
                }
            }
            Inst::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Inst::BinImm { op, dst, lhs, imm } => write!(f, "{dst} = {op} {lhs}, #{imm}"),
            Inst::Call { callee, args, ret } => {
                if let Some(r) = ret {
                    if self.func.class_of(*r) == RegClass::Float {
                        write!(f, "{r}: float = ")?;
                    } else {
                        write!(f, "{r} = ")?;
                    }
                }
                write!(f, "call {}(", self.func.callees[callee.index()])?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Inst::Jump { target } => write!(f, "jump {target}"),
            Inst::Branch {
                op,
                lhs,
                rhs,
                then_dst,
                else_dst,
            } => write!(f, "if {op} {lhs}, {rhs} goto {then_dst} else {else_dst}"),
            Inst::BranchImm {
                op,
                lhs,
                imm,
                then_dst,
                else_dst,
            } => write!(f, "if {op} {lhs}, #{imm} goto {then_dst} else {else_dst}"),
            Inst::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            Inst::Reload { dst, slot } => {
                // Frame slots are untyped, so a float reload carries an
                // ascription — the parser has no other class evidence.
                if self.func.class_of(*dst) == RegClass::Float {
                    write!(f, "{dst}: float = frame[{slot}]")
                } else {
                    write!(f, "{dst} = frame[{slot}]")
                }
            }
            Inst::Spill { src, slot } => write!(f, "frame[{slot}] = {src}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{BinOp, FunctionBuilder, RegClass};

    #[test]
    fn display_is_readable() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 8);
        let y = b.bin(BinOp::Add, x, p);
        let r = b.call("g", vec![y], Some(RegClass::Int)).unwrap();
        b.ret(Some(r));
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("fn f(v0: int) -> int"));
        assert!(s.contains("v1 = [v0+8]"));
        assert!(s.contains("v2 = add v1, v0"));
        assert!(s.contains("v3 = call g(v2)"));
        assert!(s.contains("ret v3"));
    }
}
