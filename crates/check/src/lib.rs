//! Post-allocation symbolic checking: an independent proof that a register
//! assignment and the machine code rewritten from it preserve the semantics
//! of the input IR.
//!
//! The allocator pipeline is trusted nowhere here. Given the lowered
//! [`Function`], the final per-vreg `assignment`, and the rewritten
//! [`MachFunction`], [`check_allocation`] re-derives everything it asserts:
//!
//! 1. **Value flow** — it abstractly interprets the machine code in
//!    lockstep with the IR, tracking for every physical register and spill
//!    slot the set of virtual registers whose current value it *provably*
//!    holds (a must-analysis: sets intersect at join points, and every
//!    call empties every volatile register). Each IR use is then required
//!    to read a location that holds its vreg's value — through copies,
//!    eliminated copies, spill stores/reloads, caller-save shadows, and
//!    hoisted halves of fused paired loads.
//! 2. **Liveness / interference** — it recomputes liveness and, at every
//!    definition, requires that no simultaneously-live vreg shares the
//!    defined register unless the abstract state proves both hold the same
//!    value (the coalesced-copy-chain case).
//! 3. **Target rules** — every assigned register must exist in its class's
//!    file and match the vreg's class; every fused `LoadPair` must satisfy
//!    the class's [`PairRule`] (destination constraint, stride, alignment
//!    of the lower word); returned values must sit in the convention's
//!    return register; written non-volatiles must be declared for
//!    callee-save.
//! 4. **Frame bookkeeping** — every slot is written before it is read,
//!    and all spill traffic stays inside the declared frame
//!    (`MachFunction::num_slots`).
//!
//! The design follows regalloc2's symbolic checker: rather than executing
//! the code on concrete values, it proves the correspondence for *all*
//! inputs at once. See `DESIGN.md` §6f for the abstract domain.

use pdgc_analysis::{BitSet, Cfg, Liveness, LivenessScratch};
use pdgc_arena::{NestedPool, VecPool};
use pdgc_ir::{BinOp, Block, Function, Inst, RegClass, VReg};
use pdgc_target::{MInst, MachFunction, PhysReg, TargetDesc};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// When the pipeline runs the checker.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CheckMode {
    /// Never check (the default): allocation output is returned as-is.
    #[default]
    Off,
    /// Check only in builds with debug assertions enabled.
    DebugAssert,
    /// Check every allocation, in every build.
    Always,
}

impl CheckMode {
    /// Whether this mode runs the checker in the current build.
    pub fn should_check(self) -> bool {
        match self {
            CheckMode::Off => false,
            CheckMode::DebugAssert => cfg!(debug_assertions),
            CheckMode::Always => true,
        }
    }

    /// Parses a CLI spelling: `off`, `debug`, or `always` (alias `on`).
    pub fn parse(s: &str) -> Option<CheckMode> {
        match s {
            "off" => Some(CheckMode::Off),
            "debug" | "debug-assert" => Some(CheckMode::DebugAssert),
            "always" | "on" => Some(CheckMode::Always),
            _ => None,
        }
    }
}

impl fmt::Display for CheckMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckMode::Off => "off",
            CheckMode::DebugAssert => "debug",
            CheckMode::Always => "always",
        })
    }
}

/// How much of the function the checker value-replays.
///
/// Structural IR↔machine correspondence, register-file membership, pairing
/// rules, and frame bookkeeping are always proven for every reachable
/// block. The scope controls the expensive part — the converged abstract
/// replay that records stale-value and interference violations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CheckScope {
    /// Replay every reachable block (the default; what single-function
    /// runs use).
    #[default]
    Full,
    /// Replay only the blocks where the rewriter deviated from the direct
    /// instruction-for-instruction mapping — fused or hoisted paired
    /// loads, eliminated copies, byte-load zero-extensions, calls and
    /// their caller-save shadows, spill traffic — plus any block that
    /// returns from a non-convention register. Batch drivers use this to
    /// make re-verification pay per rewrite instead of per function.
    Rewritten,
}

/// Resettable scratch for [`check_allocation_in`]: pools the checker's
/// internal liveness storage and per-block buffers so batch drivers can
/// verify many functions without re-allocating.
#[derive(Debug, Default)]
pub struct CheckScratch {
    liveness: LivenessScratch,
    deviated: VecPool<bool>,
    live_after: NestedPool<VReg>,
    walk: BitSet,
}

impl CheckScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One rule the allocation breaks.
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// A vreg referenced by reachable code has no assigned register.
    Unassigned {
        /// The unassigned vreg.
        vreg: VReg,
    },
    /// An assignment that no execution could make correct: wrong class,
    /// out-of-range index, or a returned value outside the return register.
    BadRegister {
        /// The mis-assigned vreg.
        vreg: VReg,
        /// The register it was given.
        reg: PhysReg,
        /// Which rule the register breaks.
        why: String,
    },
    /// Two simultaneously-live vregs share a register without provably
    /// holding the same value.
    Interference {
        /// The vreg being defined (or the first live-in).
        a: VReg,
        /// The live vreg sharing its register.
        b: VReg,
        /// The shared register.
        reg: PhysReg,
        /// Block of the defining instruction.
        block: Block,
        /// Instruction index within the block.
        inst: usize,
    },
    /// A fused `LoadPair` breaks the class's pairing rule.
    BadPair {
        /// Block holding the paired load (machine indexing).
        block: Block,
        /// Machine-instruction index within the block.
        inst: usize,
        /// Which part of the rule fails.
        why: String,
    },
    /// Spill bookkeeping is wrong (a slot read before any write, or
    /// traffic outside the declared frame).
    BadSlot {
        /// The offending frame slot.
        slot: u32,
        /// Block of the offending access.
        block: Block,
        /// Instruction index within the block.
        inst: usize,
        /// What went wrong.
        why: String,
    },
    /// An IR use reads a register that does not provably hold the used
    /// vreg's value on every path (e.g. clobbered by a call with no
    /// caller-save, or overwritten by another live range).
    StaleValue {
        /// The vreg whose value was expected.
        vreg: VReg,
        /// The register the use reads.
        reg: PhysReg,
        /// Block of the use.
        block: Block,
        /// IR instruction index within the block.
        inst: usize,
    },
    /// The machine code does not structurally implement the IR (missing,
    /// extra, or mismatched instructions).
    Structure {
        /// Block where the correspondence breaks.
        block: Block,
        /// IR instruction index the walk was trying to match.
        inst: usize,
        /// What was expected vs. found.
        why: String,
    },
    /// A function-level invariant is broken (block counts, frame size,
    /// undeclared callee-saves).
    Frame {
        /// What was expected vs. found.
        why: String,
    },
}

impl Violation {
    /// A stable short tag for the violation category (used by trace
    /// events and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Unassigned { .. } => "unassigned",
            Violation::BadRegister { .. } => "bad-register",
            Violation::Interference { .. } => "interference",
            Violation::BadPair { .. } => "bad-pair",
            Violation::BadSlot { .. } => "bad-slot",
            Violation::StaleValue { .. } => "stale-value",
            Violation::Structure { .. } => "structure",
            Violation::Frame { .. } => "frame",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unassigned { vreg } => {
                write!(f, "{vreg} is referenced but has no register")
            }
            Violation::BadRegister { vreg, reg, why } => write!(f, "{vreg} in {reg}: {why}"),
            Violation::Interference {
                a,
                b,
                reg,
                block,
                inst,
            } => write!(
                f,
                "{a} and {b} are simultaneously live in {reg} at {block}:{inst}"
            ),
            Violation::BadPair { block, inst, why } => {
                write!(f, "paired load at {block}:{inst}: {why}")
            }
            Violation::BadSlot {
                slot,
                block,
                inst,
                why,
            } => write!(f, "frame slot {slot} at {block}:{inst}: {why}"),
            Violation::StaleValue {
                vreg,
                reg,
                block,
                inst,
            } => write!(
                f,
                "use of {vreg} at {block}:{inst} reads {reg}, which does not hold its value"
            ),
            Violation::Structure { block, inst, why } => write!(
                f,
                "machine code diverges from the IR at {block}, instruction {inst}: {why}"
            ),
            Violation::Frame { why } => f.write_str(why),
        }
    }
}

/// The checker's verdict when an allocation is wrong.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckError {
    /// Name of the function whose allocation failed.
    pub func: String,
    /// Every rule the allocation breaks, in discovery order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checker rejected the allocation of `{}` ({} violation{})",
            self.func,
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        )?;
        for v in &self.violations {
            write!(f, "\n  - [{}] {v}", v.kind())?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckError {}

/// What a successful check covered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CheckReport {
    /// Reachable blocks proven.
    pub blocks: usize,
    /// IR instructions matched against machine code.
    pub ir_insts: usize,
    /// Machine instructions consumed by the walk.
    pub mach_insts: usize,
    /// Fused paired loads validated against the target's `PairRule`.
    pub paired_loads: usize,
    /// The scope the proof ran at ([`CheckScope::Full`] re-proves value
    /// flow everywhere; [`CheckScope::Rewritten`] replays only
    /// rewriter-changed blocks) — recorded so metrics snapshots can tell
    /// full proofs from incremental ones.
    pub scope: CheckScope,
}

/// Independently proves that `mach` (rewritten under `assignment`)
/// preserves the semantics of `func` on `target`.
///
/// `func` must be the *lowered* function the assignment refers to (the
/// `lowered` field of `AllocOutput`): φs eliminated and calls routed
/// through pinned argument registers, with any spill code of later rounds
/// already inserted.
pub fn check_allocation(
    func: &Function,
    assignment: &[Option<PhysReg>],
    mach: &MachFunction,
    target: &TargetDesc,
) -> Result<CheckReport, CheckError> {
    check_allocation_in(
        func,
        assignment,
        mach,
        target,
        CheckScope::Full,
        &mut CheckScratch::default(),
    )
}

/// Like [`check_allocation`], with an explicit [`CheckScope`].
pub fn check_allocation_scoped(
    func: &Function,
    assignment: &[Option<PhysReg>],
    mach: &MachFunction,
    target: &TargetDesc,
    scope: CheckScope,
) -> Result<CheckReport, CheckError> {
    check_allocation_in(
        func,
        assignment,
        mach,
        target,
        scope,
        &mut CheckScratch::default(),
    )
}

/// Like [`check_allocation`], drawing the checker's internal liveness
/// storage and per-block buffers from `scratch`, which is reset and reused
/// across calls.
pub fn check_allocation_in(
    func: &Function,
    assignment: &[Option<PhysReg>],
    mach: &MachFunction,
    target: &TargetDesc,
    scope: CheckScope,
    scratch: &mut CheckScratch,
) -> Result<CheckReport, CheckError> {
    let mut violations = Vec::new();
    let fail = |violations: Vec<Violation>| {
        Err(CheckError {
            func: func.name.clone(),
            violations,
        })
    };

    // Shape sanity: without matching block tables or lowered φs the walk
    // below has nothing to anchor on.
    if mach.blocks.len() != func.num_blocks() {
        violations.push(Violation::Frame {
            why: format!(
                "machine code has {} blocks but the IR has {}",
                mach.blocks.len(),
                func.num_blocks()
            ),
        });
        return fail(violations);
    }
    for b in func.block_ids() {
        if !func.block(b).phis.is_empty() {
            violations.push(Violation::Structure {
                block: b,
                inst: 0,
                why: "φs must be lowered before checking".into(),
            });
            return fail(violations);
        }
    }

    let cfg = Cfg::compute(func);
    let liveness = Liveness::compute_in(func, &cfg, &mut scratch.liveness);
    let result = check_body(
        func, assignment, mach, target, scope, &cfg, &liveness, scratch, violations,
    );
    liveness.recycle(&mut scratch.liveness);
    result
}

/// The pass sequence behind [`check_allocation_in`], split out so the
/// pooled liveness can be recycled on every exit path.
#[allow(clippy::too_many_arguments)]
fn check_body(
    func: &Function,
    assignment: &[Option<PhysReg>],
    mach: &MachFunction,
    target: &TargetDesc,
    scope: CheckScope,
    cfg: &Cfg,
    liveness: &Liveness,
    scratch: &mut CheckScratch,
    mut violations: Vec<Violation>,
) -> Result<CheckReport, CheckError> {
    let fail = |violations: Vec<Violation>| {
        Err(CheckError {
            func: func.name.clone(),
            violations,
        })
    };

    // Rule pass: every vreg referenced by reachable code has a register of
    // its class inside the class's file.
    let mut referenced = BTreeSet::new();
    for b in func.block_ids().filter(|&b| cfg.is_reachable(b)) {
        for inst in &func.block(b).insts {
            if let Some(d) = inst.def() {
                referenced.insert(d);
            }
            inst.visit_uses(|u| {
                referenced.insert(u);
            });
        }
    }
    let mut unassigned = false;
    for &v in &referenced {
        match assignment.get(v.index()).copied().flatten() {
            None => {
                unassigned = true;
                violations.push(Violation::Unassigned { vreg: v });
            }
            Some(r) => {
                if r.class() != func.class_of(v) {
                    violations.push(Violation::BadRegister {
                        vreg: v,
                        reg: r,
                        why: format!(
                            "a {} vreg cannot live in a {} register",
                            func.class_of(v),
                            r.class()
                        ),
                    });
                } else if r.index() >= target.num_regs(r.class()) {
                    violations.push(Violation::BadRegister {
                        vreg: v,
                        reg: r,
                        why: format!(
                            "register index out of range for the {}-register {} file",
                            target.num_regs(r.class()),
                            r.class()
                        ),
                    });
                }
            }
        }
    }
    if unassigned {
        // The walk needs every referenced vreg mapped; report what we have.
        return fail(violations);
    }

    // Pair pass: every fused paired load satisfies its class's rule.
    let mut paired_loads = 0;
    for (bi, blk) in mach.blocks.iter().enumerate() {
        if !cfg.is_reachable(Block::new(bi)) {
            continue;
        }
        for (ii, m) in blk.iter().enumerate() {
            if let MInst::LoadPair {
                dst1,
                dst2,
                base,
                offset,
                offset2,
            } = m
            {
                paired_loads += 1;
                if let Some(why) = pair_violation(target, *dst1, *dst2, *base, *offset, *offset2) {
                    violations.push(Violation::BadPair {
                        block: Block::new(bi),
                        inst: ii,
                        why,
                    });
                }
            }
        }
    }

    // Frame pass: machine code stays inside the declared register files and
    // frame, and declares every non-volatile it writes.
    for (bi, blk) in mach.blocks.iter().enumerate() {
        for (ii, m) in blk.iter().enumerate() {
            for r in m.regs() {
                if r.index() >= target.num_regs(r.class()) {
                    violations.push(Violation::Frame {
                        why: format!(
                            "machine code at b{bi}:{ii} touches {r}, outside the {}-register {} file",
                            target.num_regs(r.class()),
                            r.class()
                        ),
                    });
                }
            }
            for r in m.defs() {
                if !target.is_volatile(r) && !mach.used_nonvolatiles.contains(&r) {
                    violations.push(Violation::Frame {
                        why: format!(
                            "machine code at b{bi}:{ii} writes non-volatile {r}, which is not declared in used_nonvolatiles"
                        ),
                    });
                }
            }
            if let MInst::SpillLoad { slot, .. } | MInst::SpillStore { slot, .. } = m {
                if *slot >= mach.num_slots {
                    violations.push(Violation::BadSlot {
                        slot: *slot,
                        block: Block::new(bi),
                        inst: ii,
                        why: format!("outside the declared {}-slot frame", mach.num_slots),
                    });
                }
            }
        }
    }

    // Slots below this index belong to IR spill code; slots at or above it
    // are caller-save shadows the rewriter introduced around calls.
    let mut spill_slots = 0;
    for b in func.block_ids() {
        for inst in &func.block(b).insts {
            if let Inst::Spill { slot, .. } | Inst::Reload { slot, .. } = inst {
                spill_slots = spill_slots.max(slot + 1);
            }
        }
    }

    let checker = Checker {
        func,
        mach,
        target,
        assignment,
        spill_slots,
        cfg,
        liveness,
    };
    checker.run(scope, scratch, &mut violations);

    if violations.is_empty() {
        let reachable: Vec<Block> = cfg.reverse_postorder().to_vec();
        Ok(CheckReport {
            blocks: reachable.len(),
            ir_insts: reachable
                .iter()
                .map(|&b| func.block(b).insts.len())
                .sum(),
            mach_insts: reachable
                .iter()
                .map(|&b| mach.blocks[b.index()].len())
                .sum(),
            paired_loads,
            scope,
        })
    } else {
        fail(violations)
    }
}

/// Why a `LoadPair` breaks `target`'s rule for its class, if it does.
fn pair_violation(
    target: &TargetDesc,
    dst1: PhysReg,
    dst2: PhysReg,
    base: PhysReg,
    offset: i32,
    offset2: i32,
) -> Option<String> {
    if dst1.class() != dst2.class() {
        return Some(format!("destinations {dst1} and {dst2} are in different classes"));
    }
    let Some(rule) = target.pair_rule(dst1.class()) else {
        return Some(format!("class {} has no pairing rule", dst1.class()));
    };
    if dst1 == dst2 {
        return Some(format!("both words target {dst1}"));
    }
    if dst1 == base {
        return Some(format!("first destination {dst1} is the base register"));
    }
    // `dst1` receives the word at `offset`; the rule constrains the pair as
    // (lower-addressed word, higher-addressed word).
    let (lo_dst, lo_off, hi_dst) = if offset2 == offset + rule.stride() {
        (dst1, offset, dst2)
    } else if offset2 == offset - rule.stride() {
        (dst2, offset2, dst1)
    } else {
        return Some(format!(
            "offsets {offset} and {offset2} are not a stride-{} pair",
            rule.stride()
        ));
    };
    if !rule.aligned(lo_off) {
        return Some(format!(
            "lower offset {lo_off} is not {}-aligned",
            rule.alignment()
        ));
    }
    if !rule.allows(lo_dst, hi_dst) {
        return Some(format!(
            "destinations ({lo_dst}, {hi_dst}) break the {:?} rule",
            rule.dest()
        ));
    }
    None
}

/// The abstract machine state: for every location, the set of vregs whose
/// *current* value it provably holds.
///
/// `regs` and `slots` are must-information. A register absent from `regs`
/// holds no vreg's value that we can prove (⊥). A slot absent from `slots`
/// has not definitely been written; present-but-empty means written with a
/// value we cannot name. Join (at control-flow merges) is key-wise set
/// intersection.
///
/// `defined` is the must-defined vreg set: vregs with a def (or, for the
/// argument carriers, the calling convention) on *every* path from entry.
/// The IR is not SSA and generated workloads may read a vreg on a path
/// that never defines it — such a read yields garbage in the IR itself, so
/// the machine code cannot be wrong about its value, and value checks only
/// apply to must-defined uses. `written_slots` is the dual may-set for
/// spill slots: slots some path has spilled to. A reload of a slot outside
/// it can *never* observe spilled data — broken bookkeeping — while a
/// reload of a may-written slot on an unwritten path mirrors the IR's own
/// garbage read of a not-must-defined vreg.
#[derive(Clone, PartialEq, Eq, Default)]
struct State {
    regs: BTreeMap<PhysReg, BTreeSet<VReg>>,
    slots: BTreeMap<u32, BTreeSet<VReg>>,
    defined: BTreeSet<VReg>,
    written_slots: BTreeSet<u32>,
}

impl State {
    fn meet(&self, other: &State) -> State {
        let mut regs = BTreeMap::new();
        for (r, s) in &self.regs {
            if let Some(t) = other.regs.get(r) {
                let i: BTreeSet<VReg> = s.intersection(t).copied().collect();
                if !i.is_empty() {
                    regs.insert(*r, i);
                }
            }
        }
        let mut slots = BTreeMap::new();
        for (k, s) in &self.slots {
            if let Some(t) = other.slots.get(k) {
                slots.insert(*k, s.intersection(t).copied().collect());
            }
        }
        State {
            regs,
            slots,
            defined: self.defined.intersection(&other.defined).copied().collect(),
            written_slots: self
                .written_slots
                .union(&other.written_slots)
                .copied()
                .collect(),
        }
    }

    /// The vreg's old value is dead everywhere once it is redefined.
    fn kill(&mut self, v: VReg) {
        self.regs.retain(|_, s| {
            s.remove(&v);
            !s.is_empty()
        });
        for s in self.slots.values_mut() {
            s.remove(&v);
        }
    }

    fn write(&mut self, r: PhysReg, set: BTreeSet<VReg>) {
        if set.is_empty() {
            self.regs.remove(&r);
        } else {
            self.regs.insert(r, set);
        }
    }

    fn holds(&self, r: PhysReg, v: VReg) -> bool {
        self.regs.get(&r).is_some_and(|s| s.contains(&v))
    }
}

/// Which of the three walks over the function is running.
///
/// The IR↔machine correspondence (which machine instructions implement
/// which IR instruction) is state-independent, so it is established once in
/// `Structure` from a throwaway state; `Fixpoint` then iterates the value
/// state to convergence without recording anything; `Final` replays once
/// more from the converged in-states and records value violations.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    Structure,
    Fixpoint,
    Final,
}

/// A pending second half of a fused paired load: `LoadPair` already loaded
/// `[base + offset2]` into `dst2`, and a later IR load in the same block
/// will claim it. `base_vals` snapshots which vregs' values the base
/// register held when the address was read; copies extend it, and any
/// redefinition of a member evicts it.
struct Hoist {
    dst2: PhysReg,
    base_reg: PhysReg,
    offset2: i32,
    base_vals: BTreeSet<VReg>,
}

struct Checker<'a> {
    func: &'a Function,
    mach: &'a MachFunction,
    target: &'a TargetDesc,
    assignment: &'a [Option<PhysReg>],
    /// Slots `0..spill_slots` carry IR spill code; higher slots are
    /// caller-save shadows.
    spill_slots: u32,
    cfg: &'a Cfg,
    liveness: &'a Liveness,
}

impl Checker<'_> {
    fn reg(&self, v: VReg) -> PhysReg {
        self.assignment[v.index()].expect("referenced vreg screened as assigned")
    }

    /// The state on entry: each argument register holds the vreg that
    /// carries that parameter, when the assignment actually put it there.
    /// (Lowered functions copy the pinned argument register into the param
    /// vreg at block entry; hand-built functions use the param directly.)
    fn entry_state(&self) -> State {
        let mut st = State::default();
        let entry = &self.func.block(Block::ENTRY).insts;
        let mut counts = [0usize; RegClass::ALL.len()];
        for (i, &p) in self.func.param_vregs.iter().enumerate() {
            let class = self.func.sig.params[i];
            let nth = counts[class.index()];
            counts[class.index()] += 1;
            let Some(r) = self.target.arg_reg(class, nth) else {
                continue;
            };
            let carrier = entry
                .iter()
                .find_map(|inst| match inst {
                    Inst::Copy { dst, src } if *dst == p => Some(*src),
                    _ => None,
                })
                .unwrap_or(p);
            // The carrier is defined by the convention whether or not the
            // assignment honoured it; a dishonoured carrier surfaces as a
            // stale value at its first use.
            st.defined.insert(carrier);
            if self.assignment.get(carrier.index()).copied().flatten() == Some(r) {
                st.regs.entry(r).or_default().insert(carrier);
            }
        }
        st
    }

    fn run(&self, scope: CheckScope, scratch: &mut CheckScratch, violations: &mut Vec<Violation>) {
        let rpo: Vec<Block> = self.cfg.reverse_postorder().to_vec();
        let entry_seed = self.entry_state();

        // Structure pass: the correspondence walk, from a throwaway state.
        // It also records, per block, whether the rewriter deviated from
        // the direct instruction-for-instruction mapping; under
        // `CheckScope::Rewritten` only those blocks are value-replayed.
        let mut deviated = scratch.deviated.take_filled(self.func.num_blocks(), false);
        let mut structural = Vec::new();
        for &b in &rpo {
            let _ = self.transfer(
                b,
                State::default(),
                Pass::Structure,
                &[],
                &mut deviated[b.index()],
                &mut structural,
            );
        }
        if !structural.is_empty() {
            violations.append(&mut structural);
            scratch.deviated.put(deviated);
            return;
        }

        // A value returned from a non-convention register is a violation
        // the direct mapping can still exhibit (`Ret` matches machine
        // `Ret` regardless of the register): route those blocks into the
        // replayed set.
        for &b in &rpo {
            for inst in &self.func.block(b).insts {
                if let Inst::Ret { value: Some(v) } = inst {
                    if self.reg(*v) != self.target.ret_reg(self.func.class_of(*v)) {
                        deviated[b.index()] = true;
                    }
                }
            }
        }

        let replay_all = scope == CheckScope::Full;
        let any_replay = replay_all || deviated.iter().any(|&d| d);
        let mut sink = false;

        // Fixpoint: iterate block out-states to convergence (a must-
        // analysis over a finite lattice of shrinking sets, so this
        // terminates). Worklist-driven, ordered by RPO position: a block
        // re-runs only when a predecessor's out-state changed, so acyclic
        // regions converge in a single sweep instead of sweep-per-change.
        // Skipped entirely when no block will be replayed — the converged
        // states would go unread.
        let mut outs: Vec<Option<State>> = vec![None; self.func.num_blocks()];
        if any_replay {
            let mut pos_of = vec![usize::MAX; self.func.num_blocks()];
            for (p, &b) in rpo.iter().enumerate() {
                pos_of[b.index()] = p;
            }
            let mut work: BTreeSet<usize> = (0..rpo.len()).collect();
            while let Some(p) = work.pop_first() {
                let b = rpo[p];
                let Some(inp) = self.in_state(b, &outs, &entry_seed) else {
                    continue;
                };
                let out = self
                    .transfer(b, inp, Pass::Fixpoint, &[], &mut sink, &mut Vec::new())
                    .expect("correspondence verified by the structure pass");
                if outs[b.index()].as_ref() != Some(&out) {
                    outs[b.index()] = Some(out);
                    for &s in self.cfg.succs(b) {
                        if pos_of[s.index()] != usize::MAX {
                            work.insert(pos_of[s.index()]);
                        }
                    }
                }
            }
        }

        // Entry interference: live-in vregs sharing a register must both be
        // proven to hold that register's value (same-value coalescing).
        let live_in: Vec<VReg> = self
            .liveness
            .live_in(Block::ENTRY)
            .iter()
            .map(VReg::new)
            .collect();
        for (i, &a) in live_in.iter().enumerate() {
            for &b in &live_in[i + 1..] {
                // Live-in vregs that are not argument carriers hold garbage
                // on entry; sharing a register cannot make them wronger.
                if !(entry_seed.defined.contains(&a) && entry_seed.defined.contains(&b)) {
                    continue;
                }
                let ra = self.reg(a);
                if ra == self.reg(b) && !(entry_seed.holds(ra, a) && entry_seed.holds(ra, b)) {
                    violations.push(Violation::Interference {
                        a,
                        b,
                        reg: ra,
                        block: Block::ENTRY,
                        inst: 0,
                    });
                }
            }
        }

        // Final pass: replay each in-scope block from its converged
        // in-state and record every value violation.
        for &b in &rpo {
            if !(replay_all || deviated[b.index()]) {
                continue;
            }
            let Some(inp) = self.in_state(b, &outs, &entry_seed) else {
                continue;
            };
            let mut live_after = scratch.live_after.take(self.func.block(b).insts.len());
            self.liveness
                .for_each_inst_backward_in(self.func, b, &mut scratch.walk, |i, _, la| {
                    live_after[i].extend(la.iter().map(VReg::new));
                });
            let _ = self.transfer(b, inp, Pass::Final, &live_after, &mut sink, violations);
            scratch.live_after.put(live_after);
        }
        scratch.deviated.put(deviated);
    }

    /// The meet-over-predecessors in-state of `b` (plus the argument seed
    /// for the entry block), or `None` when no predecessor has been
    /// evaluated yet.
    fn in_state(&self, b: Block, outs: &[Option<State>], seed: &State) -> Option<State> {
        let mut inp: Option<State> = (b == Block::ENTRY).then(|| seed.clone());
        for &p in self.cfg.preds(b) {
            if let Some(o) = &outs[p.index()] {
                inp = Some(match inp {
                    Some(a) => a.meet(o),
                    None => o.clone(),
                });
            }
        }
        inp
    }

    /// Walks block `b`'s IR and machine code in lockstep, applying the
    /// abstract transfer of each instruction to `st`.
    ///
    /// `Err(())` means the machine code does not structurally implement
    /// the IR; the mismatch is recorded only in the `Structure` pass.
    fn transfer(
        &self,
        b: Block,
        mut st: State,
        pass: Pass,
        live_after: &[Vec<VReg>],
        deviated: &mut bool,
        violations: &mut Vec<Violation>,
    ) -> Result<State, ()> {
        let ir = &self.func.block(b).insts;
        let mc = &self.mach.blocks[b.index()];
        let mut mi = 0usize;
        let mut ledger: Vec<Hoist> = Vec::new();
        let record = pass == Pass::Final;

        macro_rules! structure {
            ($i:expr, $($why:tt)*) => {{
                if pass == Pass::Structure {
                    violations.push(Violation::Structure {
                        block: b,
                        inst: $i,
                        why: format!($($why)*),
                    });
                }
                return Err(());
            }};
        }
        // Takes the next machine instruction, requiring `$pat` (with guard)
        // to match it; keeps the hoist ledger honest afterwards.
        macro_rules! expect {
            ($i:expr, $want:expr, $pat:pat $(if $guard:expr)?) => {{
                match mc.get(mi) {
                    Some(m @ $pat) $(if $guard)? => {
                        let _ = m;
                        mi += 1;
                        let m = &mc[mi - 1];
                        match m {
                            MInst::Store { .. } | MInst::SpillStore { .. } | MInst::Call { .. } => {
                                ledger.clear()
                            }
                            _ => {
                                let defs = m.defs();
                                ledger.retain(|h| !defs.contains(&h.dst2));
                            }
                        }
                    }
                    found => structure!(
                        $i,
                        "expected {}, found {}",
                        $want,
                        found.map_or("end of block".to_string(), |m| format!("`{m:?}`"))
                    ),
                }
            }};
        }

        let found = |mi: usize| {
            mc.get(mi)
                .map_or("end of block".to_string(), |m| format!("`{m:?}`"))
        };

        for (i, inst) in ir.iter().enumerate() {
            // A use must read a location proven to hold the vreg's value —
            // unless the vreg is not must-defined here, in which case the
            // IR itself reads garbage on some path and any value refines it.
            macro_rules! use_check {
                ($v:expr) => {{
                    let v: VReg = $v;
                    if record && st.defined.contains(&v) && !st.holds(self.reg(v), v) {
                        violations.push(Violation::StaleValue {
                            vreg: v,
                            reg: self.reg(v),
                            block: b,
                            inst: i,
                        });
                    }
                }};
            }

            match inst {
                Inst::Copy { dst, src } => {
                    let (rd, rs) = (self.reg(*dst), self.reg(*src));
                    if rd != rs {
                        expect!(
                            i,
                            format!("`{rd} = {rs}`"),
                            MInst::Copy { dst: md, src: ms } if *md == rd && *ms == rs
                        );
                    } else {
                        // A coalesced copy emits nothing: the value claim
                        // it makes is exactly what the replay must verify.
                        *deviated = true;
                    }
                    use_check!(*src);
                    st.kill(*dst);
                    let mut set = st.regs.get(&rs).cloned().unwrap_or_default();
                    set.insert(*dst);
                    st.write(rd, set);
                    // A copy propagates pending paired-load base values.
                    for h in &mut ledger {
                        let had_src = h.base_vals.contains(src);
                        h.base_vals.remove(dst);
                        if had_src {
                            h.base_vals.insert(*dst);
                        }
                    }
                }
                Inst::Iconst { dst, value } => {
                    let rd = self.reg(*dst);
                    expect!(
                        i,
                        format!("`{rd} = {value}`"),
                        MInst::Iconst { dst: md, value: mv } if *md == rd && mv == value
                    );
                    st.kill(*dst);
                    st.write(rd, BTreeSet::from([*dst]));
                }
                Inst::Fconst { dst, value } => {
                    let rd = self.reg(*dst);
                    expect!(
                        i,
                        format!("`{rd} = {value}`"),
                        MInst::Fconst { dst: md, value: mv }
                            if *md == rd && mv.to_bits() == value.to_bits()
                    );
                    st.kill(*dst);
                    st.write(rd, BTreeSet::from([*dst]));
                }
                Inst::Load { dst, base, offset } => {
                    let (rd, rb) = (self.reg(*dst), self.reg(*base));
                    match mc.get(mi) {
                        Some(MInst::Load {
                            dst: md,
                            base: mb,
                            offset: mo,
                        }) if *md == rd && *mb == rb && mo == offset => {
                            mi += 1;
                            ledger.retain(|h| h.dst2 != rd);
                            use_check!(*base);
                            st.kill(*dst);
                            st.write(rd, BTreeSet::from([*dst]));
                        }
                        Some(MInst::LoadPair {
                            dst1,
                            dst2,
                            base: mb,
                            offset: mo,
                            offset2,
                        }) if *dst1 == rd && *mb == rb && mo == offset => {
                            *deviated = true;
                            let (dst2, offset2) = (*dst2, *offset2);
                            mi += 1;
                            ledger.retain(|h| h.dst2 != rd && h.dst2 != dst2);
                            use_check!(*base);
                            // The address was read now: snapshot what the
                            // base register holds before any writes.
                            let base_vals = st.regs.get(&rb).cloned().unwrap_or_default();
                            st.kill(*dst);
                            st.write(rd, BTreeSet::from([*dst]));
                            // The second word landed in dst2, but no vreg's
                            // value lives there until the claiming load.
                            st.regs.remove(&dst2);
                            ledger.push(Hoist {
                                dst2,
                                base_reg: rb,
                                offset2,
                                base_vals,
                            });
                        }
                        _ => {
                            // The hoisted second half of an earlier pair?
                            let Some(pos) = ledger.iter().position(|h| {
                                h.dst2 == rd && h.base_reg == rb && h.offset2 == *offset
                            }) else {
                                structure!(
                                    i,
                                    "expected `{rd} = [{rb} + {offset}]` (or its paired/hoisted form), found {}",
                                    found(mi)
                                );
                            };
                            *deviated = true;
                            let h = ledger.remove(pos);
                            // The base was consumed when the pair issued:
                            // the vreg used *here* must have held the base
                            // register's value back then.
                            if record && st.defined.contains(base) && !h.base_vals.contains(base) {
                                violations.push(Violation::StaleValue {
                                    vreg: *base,
                                    reg: rb,
                                    block: b,
                                    inst: i,
                                });
                            }
                            st.kill(*dst);
                            st.write(rd, BTreeSet::from([*dst]));
                        }
                    }
                }
                Inst::Load8 { dst, base, offset } => {
                    let (rd, rb) = (self.reg(*dst), self.reg(*base));
                    expect!(
                        i,
                        format!("`{rd} = byte [{rb} + {offset}]`"),
                        MInst::Load8 { dst: md, base: mb, offset: mo }
                            if *md == rd && *mb == rb && mo == offset
                    );
                    if !self.target.is_byte_capable(rd) {
                        *deviated = true;
                        expect!(
                            i,
                            format!("zero-extension `{rd} &= 0xff` after a byte load into {rd}"),
                            MInst::BinImm { op: BinOp::And, dst: md, lhs: ml, imm: 0xff }
                                if *md == rd && *ml == rd
                        );
                    }
                    use_check!(*base);
                    st.kill(*dst);
                    st.write(rd, BTreeSet::from([*dst]));
                }
                Inst::Store { src, base, offset } => {
                    let (rs, rb) = (self.reg(*src), self.reg(*base));
                    expect!(
                        i,
                        format!("`[{rb} + {offset}] = {rs}`"),
                        MInst::Store { src: ms, base: mb, offset: mo }
                            if *ms == rs && *mb == rb && mo == offset
                    );
                    use_check!(*src);
                    use_check!(*base);
                }
                Inst::Bin { op, dst, lhs, rhs } => {
                    let (rd, rl, rr) = (self.reg(*dst), self.reg(*lhs), self.reg(*rhs));
                    expect!(
                        i,
                        format!("`{rd} = {rl} {op:?} {rr}`"),
                        MInst::Bin { op: mop, dst: md, lhs: ml, rhs: mr }
                            if mop == op && *md == rd && *ml == rl && *mr == rr
                    );
                    use_check!(*lhs);
                    use_check!(*rhs);
                    st.kill(*dst);
                    st.write(rd, BTreeSet::from([*dst]));
                }
                Inst::BinImm { op, dst, lhs, imm } => {
                    let (rd, rl) = (self.reg(*dst), self.reg(*lhs));
                    expect!(
                        i,
                        format!("`{rd} = {rl} {op:?} {imm}`"),
                        MInst::BinImm { op: mop, dst: md, lhs: ml, imm: mimm }
                            if mop == op && *md == rd && *ml == rl && mimm == imm
                    );
                    use_check!(*lhs);
                    st.kill(*dst);
                    st.write(rd, BTreeSet::from([*dst]));
                }
                Inst::Call { callee, args, ret } => {
                    // Calls clobber every volatile and grow caller-save
                    // shadows: always value-interesting.
                    *deviated = true;
                    // Nothing hoisted survives a call.
                    ledger.clear();
                    // Caller-save stores: shadow slots sit above the IR
                    // spill area, so they cannot be IR `Spill`s.
                    while let Some(MInst::SpillStore { src, slot }) = mc.get(mi) {
                        if *slot < self.spill_slots {
                            break;
                        }
                        let saved = st.regs.get(src).cloned().unwrap_or_default();
                        st.slots.insert(*slot, saved);
                        mi += 1;
                    }
                    match mc.get(mi) {
                        Some(MInst::Call {
                            callee: mcallee,
                            arg_regs,
                            ret_reg,
                        }) if mcallee == callee
                            && arg_regs.len() == args.len()
                            && args.iter().zip(arg_regs).all(|(a, r)| self.reg(*a) == *r)
                            && *ret_reg == ret.map(|v| self.reg(v)) =>
                        {
                            mi += 1;
                        }
                        _ => structure!(
                            i,
                            "expected a call of callee #{} with arguments in {:?} returning into {:?}, found {}",
                            callee.index(),
                            args.iter().map(|&a| self.reg(a)).collect::<Vec<_>>(),
                            ret.map(|v| self.reg(v)),
                            found(mi)
                        ),
                    }
                    for &a in args {
                        use_check!(a);
                    }
                    // The callee may write every volatile register.
                    for class in RegClass::ALL {
                        for r in self.target.volatiles(class) {
                            st.regs.remove(&r);
                        }
                    }
                    if let Some(v) = ret {
                        st.kill(*v);
                        st.write(self.reg(*v), BTreeSet::from([*v]));
                    }
                    // Caller-save reloads restore the shadowed values.
                    while let Some(MInst::SpillLoad { dst, slot }) = mc.get(mi) {
                        if *slot < self.spill_slots {
                            break;
                        }
                        match st.slots.get(slot).cloned() {
                            Some(s) => st.write(*dst, s),
                            None => {
                                if record {
                                    violations.push(Violation::BadSlot {
                                        slot: *slot,
                                        block: b,
                                        inst: i,
                                        why: "caller-save restore reads an unwritten slot".into(),
                                    });
                                }
                                st.regs.remove(dst);
                            }
                        }
                        mi += 1;
                    }
                }
                Inst::Jump { target } => {
                    expect!(
                        i,
                        format!("`jump {target}`"),
                        MInst::Jump { target: mt } if mt == target
                    );
                }
                Inst::Branch {
                    op,
                    lhs,
                    rhs,
                    then_dst,
                    else_dst,
                } => {
                    let (rl, rr) = (self.reg(*lhs), self.reg(*rhs));
                    expect!(
                        i,
                        format!("`if {rl} {op:?} {rr} then {then_dst} else {else_dst}`"),
                        MInst::Branch { op: mop, lhs: ml, rhs: mr, then_dst: mt, else_dst: me }
                            if mop == op && *ml == rl && *mr == rr && mt == then_dst && me == else_dst
                    );
                    use_check!(*lhs);
                    use_check!(*rhs);
                }
                Inst::BranchImm {
                    op,
                    lhs,
                    imm,
                    then_dst,
                    else_dst,
                } => {
                    let rl = self.reg(*lhs);
                    expect!(
                        i,
                        format!("`if {rl} {op:?} {imm} then {then_dst} else {else_dst}`"),
                        MInst::BranchImm { op: mop, lhs: ml, imm: mimm, then_dst: mt, else_dst: me }
                            if mop == op && *ml == rl && mimm == imm && mt == then_dst && me == else_dst
                    );
                    use_check!(*lhs);
                }
                Inst::Ret { value } => {
                    expect!(i, "`ret`".to_string(), MInst::Ret);
                    if let Some(v) = value {
                        let want = self.target.ret_reg(self.func.class_of(*v));
                        if record && self.reg(*v) != want {
                            violations.push(Violation::BadRegister {
                                vreg: *v,
                                reg: self.reg(*v),
                                why: format!("returned values must live in {want}"),
                            });
                        }
                        use_check!(*v);
                    }
                }
                Inst::Reload { dst, slot } => {
                    *deviated = true;
                    let rd = self.reg(*dst);
                    expect!(
                        i,
                        format!("`{rd} = frame[{slot}]`"),
                        MInst::SpillLoad { dst: md, slot: ms } if *md == rd && ms == slot
                    );
                    let content = st.slots.get(slot).cloned();
                    if record && !st.written_slots.contains(slot) {
                        violations.push(Violation::BadSlot {
                            slot: *slot,
                            block: b,
                            inst: i,
                            why: "read before any possible write".into(),
                        });
                    }
                    st.kill(*dst);
                    let mut set = content.unwrap_or_default();
                    set.insert(*dst);
                    st.write(rd, set);
                }
                Inst::Spill { src, slot } => {
                    *deviated = true;
                    let rs = self.reg(*src);
                    expect!(
                        i,
                        format!("`frame[{slot}] = {rs}`"),
                        MInst::SpillStore { src: ms, slot: mslot } if *ms == rs && mslot == slot
                    );
                    use_check!(*src);
                    let stored = st.regs.get(&rs).cloned().unwrap_or_default();
                    st.slots.insert(*slot, stored);
                    st.written_slots.insert(*slot);
                }
            }

            // Redefining a vreg evicts its (old) value from pending
            // paired-load base snapshots; copies were handled above.
            if !matches!(inst, Inst::Copy { .. }) {
                if let Some(d) = inst.def() {
                    for h in &mut ledger {
                        h.base_vals.remove(&d);
                    }
                }
            }
            if let Some(d) = inst.def() {
                st.defined.insert(d);
            }

            // Interference: anything still live may not share the defined
            // register unless it provably holds the same value.
            if record {
                if let Some(d) = inst.def() {
                    let rd = self.reg(d);
                    for &v in &live_after[i] {
                        if v != d
                            && self.reg(v) == rd
                            && st.defined.contains(&v)
                            && !st.holds(rd, v)
                        {
                            violations.push(Violation::Interference {
                                a: d,
                                b: v,
                                reg: rd,
                                block: b,
                                inst: i,
                            });
                        }
                    }
                }
            }
        }

        if mi != mc.len() {
            structure!(
                ir.len(),
                "{} trailing machine instruction(s), starting with {}",
                mc.len() - mi,
                found(mi)
            );
        }
        if !ledger.is_empty() {
            structure!(
                ir.len(),
                "a paired load hoisted a word into {} that no load claims",
                ledger[0].dst2
            );
        }
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::{MachFunction, PressureModel, TargetDesc};

    /// `f(p) = [p] + [p+8]`, the paired-load shape.
    fn sum2() -> Function {
        let mut b = FunctionBuilder::new("sum2", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        b.finish()
    }

    fn assign(pairs: &[(usize, PhysReg)], n: usize) -> Vec<Option<PhysReg>> {
        let mut a = vec![None; n];
        for &(v, r) in pairs {
            a[v] = Some(r);
        }
        a
    }

    fn mach_of(func: &Function, blocks: Vec<Vec<MInst>>, num_slots: u32) -> MachFunction {
        MachFunction {
            name: func.name.clone(),
            sig: func.sig.clone(),
            blocks,
            num_slots,
            used_nonvolatiles: Vec::new(),
            callees: func.callees.clone(),
        }
    }

    fn r(i: u8) -> PhysReg {
        PhysReg::int(i)
    }

    fn target() -> TargetDesc {
        TargetDesc::ia64_like(PressureModel::Middle)
    }

    fn kinds(err: &CheckError) -> Vec<&'static str> {
        err.violations.iter().map(Violation::kind).collect()
    }

    #[test]
    fn accepts_a_straight_line_function() {
        let f = sum2();
        // p=v0 in r0 (the argument register), x=v1, y=v2, s=v3 in the
        // return register r0.
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(2)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: r(1), base: r(0), offset: 0 },
                MInst::Load { dst: r(2), base: r(0), offset: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let report = check_allocation(&f, &a, &m, &target()).unwrap();
        assert_eq!(report.blocks, 1);
        assert_eq!(report.ir_insts, 4);
        assert_eq!(report.paired_loads, 0);
    }

    #[test]
    fn accepts_a_fused_paired_load() {
        let f = sum2();
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(2)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::LoadPair { dst1: r(1), dst2: r(2), base: r(0), offset: 0, offset2: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let report = check_allocation(&f, &a, &m, &target()).unwrap();
        assert_eq!(report.paired_loads, 1);
    }

    #[test]
    fn accepts_a_minus_stride_paired_load() {
        // The loads arrive high-offset-first: [p+8] then [p].
        let mut b = FunctionBuilder::new("rsum2", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let y = b.load(p, 8);
        let x = b.load(p, 0);
        let s = b.bin(BinOp::Add, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let a = assign(&[(0, r(0)), (1, r(2)), (2, r(1)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                // dst1 takes [p+8], dst2 the hoisted [p]: a descending pair.
                MInst::LoadPair { dst1: r(2), dst2: r(1), base: r(0), offset: 8, offset2: 0 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let report = check_allocation(&f, &a, &m, &target()).unwrap();
        assert_eq!(report.paired_loads, 1);
        let _ = (x, y, s, p);
    }

    #[test]
    fn rejects_a_wrong_class_register() {
        let f = sum2();
        let a = assign(
            &[(0, r(0)), (1, PhysReg::float(1)), (2, r(2)), (3, r(0))],
            f.num_vregs(),
        );
        let m = mach_of(&f, vec![vec![MInst::Ret]], 0);
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"bad-register"), "{err}");
    }

    #[test]
    fn rejects_an_out_of_file_register() {
        let f = sum2();
        let a = assign(&[(0, r(0)), (1, r(63)), (2, r(2)), (3, r(0))], f.num_vregs());
        let m = mach_of(&f, vec![vec![MInst::Ret]], 0);
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"bad-register"), "{err}");
    }

    #[test]
    fn rejects_interfering_vregs_in_one_register() {
        let f = sum2();
        // x and y are simultaneously live but both get r1.
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(1)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: r(1), base: r(0), offset: 0 },
                MInst::Load { dst: r(1), base: r(0), offset: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(1) },
                MInst::Ret,
            ]],
            0,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"interference"), "{err}");
        assert!(kinds(&err).contains(&"stale-value"), "{err}");
    }

    #[test]
    fn rejects_a_clobbered_pair() {
        let f = sum2();
        // r1/r3 breaks the parity rule (indices must differ by one).
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(3)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::LoadPair { dst1: r(1), dst2: r(3), base: r(0), offset: 0, offset2: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(3) },
                MInst::Ret,
            ]],
            0,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert_eq!(kinds(&err), vec!["bad-pair"], "{err}");
    }

    #[test]
    fn rejects_a_slot_read_before_write() {
        let mut b = FunctionBuilder::new("rbw", vec![], Some(RegClass::Int));
        let t = b.iconst(7);
        b.ret(Some(t));
        let mut f = b.finish();
        // Replace the body: reload from a slot nothing ever spilled to.
        f.blocks[0].insts[0] = Inst::Reload { dst: t, slot: 0 };
        let a = assign(&[(0, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![MInst::SpillLoad { dst: r(0), slot: 0 }, MInst::Ret]],
            1,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"bad-slot"), "{err}");
    }

    #[test]
    fn rejects_spill_traffic_outside_the_frame() {
        let mut b = FunctionBuilder::new("oob", vec![], Some(RegClass::Int));
        let t = b.iconst(7);
        b.ret(Some(t));
        let mut f = b.finish();
        f.blocks[0].insts = vec![
            Inst::Iconst { dst: t, value: 7 },
            Inst::Spill { src: t, slot: 3 },
            Inst::Reload { dst: t, slot: 3 },
            Inst::Ret { value: Some(t) },
        ];
        let a = assign(&[(0, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Iconst { dst: r(0), value: 7 },
                MInst::SpillStore { src: r(0), slot: 3 },
                MInst::SpillLoad { dst: r(0), slot: 3 },
                MInst::Ret,
            ]],
            2, // the frame claims 2 slots; slot 3 is out of bounds
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"bad-slot"), "{err}");
    }

    #[test]
    fn rejects_a_missing_caller_save() {
        let mut b = FunctionBuilder::new("nosave", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        b.call("ext", vec![], None);
        let s = b.bin(BinOp::Add, p, p);
        b.ret(Some(s));
        let f = b.finish();
        // p lives in volatile r0 across the call with no save/restore.
        let a = assign(&[(0, r(0)), (1, r(0))], f.num_vregs());
        let call = MInst::Call {
            callee: pdgc_ir::CalleeId::new(0),
            arg_regs: vec![],
            ret_reg: None,
        };
        let m = mach_of(
            &f,
            vec![vec![
                call.clone(),
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(0), rhs: r(0) },
                MInst::Ret,
            ]],
            0,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"stale-value"), "{err}");

        // The same code with the caller-save shadow is accepted.
        let m = mach_of(
            &f,
            vec![vec![
                MInst::SpillStore { src: r(0), slot: 0 },
                call,
                MInst::SpillLoad { dst: r(0), slot: 0 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(0), rhs: r(0) },
                MInst::Ret,
            ]],
            1,
        );
        check_allocation(&f, &a, &m, &target()).unwrap();
    }

    #[test]
    fn rejects_an_undeclared_nonvolatile_write() {
        let f = sum2();
        // r13 is non-volatile on the 24-register ia64 model.
        let nv = r(13);
        assert!(!target().is_volatile(nv));
        let a = assign(&[(0, r(0)), (1, nv), (2, r(2)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: nv, base: r(0), offset: 0 },
                MInst::Load { dst: r(2), base: r(0), offset: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: nv, rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"frame"), "{err}");
    }

    #[test]
    fn rejects_structurally_divergent_machine_code() {
        let f = sum2();
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(2)), (3, r(0))], f.num_vregs());
        // The second load is simply missing.
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: r(1), base: r(0), offset: 0 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"structure"), "{err}");
    }

    #[test]
    fn rejects_an_unassigned_vreg() {
        let f = sum2();
        let a = assign(&[(0, r(0)), (1, r(1)), (3, r(0))], f.num_vregs());
        let m = mach_of(&f, vec![vec![MInst::Ret]], 0);
        let err = check_allocation(&f, &a, &m, &target()).unwrap_err();
        assert!(kinds(&err).contains(&"unassigned"), "{err}");
    }

    #[test]
    fn rewritten_scope_still_catches_call_clobbers() {
        // Same shape as `rejects_a_missing_caller_save`: p lives in
        // volatile r0 across a call with no save/restore. Call blocks are
        // always in the replayed set, so the narrow scope still sees it.
        let mut b = FunctionBuilder::new("nosave", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        b.call("ext", vec![], None);
        let s = b.bin(BinOp::Add, p, p);
        b.ret(Some(s));
        let f = b.finish();
        let a = assign(&[(0, r(0)), (1, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Call {
                    callee: pdgc_ir::CalleeId::new(0),
                    arg_regs: vec![],
                    ret_reg: None,
                },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(0), rhs: r(0) },
                MInst::Ret,
            ]],
            0,
        );
        let err =
            check_allocation_scoped(&f, &a, &m, &target(), CheckScope::Rewritten).unwrap_err();
        assert!(kinds(&err).contains(&"stale-value"), "{err}");
    }

    #[test]
    fn rewritten_scope_catches_a_wrong_return_register() {
        let f = sum2();
        // The sum lands in r3, not the convention's return register r0;
        // the machine code is otherwise a faithful direct mapping.
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(2)), (3, r(3))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: r(1), base: r(0), offset: 0 },
                MInst::Load { dst: r(2), base: r(0), offset: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(3), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let err =
            check_allocation_scoped(&f, &a, &m, &target(), CheckScope::Rewritten).unwrap_err();
        assert!(kinds(&err).contains(&"bad-register"), "{err}");
    }

    #[test]
    fn rewritten_scope_skips_replay_of_directly_mapped_blocks() {
        // The interfering-assignment function from
        // `rejects_interfering_vregs_in_one_register` contains no rewriter
        // deviation at all, so the narrow scope intentionally accepts it:
        // that is the pay-per-rewrite trade batch runs opt into. The full
        // scope must keep rejecting it.
        let f = sum2();
        let a = assign(&[(0, r(0)), (1, r(1)), (2, r(1)), (3, r(0))], f.num_vregs());
        let m = mach_of(
            &f,
            vec![vec![
                MInst::Load { dst: r(1), base: r(0), offset: 0 },
                MInst::Load { dst: r(1), base: r(0), offset: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(1) },
                MInst::Ret,
            ]],
            0,
        );
        assert!(check_allocation(&f, &a, &m, &target()).is_err());
        check_allocation_scoped(&f, &a, &m, &target(), CheckScope::Rewritten).unwrap();
    }

    #[test]
    fn scratch_reuse_matches_fresh_checks() {
        let f = sum2();
        let good = assign(&[(0, r(0)), (1, r(1)), (2, r(2)), (3, r(0))], f.num_vregs());
        let bad = assign(&[(0, r(0)), (1, r(1)), (2, r(1)), (3, r(0))], f.num_vregs());
        let m_good = mach_of(
            &f,
            vec![vec![
                MInst::LoadPair { dst1: r(1), dst2: r(2), base: r(0), offset: 0, offset2: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(2) },
                MInst::Ret,
            ]],
            0,
        );
        let m_bad = mach_of(
            &f,
            vec![vec![
                MInst::LoadPair { dst1: r(1), dst2: r(1), base: r(0), offset: 0, offset2: 8 },
                MInst::Bin { op: BinOp::Add, dst: r(0), lhs: r(1), rhs: r(1) },
                MInst::Ret,
            ]],
            0,
        );
        let mut scratch = CheckScratch::new();
        for _ in 0..3 {
            for scope in [CheckScope::Full, CheckScope::Rewritten] {
                let pooled =
                    check_allocation_in(&f, &good, &m_good, &target(), scope, &mut scratch);
                assert_eq!(pooled, check_allocation_scoped(&f, &good, &m_good, &target(), scope));
                let pooled = check_allocation_in(&f, &bad, &m_bad, &target(), scope, &mut scratch);
                let fresh = check_allocation_scoped(&f, &bad, &m_bad, &target(), scope);
                assert_eq!(
                    pooled.as_ref().map_err(kinds),
                    fresh.as_ref().map_err(kinds)
                );
            }
        }
    }

    #[test]
    fn mode_parsing_and_gating() {
        assert_eq!(CheckMode::parse("off"), Some(CheckMode::Off));
        assert_eq!(CheckMode::parse("debug"), Some(CheckMode::DebugAssert));
        assert_eq!(CheckMode::parse("always"), Some(CheckMode::Always));
        assert_eq!(CheckMode::parse("on"), Some(CheckMode::Always));
        assert_eq!(CheckMode::parse("sometimes"), None);
        assert!(!CheckMode::Off.should_check());
        assert!(CheckMode::Always.should_check());
        assert_eq!(
            CheckMode::DebugAssert.should_check(),
            cfg!(debug_assertions)
        );
        assert_eq!(CheckMode::Always.to_string(), "always");
    }
}
