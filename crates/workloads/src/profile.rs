//! Workload profiles: the SPECjvm98 analogs.

use pdgc_ir::{Function, RegClass};
use pdgc_target::TargetDesc;

/// Tuning knobs for the synthetic program generator.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Workload name (reported in tables).
    pub name: String,
    /// RNG seed (all generation is deterministic).
    pub seed: u64,
    /// Number of functions to generate.
    pub num_funcs: usize,
    /// Approximate operation count per function.
    pub ops_per_func: usize,
    /// Maximum loop-nesting depth.
    pub loop_depth: u32,
    /// Probability that a region op is a call.
    pub call_density: f64,
    /// Probability that a new value is floating-point.
    pub float_ratio: f64,
    /// Probability that a load comes as a paired-load candidate.
    pub paired_density: f64,
    /// Probability that an integer load is a byte load (exercises the
    /// limited-register-usage preference on x86-like targets).
    pub byte_density: f64,
    /// Target number of simultaneously live values per class.
    pub pressure: usize,
    /// Probability of emitting a branch diamond (φ merges).
    pub diamond_density: f64,
    /// Address stride between the two words of an emitted paired-load
    /// candidate (the paper-like targets fuse at stride 8).
    pub pair_stride: i32,
    /// Required alignment of a paired candidate's first word (1 = none).
    pub pair_align: i32,
}

impl WorkloadProfile {
    /// Adapts the profile to a target: paired candidates take the
    /// stride and alignment of the target's integer pair rule (a target
    /// without one gets no paired candidates), and the live-value
    /// pressure is capped below the register file so constrained
    /// targets stay allocatable while still spilling.
    pub fn for_target(&self, target: &TargetDesc) -> WorkloadProfile {
        let mut p = self.clone();
        match target.pair_rule(RegClass::Int) {
            Some(rule) => {
                p.pair_stride = rule.stride();
                p.pair_align = rule.alignment();
            }
            None => p.paired_density = 0.0,
        }
        let regs = target.num_regs(RegClass::Int);
        p.pressure = p.pressure.min(regs.saturating_sub(2)).max(2);
        p
    }
}

/// A generated workload: functions plus a display name.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Name (matches the profile).
    pub name: String,
    /// The generated functions.
    pub funcs: Vec<Function>,
}

/// The SPECjvm98 analog suite (§6 of the paper; `check` is omitted there
/// too). `mpegaudio` and `mtrt` carry the float-heavy profiles whose
/// float-class statistics the paper reports separately as "mpegaudio fp"
/// and "mtrt fp".
pub fn specjvm_suite() -> Vec<WorkloadProfile> {
    let mk = |name: &str,
              seed: u64,
              num_funcs: usize,
              ops: usize,
              depth: u32,
              call: f64,
              float: f64,
              paired: f64,
              pressure: usize,
              diamond: f64| WorkloadProfile {
        name: name.to_string(),
        seed,
        num_funcs,
        ops_per_func: ops,
        loop_depth: depth,
        call_density: call,
        float_ratio: float,
        paired_density: paired,
        byte_density: 0.0,
        pressure,
        diamond_density: diamond,
        pair_stride: 8,
        pair_align: 1,
    };
    vec![
        // compress: tight integer loop nests, few calls, steady pressure.
        mk("compress", 0x000C_0117_7E55, 8, 120, 3, 0.04, 0.02, 0.25, 14, 0.10),
        // jess: rule engine — call-heavy, branchy, moderate pressure.
        mk("jess", 0x1E55, 10, 90, 1, 0.38, 0.02, 0.05, 9, 0.30),
        // db: queries — calls plus comparisons/branches.
        mk("db", 0xDB, 9, 100, 1, 0.30, 0.0, 0.05, 9, 0.35),
        // javac: large irregular functions, mixed calls and loops.
        mk("javac", 0x7A4AC, 12, 160, 2, 0.25, 0.02, 0.08, 12, 0.30),
        // mpegaudio: float-dominated DSP loops with many paired loads.
        mk("mpegaudio", 0x3E6, 8, 140, 2, 0.08, 0.60, 0.50, 12, 0.10),
        // mtrt: ray tracer — float math plus object-graph calls.
        mk("mtrt", 0x317, 9, 110, 1, 0.22, 0.45, 0.25, 10, 0.25),
        // jack: parser generator — the most call-dense, small pressure.
        mk("jack", 0x7ACC, 10, 80, 1, 0.45, 0.0, 0.03, 7, 0.30),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_named_analogs() {
        let suite = specjvm_suite();
        let names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack"]
        );
        // Float-class stats come from the float-heavy profiles.
        assert!(suite[4].float_ratio > 0.4);
        assert!(suite[5].float_ratio > 0.4);
        // The default pairing shape matches the paper-like targets.
        assert!(suite.iter().all(|p| p.pair_stride == 8 && p.pair_align == 1));
    }

    #[test]
    fn for_target_adopts_the_pair_rule_and_caps_pressure() {
        let prof = &specjvm_suite()[0]; // compress: pressure 14
        // risc16 pairs aligned stride-16 quadwords.
        let risc = prof.for_target(&TargetDesc::risc16());
        assert_eq!(risc.pair_stride, 16);
        assert_eq!(risc.pair_align, 16);
        assert_eq!(risc.pressure, 14);
        // tight8's 8-register file caps the pressure target.
        let tight = prof.for_target(&TargetDesc::tight8());
        assert_eq!(tight.pressure, 6);
        // The paper-like default leaves the profile untouched.
        let ia64 = prof.for_target(&TargetDesc::ia64_like(
            pdgc_target::PressureModel::Middle,
        ));
        assert_eq!(ia64.pair_stride, prof.pair_stride);
        assert_eq!(ia64.pressure, prof.pressure);
        // A target whose integer class cannot pair gets no candidates.
        let nopair = TargetDesc::builder("nopair")
            .class(RegClass::Int, pdgc_target::ClassSpec::new(16))
            .class(RegClass::Float, pdgc_target::ClassSpec::new(16))
            .finish()
            .unwrap();
        assert_eq!(prof.for_target(&nopair).paired_density, 0.0);
    }
}
