//! The deterministic program generator.
//!
//! Programs are built so that
//!
//! * every loop has a compile-time trip count of at least one (no
//!   undefined reads, guaranteed termination under the interpreter);
//! * branch diamonds merge values with φ-functions, producing the copy-
//!   rich code of SSA input once lowered;
//! * register pressure tracks the profile's target via a live-value pool
//!   that grows with loads and shrinks by folding;
//! * loads target a read region and stores a separate write region, so
//!   memory behaviour is deterministic;
//! * everything ultimately flows into the return value or a store, so
//!   live ranges have real uses.

use crate::profile::{Workload, WorkloadProfile};
use pdgc_ir::{BinOp, CmpOp, Function, FunctionBuilder, Inst, RegClass, VReg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the workload described by `profile`. Deterministic in the
/// profile's seed.
pub fn generate(profile: &WorkloadProfile) -> Workload {
    let mut funcs = Vec::with_capacity(profile.num_funcs);
    for i in 0..profile.num_funcs {
        let mut rng = StdRng::seed_from_u64(profile.seed.wrapping_add(i as u64 * 0x9e37));
        let name = format!("{}_{i}", profile.name);
        let func = FuncGen::new(&name, profile, &mut rng).generate();
        debug_assert!(func.verify().is_ok(), "generated {name} fails verify");
        funcs.push(func);
    }
    Workload {
        name: profile.name.clone(),
        funcs,
    }
}

/// Canonical simulator arguments for a generated function: the base
/// pointer (0 — the read region) and a small scalar.
pub fn default_args(func: &Function) -> Vec<u64> {
    func.sig
        .params
        .iter()
        .enumerate()
        .map(|(i, class)| match class {
            RegClass::Int => {
                if i == 0 {
                    0 // read-region base
                } else {
                    7 + i as u64
                }
            }
            RegClass::Float => (1.5 + i as f64).to_bits(),
        })
        .collect()
}

struct FuncGen<'a> {
    b: FunctionBuilder,
    rng: &'a mut StdRng,
    prof: &'a WorkloadProfile,
    base: VReg,
    ints: Vec<VReg>,
    floats: Vec<VReg>,
    load_off: i32,
    store_off: i32,
    ops_left: isize,
}

const READ_REGION: i32 = 0;
const WRITE_REGION: i32 = 1 << 20;

impl<'a> FuncGen<'a> {
    fn new(name: &str, prof: &'a WorkloadProfile, rng: &'a mut StdRng) -> Self {
        let b = FunctionBuilder::new(
            name,
            vec![RegClass::Int, RegClass::Int],
            Some(RegClass::Int),
        );
        let base = b.param(0);
        let scalar = b.param(1);
        let mut g = FuncGen {
            b,
            rng,
            prof,
            base,
            ints: vec![scalar],
            floats: Vec::new(),
            load_off: READ_REGION,
            store_off: WRITE_REGION,
            ops_left: prof.ops_per_func as isize,
        };
        // Seed the pools.
        let c = g.b.iconst(g.rng.gen_range(1..100));
        g.ints.push(c);
        if g.prof.float_ratio > 0.0 {
            let f = g.b.fconst(1.25);
            g.floats.push(f);
        }
        g
    }

    fn generate(mut self) -> Function {
        self.region(0);
        // Fold everything into the return value / stores.
        let mut acc = self.pick_int();
        let ints = std::mem::take(&mut self.ints);
        for v in ints {
            acc = self.b.bin(BinOp::Xor, acc, v);
        }
        let floats = std::mem::take(&mut self.floats);
        for (i, v) in floats.into_iter().enumerate() {
            self.b.store(v, self.base, self.store_off + 8 * i as i32);
        }
        self.b.ret(Some(acc));
        self.b.finish()
    }

    /// Emits a region of code at the given loop depth until the op budget
    /// for this nesting level runs out.
    fn region(&mut self, depth: u32) {
        let mut local_budget = (self.prof.ops_per_func / (1 + depth as usize * 2)).max(4) as isize;
        while self.ops_left > 0 && local_budget > 0 {
            let r: f64 = self.rng.gen();
            if depth < self.prof.loop_depth && r < 0.08 {
                self.emit_loop(depth);
                local_budget -= 8;
            } else if r < 0.08 + self.prof.diamond_density * 0.25 {
                self.emit_diamond();
                local_budget -= 6;
            } else {
                self.emit_op();
                local_budget -= 1;
            }
        }
    }

    /// A counted loop with a guaranteed trip count ≥ 1 and a loop-carried
    /// accumulator (a multi-definition web, like the paper's `v0`).
    fn emit_loop(&mut self, depth: u32) {
        let trip = self.rng.gen_range(2..5);
        let header = self.b.create_block();
        let body = self.b.create_block();
        let exit = self.b.create_block();
        let counter = self.b.iconst(trip);
        let zero = self.b.iconst(0);
        let seed = self.pick_int();
        let acc = self.b.copy(seed);
        self.ints.push(acc);
        self.b.jump(header);

        self.b.switch_to(header);
        self.b.branch(CmpOp::Gt, counter, zero, body, exit);

        self.b.switch_to(body);
        let inner = (self.prof.ops_per_func / 6).max(3);
        for _ in 0..inner {
            if self.ops_left <= 0 {
                break;
            }
            self.emit_op();
        }
        if depth + 1 < self.prof.loop_depth && self.rng.gen_bool(0.4) {
            self.emit_loop(depth + 1);
        }
        // Update the accumulator and the counter (multi-def webs).
        let x = self.pick_int();
        self.b.emit(Inst::Bin {
            op: BinOp::Add,
            dst: acc,
            lhs: acc,
            rhs: x,
        });
        self.b.emit(Inst::BinImm {
            op: BinOp::Sub,
            dst: counter,
            lhs: counter,
            imm: 1,
        });
        self.b.jump(header);

        self.b.switch_to(exit);
    }

    /// A forward branch diamond whose arms produce values merged by φs.
    fn emit_diamond(&mut self) {
        let then_b = self.b.create_block();
        let else_b = self.b.create_block();
        let join = self.b.create_block();
        let x = self.pick_int();
        let y = self.pick_int();
        let cmp = [CmpOp::Lt, CmpOp::Eq, CmpOp::Ge][self.rng.gen_range(0..3usize)];
        self.b.branch(cmp, x, y, then_b, else_b);

        // Arms: values created inside an arm stay local to it; only φ
        // results join the pool.
        let snapshot_i = self.ints.clone();
        let snapshot_f = self.floats.clone();

        self.b.switch_to(then_b);
        for _ in 0..self.rng.gen_range(1..4) {
            self.emit_op();
        }
        let tv = self.pick_int();
        self.b.jump(join);
        let then_end = self.b.current_block();

        self.ints = snapshot_i.clone();
        self.floats = snapshot_f.clone();
        self.b.switch_to(else_b);
        for _ in 0..self.rng.gen_range(1..4) {
            self.emit_op();
        }
        let ev = self.pick_int();
        self.b.jump(join);
        let else_end = self.b.current_block();

        self.ints = snapshot_i;
        self.floats = snapshot_f;
        self.b.switch_to(join);
        let merged = self
            .b
            .phi(RegClass::Int, vec![(then_end, tv), (else_end, ev)]);
        self.ints.push(merged);
        self.trim_pools();
    }

    /// One straight-line operation.
    fn emit_op(&mut self) {
        self.ops_left -= 1;
        let r: f64 = self.rng.gen();
        if r < self.prof.call_density {
            self.emit_call();
        } else if r < self.prof.call_density + 0.28 {
            self.emit_load();
        } else if r < self.prof.call_density + 0.36 {
            self.emit_store();
        } else if r < self.prof.call_density + 0.44 {
            // An explicit copy (SSA φ-web material).
            let v = self.pick_int();
            let c = self.b.copy(v);
            self.ints.push(c);
        } else {
            self.emit_arith();
        }
        self.trim_pools();
    }

    fn emit_load(&mut self) {
        let float = self.rng.gen_bool(self.prof.float_ratio);
        let paired = self.rng.gen_bool(self.prof.paired_density);
        let off = self.next_load_off();
        if !float && !paired && self.rng.gen_bool(self.prof.byte_density) {
            let a = self.b.load8(self.base, off);
            self.ints.push(a);
            return;
        }
        if paired {
            // Snap the first word up to the target's pair alignment (a
            // no-op for the paper-like align-1 targets) and stride the
            // second word per the profile.
            let align = self.prof.pair_align.max(1);
            let off = off + (align - off.rem_euclid(align)) % align;
            let off2 = off + self.prof.pair_stride;
            self.load_off = self.load_off.max(off2 + self.prof.pair_stride);
            if float {
                let a = self.b.fload(self.base, off);
                let c = self.b.fload(self.base, off2);
                self.floats.push(a);
                self.floats.push(c);
            } else {
                let a = self.b.load(self.base, off);
                let c = self.b.load(self.base, off2);
                self.ints.push(a);
                self.ints.push(c);
            }
        } else if float {
            let a = self.b.fload(self.base, off);
            self.floats.push(a);
        } else {
            let a = self.b.load(self.base, off);
            self.ints.push(a);
        }
    }

    fn emit_store(&mut self) {
        let off = self.next_store_off();
        if !self.floats.is_empty() && self.rng.gen_bool(self.prof.float_ratio) {
            let v = self.pick_float();
            self.b.store(v, self.base, off);
        } else {
            let v = self.pick_int();
            self.b.store(v, self.base, off);
        }
    }

    fn emit_arith(&mut self) {
        if !self.floats.is_empty() && self.rng.gen_bool(self.prof.float_ratio) {
            let a = self.pick_float();
            let c = self.pick_float();
            let op = [BinOp::FAdd, BinOp::FSub, BinOp::FMul][self.rng.gen_range(0..3usize)];
            let v = self.b.bin(op, a, c);
            self.floats.push(v);
        } else {
            let a = self.pick_int();
            let op = [BinOp::Add, BinOp::Sub, BinOp::Xor, BinOp::And, BinOp::Or, BinOp::Mul]
                [self.rng.gen_range(0..6usize)];
            if self.rng.gen_bool(0.4) {
                let imm = self.rng.gen_range(1..64);
                let v = self.b.bin_imm(op, a, imm);
                self.ints.push(v);
            } else {
                let c = self.pick_int();
                let v = self.b.bin(op, a, c);
                self.ints.push(v);
            }
        }
    }

    fn emit_call(&mut self) {
        let callee = format!("g{}", self.rng.gen_range(0..4));
        let nargs = self.rng.gen_range(0..4usize);
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            if !self.floats.is_empty() && self.rng.gen_bool(self.prof.float_ratio) {
                args.push(self.pick_float());
            } else {
                args.push(self.pick_int());
            }
        }
        let ret_class = if self.rng.gen_bool(0.7) {
            Some(if self.rng.gen_bool(self.prof.float_ratio) && !self.floats.is_empty() {
                RegClass::Float
            } else {
                RegClass::Int
            })
        } else {
            None
        };
        if let Some(v) = self.b.call(&callee, args, ret_class) {
            match ret_class.unwrap() {
                RegClass::Int => self.ints.push(v),
                RegClass::Float => self.floats.push(v),
            }
        }
    }

    fn pick_int(&mut self) -> VReg {
        let i = self.rng.gen_range(0..self.ints.len());
        self.ints[i]
    }

    fn pick_float(&mut self) -> VReg {
        let i = self.rng.gen_range(0..self.floats.len());
        self.floats[i]
    }

    /// Keeps pool sizes near the pressure target by folding values.
    fn trim_pools(&mut self) {
        while self.ints.len() > self.prof.pressure.max(2) {
            let a = self.ints.swap_remove(self.rng.gen_range(0..self.ints.len()));
            let b2 = self.ints.swap_remove(self.rng.gen_range(0..self.ints.len()));
            let v = self.b.bin(BinOp::Xor, a, b2);
            self.ints.push(v);
        }
        while self.floats.len() > self.prof.pressure.max(2) {
            let a = self
                .floats
                .swap_remove(self.rng.gen_range(0..self.floats.len()));
            let b2 = self
                .floats
                .swap_remove(self.rng.gen_range(0..self.floats.len()));
            let v = self.b.bin(BinOp::FAdd, a, b2);
            self.floats.push(v);
        }
    }

    fn next_load_off(&mut self) -> i32 {
        let off = self.load_off;
        self.load_off += 8;
        if self.load_off > READ_REGION + (1 << 16) {
            self.load_off = READ_REGION;
        }
        off
    }

    fn next_store_off(&mut self) -> i32 {
        let off = self.store_off;
        self.store_off += 8;
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specjvm_suite;

    #[test]
    fn all_workloads_verify() {
        for prof in specjvm_suite() {
            let w = generate(&prof);
            assert_eq!(w.funcs.len(), prof.num_funcs);
            for f in &w.funcs {
                f.verify()
                    .unwrap_or_else(|e| panic!("{} fails verify: {e}", f.name));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let prof = &specjvm_suite()[0];
        let a = generate(prof);
        let b = generate(prof);
        for (fa, fb) in a.funcs.iter().zip(&b.funcs) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn call_density_orders_workloads() {
        let suite = specjvm_suite();
        let count = |name: &str| {
            let prof = suite.iter().find(|p| p.name == name).unwrap();
            let w = generate(prof);
            let calls: usize = w.funcs.iter().map(|f| f.num_calls()).sum();
            let insts: usize = w.funcs.iter().map(|f| f.num_insts()).sum();
            calls as f64 / insts as f64
        };
        assert!(count("jack") > count("compress"));
        assert!(count("jess") > count("compress"));
    }

    #[test]
    fn float_heavy_workloads_have_float_registers() {
        let suite = specjvm_suite();
        let prof = suite.iter().find(|p| p.name == "mpegaudio").unwrap();
        let w = generate(prof);
        let floats: usize = w
            .funcs
            .iter()
            .map(|f| {
                f.vreg_classes
                    .iter()
                    .filter(|c| **c == RegClass::Float)
                    .count()
            })
            .sum();
        assert!(floats > 50, "mpegaudio should be float-heavy, got {floats}");
    }

    #[test]
    fn byte_density_emits_byte_loads() {
        let mut prof = specjvm_suite()[0].clone();
        prof.byte_density = 0.6;
        prof.float_ratio = 0.0;
        prof.paired_density = 0.0;
        let w = generate(&prof);
        let bytes: usize = w
            .funcs
            .iter()
            .map(|f| f.count_insts(|i| matches!(i, pdgc_ir::Inst::Load8 { .. })))
            .sum();
        assert!(bytes > 20, "expected byte loads, got {bytes}");
        // The paper-suite profiles themselves stay byte-free.
        let w0 = generate(&specjvm_suite()[0]);
        let none: usize = w0
            .funcs
            .iter()
            .map(|f| f.count_insts(|i| matches!(i, pdgc_ir::Inst::Load8 { .. })))
            .sum();
        assert_eq!(none, 0);
    }

    #[test]
    fn paired_candidates_follow_the_profile_stride_and_alignment() {
        let mut prof = specjvm_suite()[0].clone();
        prof.paired_density = 1.0;
        prof.float_ratio = 0.0;
        prof.pair_stride = 16;
        prof.pair_align = 16;
        let w = generate(&prof);
        // Collect every load offset; each paired emission contributes an
        // aligned first word and a second word exactly 16 bytes later.
        let mut found = 0;
        for f in &w.funcs {
            for b in f.block_ids() {
                let insts = &f.block(b).insts;
                for k in 0..insts.len().saturating_sub(1) {
                    if let (
                        pdgc_ir::Inst::Load { offset: o1, .. },
                        pdgc_ir::Inst::Load { offset: o2, .. },
                    ) = (&insts[k], &insts[k + 1])
                    {
                        if *o2 == o1 + 16 {
                            assert_eq!(o1 % 16, 0, "first word must be 16-aligned");
                            found += 1;
                        }
                    }
                }
            }
        }
        assert!(found > 10, "expected stride-16 pairs, found {found}");
    }

    #[test]
    fn default_args_match_signature() {
        let prof = &specjvm_suite()[0];
        let w = generate(prof);
        for f in &w.funcs {
            assert_eq!(default_args(f).len(), f.sig.params.len());
        }
    }
}
