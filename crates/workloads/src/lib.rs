//! Seeded synthetic workloads for register-allocation experiments.
//!
//! The paper evaluates on SPECjvm98 inside IBM's IA-64 Java JIT. Neither is
//! available here, so this crate generates deterministic synthetic
//! programs whose *allocation-relevant* character matches each benchmark's
//! profile: register pressure, loop nesting, call density, float ratio,
//! copy richness (φ-heavy SSA input), and paired-load opportunities. Each
//! [`WorkloadProfile`] is tuned to mimic one SPECjvm98 test (see
//! [`specjvm_suite`]); the generated [`Workload`] is a set of verified,
//! terminating [`pdgc_ir::Function`]s plus canonical arguments for the
//! simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod profile;

pub use gen::{default_args, generate};
pub use profile::{specjvm_suite, Workload, WorkloadProfile};
