//! Bump arena and resettable scratch pools.
//!
//! The batch driver runs one allocation pipeline per worker thread. Without
//! buffer reuse every phase re-allocates its working set per function, and
//! under multiple workers the global allocator becomes the contention point:
//! `--jobs 2` ran *slower* than serial. The types here let each worker own
//! its scratch once and reset it between functions:
//!
//! * [`Bump`] — an index-range bump arena over a single backing `Vec`. One
//!   allocation serves many logical arrays (e.g. every row of an
//!   interference bit-matrix); `reset` reclaims everything while keeping
//!   the capacity.
//! * [`VecPool`] — a recycling pool of `Vec<T>` buffers. `take` hands out a
//!   cleared buffer (retaining its previous capacity), `put` returns it.
//! * [`NestedPool`] — the same idea for jagged `Vec<Vec<T>>` structures,
//!   keeping *inner* capacities alive across reuse.
//! * [`Taken`] — a drop-guard for the `mem::take`-a-field scratch pattern:
//!   the taken value is restored into its slot even on early return, `?`,
//!   or unwind, so reuse never silently degrades to per-call allocation.
//!
//! Everything here is safe Rust: the arena hands out index ranges, not
//! pointers, so the usual lifetime puzzles of bump allocators do not arise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::mem;
use std::ops::{Deref, DerefMut};

/// A contiguous range handle into a [`Bump`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BumpRange {
    start: usize,
    len: usize,
}

impl BumpRange {
    /// Number of elements in the range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An index-range bump arena over a single backing vector.
///
/// `alloc_zeroed` extends the high-water mark and returns a [`BumpRange`];
/// the elements are guaranteed to be `T::default()`. `reset` rewinds the
/// mark to zero without releasing the backing storage, so steady-state use
/// performs no heap allocation once the arena has grown to the largest
/// working set it has seen.
#[derive(Debug, Clone)]
pub struct Bump<T> {
    storage: Vec<T>,
    mark: usize,
}

impl<T> Default for Bump<T> {
    fn default() -> Self {
        Bump {
            storage: Vec::new(),
            mark: 0,
        }
    }
}

impl<T: Clone + Default> Bump<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Bump {
            storage: Vec::new(),
            mark: 0,
        }
    }

    /// Allocates `len` default-valued elements and returns their range.
    pub fn alloc_zeroed(&mut self, len: usize) -> BumpRange {
        let start = self.mark;
        let end = start + len;
        if self.storage.len() < end {
            self.storage.resize(end, T::default());
        } else {
            // Recycled region: scrub leftovers from the previous generation.
            self.storage[start..end].fill(T::default());
        }
        self.mark = end;
        BumpRange { start, len }
    }

    /// The elements of a previously allocated range.
    pub fn get(&self, r: BumpRange) -> &[T] {
        &self.storage[r.start..r.start + r.len]
    }

    /// Mutable access to a previously allocated range.
    pub fn get_mut(&mut self, r: BumpRange) -> &mut [T] {
        &mut self.storage[r.start..r.start + r.len]
    }

    /// Rewinds the arena, keeping the backing capacity.
    pub fn reset(&mut self) {
        self.mark = 0;
    }

    /// Elements currently allocated.
    pub fn len(&self) -> usize {
        self.mark
    }

    /// Whether nothing is currently allocated.
    pub fn is_empty(&self) -> bool {
        self.mark == 0
    }

    /// Capacity of the backing storage (diagnostic).
    pub fn capacity(&self) -> usize {
        self.storage.capacity()
    }

    /// Moves the backing storage out as a plain `Vec` sized to the current
    /// mark, leaving the arena empty. Pair with [`Bump::adopt`] to lend the
    /// arena's storage to a structure that needs owned data.
    pub fn take_storage(&mut self) -> Vec<T> {
        let mut v = mem::take(&mut self.storage);
        v.truncate(self.mark);
        self.mark = 0;
        v
    }

    /// Re-adopts storage previously taken with [`Bump::take_storage`]
    /// (or any compatible buffer), resetting the mark.
    pub fn adopt(&mut self, v: Vec<T>) {
        if v.capacity() > self.storage.capacity() {
            self.storage = v;
        }
        self.storage.clear();
        self.mark = 0;
    }
}

/// A recycling pool of `Vec<T>` buffers.
///
/// `take` returns a cleared buffer reusing the capacity of the most
/// recently returned one; `put` gives a buffer back. Dropping buffers
/// instead of returning them is safe but degrades reuse, which is exactly
/// what [`Taken`] exists to prevent.
#[derive(Debug, Clone)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool { free: Vec::new() }
    }
}

impl<T> VecPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        VecPool { free: Vec::new() }
    }

    /// Takes a cleared buffer from the pool (or a fresh one).
    pub fn take(&mut self) -> Vec<T> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Takes a buffer and resizes it to `len` copies of `value`.
    pub fn take_filled(&mut self, len: usize, value: T) -> Vec<T>
    where
        T: Clone,
    {
        let mut v = self.take();
        v.resize(len, value);
        v
    }

    /// Returns a buffer to the pool.
    pub fn put(&mut self, v: Vec<T>) {
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Number of pooled buffers (diagnostic; used by reuse tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// A recycling pool for jagged `Vec<Vec<T>>` buffers that preserves the
/// capacity of the inner vectors across reuse.
#[derive(Debug, Clone)]
pub struct NestedPool<T> {
    outers: Vec<Vec<Vec<T>>>,
    inners: Vec<Vec<T>>,
}

impl<T> Default for NestedPool<T> {
    fn default() -> Self {
        NestedPool {
            outers: Vec::new(),
            inners: Vec::new(),
        }
    }
}

impl<T> NestedPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        NestedPool {
            outers: Vec::new(),
            inners: Vec::new(),
        }
    }

    /// Takes an outer buffer holding exactly `n` cleared inner vectors.
    pub fn take(&mut self, n: usize) -> Vec<Vec<T>> {
        let mut v = self.outers.pop().unwrap_or_default();
        while v.len() > n {
            self.inners.push(v.pop().expect("len checked"));
        }
        for inner in &mut v {
            inner.clear();
        }
        while v.len() < n {
            let mut inner = self.inners.pop().unwrap_or_default();
            inner.clear();
            v.push(inner);
        }
        v
    }

    /// Takes a single cleared inner vector, for growing a jagged structure
    /// past the size it was taken with.
    pub fn take_inner(&mut self) -> Vec<T> {
        let mut v = self.inners.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a jagged buffer to the pool, inner capacities intact.
    pub fn put(&mut self, v: Vec<Vec<T>>) {
        self.outers.push(v);
    }

    /// Number of pooled outer buffers (diagnostic; used by reuse tests).
    pub fn pooled(&self) -> usize {
        self.outers.len()
    }
}

/// Drop-guard for the take-a-field scratch pattern.
///
/// `Taken::new(&mut slot)` moves the value out of `slot` (leaving
/// `T::default()`), dereferences to the value while held, and moves it
/// back into the slot on drop — including early returns, `?`, and panics.
/// This pins the invariant the scratch audit cares about: a taken buffer
/// is never silently dropped on an error path.
#[derive(Debug)]
pub struct Taken<'a, T: Default> {
    slot: &'a mut T,
    value: T,
}

impl<'a, T: Default> Taken<'a, T> {
    /// Takes the value out of `slot`, to be restored on drop.
    pub fn new(slot: &'a mut T) -> Self {
        let value = mem::take(slot);
        Taken { slot, value }
    }
}

impl<T: Default> Deref for Taken<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: Default> DerefMut for Taken<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: Default> Drop for Taken<'_, T> {
    fn drop(&mut self) {
        *self.slot = mem::take(&mut self.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_and_reset_reuses_storage() {
        let mut a: Bump<u64> = Bump::new();
        let r1 = a.alloc_zeroed(4);
        a.get_mut(r1)[2] = 7;
        let r2 = a.alloc_zeroed(3);
        assert_eq!(a.get(r1), &[0, 0, 7, 0]);
        assert_eq!(a.get(r2), &[0, 0, 0]);
        assert_eq!(a.len(), 7);

        let cap = a.capacity();
        a.reset();
        assert!(a.is_empty());
        let r3 = a.alloc_zeroed(5);
        // Recycled region must be scrubbed and capacity retained.
        assert_eq!(a.get(r3), &[0; 5]);
        assert_eq!(a.capacity(), cap);
    }

    #[test]
    fn bump_take_and_adopt_round_trip() {
        let mut a: Bump<u32> = Bump::new();
        let r = a.alloc_zeroed(3);
        a.get_mut(r)[0] = 9;
        let v = a.take_storage();
        assert_eq!(v, vec![9, 0, 0]);
        assert!(a.is_empty());
        a.adopt(v);
        let r2 = a.alloc_zeroed(2);
        assert_eq!(a.get(r2), &[0, 0]);
    }

    #[test]
    fn vec_pool_retains_capacity() {
        let mut p: VecPool<usize> = VecPool::new();
        let mut v = p.take();
        v.extend(0..100);
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.pooled(), 1);
        let v2 = p.take();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(p.pooled(), 0);
    }

    #[test]
    fn nested_pool_preserves_inner_capacity() {
        let mut p: NestedPool<u8> = NestedPool::new();
        let mut j = p.take(3);
        j[0].extend([1, 2, 3]);
        j[1].extend([4; 50]);
        let cap1 = j[1].capacity();
        j.push(p.take_inner());
        p.put(j);

        // Ask for fewer inners than were returned: extras park in the
        // inner pool and come back on the next growth.
        let j2 = p.take(2);
        assert_eq!(j2.len(), 2);
        assert!(j2.iter().all(|v| v.is_empty()));
        let total_cap: usize = j2.iter().map(|v| v.capacity()).sum();
        assert!(total_cap >= cap1.min(50));
    }

    #[test]
    fn taken_restores_on_normal_drop() {
        let mut slot = vec![1, 2, 3];
        {
            let mut t = Taken::new(&mut slot);
            t.push(4);
            assert_eq!(&*t, &[1, 2, 3, 4]);
        }
        assert_eq!(slot, vec![1, 2, 3, 4]);
    }

    #[test]
    fn taken_restores_on_early_return() {
        fn early(slot: &mut Vec<u32>, bail: bool) -> Result<(), ()> {
            let mut t = Taken::new(slot);
            t.push(1);
            if bail {
                return Err(()); // guard restores here
            }
            t.push(2);
            Ok(())
        }
        let mut slot = Vec::with_capacity(64);
        assert!(early(&mut slot, true).is_err());
        assert_eq!(slot, vec![1]);
        assert!(slot.capacity() >= 64, "capacity lost on early return");
    }

    #[test]
    fn taken_restores_on_unwind() {
        let mut slot: Vec<u32> = Vec::with_capacity(32);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut t = Taken::new(&mut slot);
            t.push(5);
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(slot, vec![5]);
        assert!(slot.capacity() >= 32, "capacity lost across unwind");
    }
}
