//! The Register Preference Graph (RPG) — §5.1 of the paper.
//!
//! A directed graph in which nodes are live ranges, physical registers, or
//! register classes, and each edge records one preference:
//!
//! * `Coalesce` — use the same register as the destination node;
//! * `SequentialPlus` — use the register *before* the partner's (this node
//!   is the first word of a paired load);
//! * `SequentialMinus` — use the register *after* the partner's (this node
//!   is the second word);
//! * `Prefers` — use a register from a set (volatile or non-volatile).
//!
//! Every edge carries two strengths — the benefit when honored with a
//! volatile register and with a non-volatile register — computed with the
//! Appendix model ([`crate::cost`]); the Figure 7 example's 50/48, 40/38,
//! and 28 values are reproduced by the unit tests in [`crate::cost`].

use crate::build::CopyRel;
use crate::cost::CostModel;
use crate::node::{NodeId, NodeMap};
use pdgc_analysis::InstRef;
use pdgc_ir::{Function, Inst, VReg};
use pdgc_target::TargetDesc;

/// The kind of preference an RPG edge expresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefKind {
    /// Use the same register as the target.
    Coalesce,
    /// This node is the *first* word of a paired load; its register must
    /// pair (target rule) as first word with the partner's.
    SequentialPlus,
    /// This node is the *second* word of a paired load.
    SequentialMinus,
    /// Use any register from the target set.
    Prefers,
}

/// What a preference points at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefTarget {
    /// Another allocation node (live range or precolored register).
    Node(NodeId),
    /// The volatile registers of the class.
    Volatile,
    /// The non-volatile registers of the class.
    NonVolatile,
    /// An explicit register set, as a bit mask over register indices —
    /// the paper's *limited register usage* (e.g. x86 byte registers).
    Set(u64),
}

impl PrefTarget {
    /// A `Set` target covering register indices `0..n`.
    pub fn low_regs(n: u8) -> PrefTarget {
        PrefTarget::Set((1u64 << n) - 1)
    }
}

/// One weighted preference edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Preference {
    /// Edge kind.
    pub kind: PrefKind,
    /// Edge destination.
    pub target: PrefTarget,
    /// `Str(V, P)` when honored with a volatile register.
    pub strength_vol: i64,
    /// `Str(V, P)` when honored with a non-volatile register.
    pub strength_nonvol: i64,
}

impl Preference {
    /// The strength of honoring this preference with `reg`.
    pub fn strength_with(&self, reg: pdgc_target::PhysReg, target: &TargetDesc) -> i64 {
        if target.is_volatile(reg) {
            self.strength_vol
        } else {
            self.strength_nonvol
        }
    }

    /// The best strength over both register kinds this preference admits.
    pub fn best_strength(&self) -> i64 {
        match self.target {
            PrefTarget::Volatile => self.strength_vol,
            PrefTarget::NonVolatile => self.strength_nonvol,
            PrefTarget::Node(_) | PrefTarget::Set(_) => {
                self.strength_vol.max(self.strength_nonvol)
            }
        }
    }
}

/// The Register Preference Graph: per-node outgoing preference edges.
#[derive(Clone, Debug, Default)]
pub struct Rpg {
    prefs: Vec<Vec<Preference>>,
}

impl Rpg {
    /// An RPG over `num_nodes` nodes with no edges.
    pub fn new(num_nodes: usize) -> Self {
        Rpg {
            prefs: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds a preference edge out of `node`.
    pub fn add(&mut self, node: NodeId, pref: Preference) {
        self.prefs[node.index()].push(pref);
    }

    /// The preferences of `node`, strongest first.
    pub fn prefs(&self, node: NodeId) -> &[Preference] {
        &self.prefs[node.index()]
    }

    /// Total number of edges (for diagnostics).
    pub fn num_edges(&self) -> usize {
        self.prefs.iter().map(|p| p.len()).sum()
    }

    /// Sorts every node's preferences by descending best strength.
    pub fn sort_by_strength(&mut self) {
        for p in &mut self.prefs {
            p.sort_by_key(|pref| std::cmp::Reverse(pref.best_strength()));
        }
    }
}

/// Which preference kinds to record — the paper's §6 configurations:
/// `coalescing_only()` for the coalescing-capability comparison and
/// `full()` for the full-featured allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PreferenceSet {
    /// Record coalesce edges (live-range↔live-range and to dedicated
    /// registers).
    pub coalesce: bool,
    /// Record sequential± edges for paired-load candidates.
    pub sequential: bool,
    /// Record volatile/non-volatile `Prefers` edges (and enable active
    /// spilling of memory-preferring nodes).
    pub volatility: bool,
    /// Record limited-register-usage `Prefers` edges (byte-load
    /// destinations on targets with a restricted byte-register set).
    pub limited: bool,
}

impl PreferenceSet {
    /// All preference kinds (the paper's "full preferences").
    pub fn full() -> Self {
        PreferenceSet {
            coalesce: true,
            sequential: true,
            volatility: true,
            limited: true,
        }
    }

    /// Coalesce edges only (the paper's "only coalescing").
    pub fn coalescing_only() -> Self {
        PreferenceSet {
            coalesce: true,
            sequential: false,
            volatility: false,
            limited: false,
        }
    }
}

/// A paired-load candidate: two loads of consecutive words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LoadPairCandidate {
    /// The load of the lower-addressed word.
    pub first: InstRef,
    /// The load of the higher-addressed word.
    pub second: InstRef,
    /// Destination of the first load.
    pub dst1: VReg,
    /// Destination of the second load.
    pub dst2: VReg,
}

/// Finds paired-load candidates: two loads in one block from `base+o` and
/// `base+o+stride`, with no intervening redefinition of the base or first
/// destination, store, or call. Each load joins at most one candidate.
///
/// The stride and the first word's alignment come from the target's
/// per-class [`PairRule`](pdgc_target::PairRule); a class without a pair
/// rule contributes no candidates.
pub fn find_load_pairs(func: &Function, target: &TargetDesc) -> Vec<LoadPairCandidate> {
    let mut out = Vec::new();
    for b in func.block_ids() {
        let insts = &func.block(b).insts;
        let mut used = vec![false; insts.len()];
        for i in 0..insts.len() {
            if used[i] {
                continue;
            }
            let Inst::Load { dst, base, offset } = insts[i] else {
                continue;
            };
            let Some(rule) = target.pair_rule(func.class_of(dst)) else {
                continue;
            };
            if !rule.aligned(offset) {
                continue;
            }
            'scan: for (j, cand) in insts.iter().enumerate().skip(i + 1) {
                if used[j] {
                    continue;
                }
                match cand {
                    Inst::Load {
                        dst: dst2,
                        base: base2,
                        offset: offset2,
                    } if *base2 == base
                        && *offset2 == offset + rule.stride()
                        && *dst2 != dst
                        && func.class_of(*dst2) == func.class_of(dst) =>
                    {
                        used[i] = true;
                        used[j] = true;
                        out.push(LoadPairCandidate {
                            first: InstRef { block: b, index: i },
                            second: InstRef { block: b, index: j },
                            dst1: dst,
                            dst2: *dst2,
                        });
                        break 'scan;
                    }
                    // A different load is fine to scan past.
                    Inst::Load { .. } => {}
                    Inst::Store { .. } | Inst::Call { .. } | Inst::Spill { .. } => break 'scan,
                    _ => {}
                }
                // Stop if the base or first destination is redefined.
                if cand.def() == Some(base) || cand.def() == Some(dst) {
                    break 'scan;
                }
                if cand.is_terminator() {
                    break 'scan;
                }
            }
        }
    }
    out
}

/// Builds the RPG for one class.
///
/// `copies` are the class's copy-relatedness records (built by
/// [`crate::build::collect_copies`]); paired-load candidates are detected
/// here. Pinned (precolored) nodes receive no outgoing preferences.
pub fn build_rpg(
    func: &Function,
    nodes: &NodeMap,
    cost: &CostModel<'_>,
    copies: &[CopyRel],
    prefs: PreferenceSet,
    target: &TargetDesc,
) -> Rpg {
    let mut rpg = Rpg::new(nodes.num_nodes());

    if prefs.coalesce {
        // Group copies by unordered node pair so one edge zeroes all moves
        // between the pair.
        let mut groups: Vec<((NodeId, NodeId), Vec<InstRef>)> = Vec::new();
        for c in copies {
            let key = if c.dst.index() <= c.src.index() {
                (c.dst, c.src)
            } else {
                (c.src, c.dst)
            };
            let site = InstRef {
                block: c.block,
                index: c.index,
            };
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, sites)) => sites.push(site),
                None => groups.push((key, vec![site])),
            }
        }
        for ((a, b), sites) in groups {
            for (me, partner) in [(a, b), (b, a)] {
                if nodes.is_precolored(me) {
                    continue;
                }
                let v = nodes.members(me)[0];
                let (sv, snv) = strengths(cost, v, &sites, prefs);
                rpg.add(
                    me,
                    Preference {
                        kind: PrefKind::Coalesce,
                        target: PrefTarget::Node(partner),
                        strength_vol: sv,
                        strength_nonvol: snv,
                    },
                );
            }
        }
    }

    if prefs.sequential {
        for pair in find_load_pairs(func, target) {
            let (Some(n1), Some(n2)) = (nodes.node_of(pair.dst1), nodes.node_of(pair.dst2))
            else {
                continue;
            };
            if nodes.is_precolored(n1) || nodes.is_precolored(n2) || n1 == n2 {
                continue;
            }
            // Only pair within this universe's class.
            if nodes.node_of(pair.dst1).is_none() {
                continue;
            }
            let (sv1, snv1) = strengths(cost, pair.dst1, &[pair.first], prefs);
            rpg.add(
                n1,
                Preference {
                    kind: PrefKind::SequentialPlus,
                    target: PrefTarget::Node(n2),
                    strength_vol: sv1,
                    strength_nonvol: snv1,
                },
            );
            let (sv2, snv2) = strengths(cost, pair.dst2, &[pair.second], prefs);
            rpg.add(
                n2,
                Preference {
                    kind: PrefKind::SequentialMinus,
                    target: PrefTarget::Node(n1),
                    strength_vol: sv2,
                    strength_nonvol: snv2,
                },
            );
        }
    }

    if prefs.limited {
        if let Some(nbytes) = target.class(nodes.class()).byte_regs() {
            // Collect byte-load destinations with their total frequency-
            // weighted extension saving (one cycle per dishonored load).
            let mut savings: Vec<(NodeId, VReg, i64)> = Vec::new();
            for b in func.block_ids() {
                for (i, inst) in func.block(b).insts.iter().enumerate() {
                    if let Inst::Load8 { dst, .. } = inst {
                        let Some(n) = nodes.node_of(*dst) else { continue };
                        if nodes.is_precolored(n) {
                            continue;
                        }
                        let site = InstRef { block: b, index: i };
                        let save = cost.freq(site) as i64;
                        match savings.iter_mut().find(|(m, _, _)| *m == n) {
                            Some((_, _, acc)) => *acc += save,
                            None => savings.push((n, *dst, save)),
                        }
                    }
                }
            }
            for (n, v, save) in savings {
                let (sv, snv) = strengths(cost, v, &[], prefs);
                rpg.add(
                    n,
                    Preference {
                        kind: PrefKind::Prefers,
                        target: PrefTarget::low_regs(nbytes),
                        strength_vol: sv.saturating_add(save),
                        strength_nonvol: snv.saturating_add(save),
                    },
                );
            }
        }
    }

    if prefs.volatility {
        for n in nodes.live_range_nodes() {
            let v = nodes.members(n)[0];
            let sv = cost.strength_volatile(v, &[]);
            let snv = cost.strength_nonvolatile(v, &[]);
            rpg.add(
                n,
                Preference {
                    kind: PrefKind::Prefers,
                    target: PrefTarget::Volatile,
                    strength_vol: sv,
                    strength_nonvol: i64::MIN,
                },
            );
            rpg.add(
                n,
                Preference {
                    kind: PrefKind::Prefers,
                    target: PrefTarget::NonVolatile,
                    strength_vol: i64::MIN,
                    strength_nonvol: snv,
                },
            );
        }
    }

    rpg.sort_by_strength();
    rpg
}

/// The (volatile, non-volatile) strength pair for a preference on `v`
/// eliminating `zeroed`. With volatility preferences disabled (the "only
/// coalescing" configuration), the `Call_Cost` term is omitted so the two
/// register kinds look identical to the allocator.
fn strengths(
    cost: &CostModel<'_>,
    v: VReg,
    zeroed: &[InstRef],
    prefs: PreferenceSet,
) -> (i64, i64) {
    if prefs.volatility {
        (
            cost.strength_volatile(v, zeroed),
            cost.strength_nonvolatile(v, zeroed),
        )
    } else {
        let s = cost.strength_ignoring_volatility(v, zeroed);
        (s, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_analysis::{Cfg, DefUse, Dominators, Liveness, Loops};
    use pdgc_ir::{FunctionBuilder, RegClass};

    /// A stride-8 paper-like target for the detection tests.
    fn t8() -> TargetDesc {
        TargetDesc::toy(8)
    }

    /// A target whose integer pairs are aligned stride-16 quadwords.
    fn t16() -> TargetDesc {
        use pdgc_target::{ClassSpec, PairRule, PairedLoadRule};
        TargetDesc::builder("stride16")
            .class(
                RegClass::Int,
                ClassSpec::new(8).pair(PairRule::new(PairedLoadRule::Parity, 16).with_align(16)),
            )
            .class(RegClass::Float, ClassSpec::new(8))
            .finish()
            .unwrap()
    }

    #[test]
    fn load_pair_detection_basic() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        let c = b.load(p, 8);
        b.store(a, p, 64);
        b.store(c, p, 72);
        b.ret(None);
        let f = b.finish();
        let pairs = find_load_pairs(&f, &t8());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].dst1, a);
        assert_eq!(pairs[0].dst2, c);
    }

    #[test]
    fn stride_comes_from_the_target_rule() {
        // Loads 16 bytes apart: no candidate on a stride-8 target, one
        // on the stride-16 target.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        let c = b.load(p, 16);
        b.store(a, p, 1 << 20);
        b.store(c, p, (1 << 20) + 8);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t8()).is_empty());
        let pairs = find_load_pairs(&f, &t16());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].dst1, a);
        assert_eq!(pairs[0].dst2, c);
    }

    #[test]
    fn alignment_gates_the_first_word() {
        // The quadword rule of t16 requires the first offset to be a
        // multiple of 16; offset 8 cannot start a pair.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 8);
        let c = b.load(p, 24);
        b.store(a, p, 1 << 20);
        b.store(c, p, (1 << 20) + 8);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t16()).is_empty());
    }

    #[test]
    fn class_without_pair_rule_has_no_candidates() {
        // t16 gives floats no pair rule at all.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.fload(p, 0);
        let c = b.fload(p, 16);
        b.store(a, p, 1 << 20);
        b.store(c, p, (1 << 20) + 8);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t16()).is_empty());
        // On the paper-like target the same floats pair at stride 8.
        let mut b = FunctionBuilder::new("g", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.fload(p, 0);
        let c = b.fload(p, 8);
        b.store(a, p, 1 << 20);
        b.store(c, p, (1 << 20) + 8);
        b.ret(None);
        let f = b.finish();
        assert_eq!(find_load_pairs(&f, &t8()).len(), 1);
    }

    #[test]
    fn load_pair_blocked_by_store_or_call() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        b.store(a, p, 64);
        let c = b.load(p, 8);
        b.store(c, p, 72);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t8()).is_empty());

        let mut b = FunctionBuilder::new("g", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        b.call("h", vec![], None);
        let c = b.load(p, 8);
        let s = b.bin(pdgc_ir::BinOp::Add, a, c);
        b.store(s, p, 64);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t8()).is_empty());
    }

    #[test]
    fn load_pair_blocked_by_base_redef() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        // p redefined via copy to itself is not expressible in SSA builder;
        // emit a raw redefinition.
        b.emit(pdgc_ir::Inst::BinImm {
            op: pdgc_ir::BinOp::Add,
            dst: p,
            lhs: p,
            imm: 0,
        });
        let c = b.load(p, 8);
        let s = b.bin(pdgc_ir::BinOp::Add, a, c);
        b.store(s, p, 64);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t8()).is_empty());
    }

    #[test]
    fn wrong_stride_not_paired() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        let a = b.load(p, 0);
        let c = b.load(p, 16);
        let s = b.bin(pdgc_ir::BinOp::Add, a, c);
        b.store(s, p, 64);
        b.ret(None);
        let f = b.finish();
        assert!(find_load_pairs(&f, &t8()).is_empty());
    }

    #[test]
    fn rpg_build_produces_expected_edge_kinds() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.load(p, 0);
        let c = b.load(p, 8);
        let s = b.bin(pdgc_ir::BinOp::Add, a, c);
        let d = b.copy(s);
        b.ret(Some(d));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        let du = DefUse::compute(&f);
        let cc = lv.call_crossings(&f);
        let cost = CostModel::new(&f, &du, &loops, &cc);
        let pinned = vec![None; f.num_vregs()];
        let nodes = NodeMap::build(&f, &TargetDesc::toy(8), RegClass::Int, &pinned);
        let copies = crate::build::collect_copies(&f, &loops, &nodes);
        let rpg = build_rpg(&f, &nodes, &cost, &copies, PreferenceSet::full(), &TargetDesc::toy(8));

        let na = nodes.node_of(a).unwrap();
        let nc = nodes.node_of(c).unwrap();
        let ns = nodes.node_of(s).unwrap();
        let nd = nodes.node_of(d).unwrap();

        // a: sequential-plus toward c, plus the two Prefers edges.
        assert!(rpg
            .prefs(na)
            .iter()
            .any(|p| p.kind == PrefKind::SequentialPlus && p.target == PrefTarget::Node(nc)));
        assert!(rpg
            .prefs(nc)
            .iter()
            .any(|p| p.kind == PrefKind::SequentialMinus && p.target == PrefTarget::Node(na)));
        // d and s are copy-related in both directions.
        assert!(rpg
            .prefs(nd)
            .iter()
            .any(|p| p.kind == PrefKind::Coalesce && p.target == PrefTarget::Node(ns)));
        assert!(rpg
            .prefs(ns)
            .iter()
            .any(|p| p.kind == PrefKind::Coalesce && p.target == PrefTarget::Node(nd)));
        // Every live range got volatility edges.
        assert!(rpg
            .prefs(na)
            .iter()
            .any(|p| p.kind == PrefKind::Prefers && p.target == PrefTarget::Volatile));
        // Sorted strongest-first.
        let strengths: Vec<i64> = rpg.prefs(na).iter().map(|p| p.best_strength()).collect();
        let mut sorted = strengths.clone();
        sorted.sort_by_key(|s| std::cmp::Reverse(*s));
        assert_eq!(strengths, sorted);
    }

    #[test]
    fn coalescing_only_suppresses_other_kinds() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.load(p, 0);
        let c = b.load(p, 8);
        let s = b.bin(pdgc_ir::BinOp::Add, a, c);
        b.ret(Some(s));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        let du = DefUse::compute(&f);
        let cc = lv.call_crossings(&f);
        let cost = CostModel::new(&f, &du, &loops, &cc);
        let pinned = vec![None; f.num_vregs()];
        let nodes = NodeMap::build(&f, &TargetDesc::toy(8), RegClass::Int, &pinned);
        let copies = crate::build::collect_copies(&f, &loops, &nodes);
        let rpg = build_rpg(&f, &nodes, &cost, &copies, PreferenceSet::coalescing_only(), &TargetDesc::toy(8));
        for n in nodes.live_range_nodes() {
            assert!(rpg
                .prefs(n)
                .iter()
                .all(|p| p.kind == PrefKind::Coalesce));
        }
    }
}
