//! The interference graph.
//!
//! Chaitin-style: nodes are allocation nodes (precolored registers and live
//! ranges), edges join nodes that are simultaneously live. The graph
//! supports the three mutations the allocators need:
//!
//! * **edge insertion** during construction;
//! * **coalescing** — merging one node into another (aggressive and
//!   conservative coalescers in [`crate::baselines`] use this);
//! * **removal marks** with live degree tracking, driving simplification.

use crate::node::NodeId;
use pdgc_analysis::BitSet;

/// An undirected interference graph over a dense node universe.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    num_phys: usize,
    matrix: Vec<BitSet>,
    adj: Vec<Vec<NodeId>>,
    alias: Vec<NodeId>,
    merged: Vec<bool>,
    removed: Vec<bool>,
    degree: Vec<usize>,
}

impl InterferenceGraph {
    /// Creates a graph with `n` nodes, the first `num_phys` of which are
    /// precolored. Distinct precolored nodes are made mutually interfering.
    pub fn new(n: usize, num_phys: usize) -> Self {
        let mut g = InterferenceGraph {
            num_phys,
            matrix: vec![BitSet::new(n); n],
            adj: vec![Vec::new(); n],
            alias: (0..n).map(NodeId::new).collect(),
            merged: vec![false; n],
            removed: vec![false; n],
            degree: vec![0; n],
        };
        for a in 0..num_phys {
            for b in (a + 1)..num_phys {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        g
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.matrix.len()
    }

    /// Number of precolored nodes.
    pub fn num_phys(&self) -> usize {
        self.num_phys
    }

    /// Whether `n` is precolored.
    pub fn is_precolored(&self, n: NodeId) -> bool {
        n.index() < self.num_phys
    }

    /// The representative of `n` after coalescing (`n` itself if unmerged).
    pub fn rep(&self, n: NodeId) -> NodeId {
        let mut cur = n;
        while self.merged[cur.index()] {
            cur = self.alias[cur.index()];
        }
        cur
    }

    /// Whether `n` has been merged into another node.
    pub fn is_merged(&self, n: NodeId) -> bool {
        self.merged[n.index()]
    }

    /// Whether `n` is currently removed (simplified away).
    pub fn is_removed(&self, n: NodeId) -> bool {
        self.removed[n.index()]
    }

    /// Adds an interference edge between the representatives of `a` and
    /// `b`. Self-edges are ignored. Returns `true` if the edge is new.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.rep(a), self.rep(b));
        if a == b || self.matrix[a.index()].contains(b.index()) {
            return false;
        }
        self.matrix[a.index()].insert(b.index());
        self.matrix[b.index()].insert(a.index());
        self.adj[a.index()].push(b);
        self.adj[b.index()].push(a);
        if !self.removed[b.index()] {
            self.degree[a.index()] += 1;
        }
        if !self.removed[a.index()] {
            self.degree[b.index()] += 1;
        }
        true
    }

    /// Whether the representatives of `a` and `b` interfere.
    pub fn interferes(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.rep(a), self.rep(b));
        self.matrix[a.index()].contains(b.index())
    }

    /// The current degree of `n` — the number of distinct, non-removed
    /// neighbors. Meaningless for merged or removed nodes.
    pub fn degree(&self, n: NodeId) -> usize {
        self.degree[self.rep(n).index()]
    }

    /// The distinct current neighbors of `n`'s representative (merged
    /// entries resolved, removed nodes *included*).
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let n = self.rep(n);
        let mut seen = BitSet::new(self.num_nodes());
        let mut out = Vec::with_capacity(self.adj[n.index()].len());
        for &x in &self.adj[n.index()] {
            let x = self.rep(x);
            if x != n && seen.insert(x.index()) {
                out.push(x);
            }
        }
        out
    }

    /// Like [`neighbors`](Self::neighbors), skipping removed nodes.
    pub fn live_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.neighbors(n)
            .into_iter()
            .filter(|&x| !self.removed[x.index()])
            .collect()
    }

    /// Merges node `b` into node `a` (coalescing). The merged node's
    /// interferences become the union of both. `b`'s queries afterwards
    /// resolve through [`rep`](Self::rep).
    ///
    /// # Panics
    ///
    /// Panics if the nodes interfere, are equal, or `b` is precolored.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = (self.rep(a), self.rep(b));
        assert_ne!(a, b, "merging a node with itself");
        assert!(!self.interferes(a, b), "merging interfering nodes");
        assert!(!self.is_precolored(b), "merging a precolored node away");
        assert!(!self.removed[a.index()] && !self.removed[b.index()]);
        let b_neighbors = self.neighbors(b);
        for &x in &b_neighbors {
            self.add_edge(a, x);
        }
        // The edge to `b` no longer counts toward its neighbors' degrees.
        for &x in &b_neighbors {
            if !self.removed[b.index()] {
                self.degree[x.index()] -= 1;
            }
        }
        self.merged[b.index()] = true;
        self.alias[b.index()] = a;
    }

    /// Marks `n` as removed (simplified), decrementing neighbor degrees.
    ///
    /// # Panics
    ///
    /// Panics if `n` is precolored, merged, or already removed.
    pub fn remove(&mut self, n: NodeId) {
        let n = self.rep(n);
        assert!(!self.is_precolored(n), "removing precolored {n}");
        assert!(!self.removed[n.index()], "removing {n} twice");
        self.removed[n.index()] = true;
        for x in self.neighbors(n) {
            if !self.removed[x.index()] {
                self.degree[x.index()] -= 1;
            }
        }
    }

    /// Clears all removal marks and recomputes degrees (used between the
    /// simplify and select phases, which work on the full graph).
    pub fn restore_all(&mut self) {
        self.removed.iter_mut().for_each(|r| *r = false);
        for i in 0..self.num_nodes() {
            let n = NodeId::new(i);
            if self.merged[i] {
                continue;
            }
            self.degree[i] = self.neighbors(n).len();
        }
    }

    /// The active (unmerged, unremoved) live-range nodes.
    pub fn active_live_ranges(&self) -> Vec<NodeId> {
        (self.num_phys..self.num_nodes())
            .map(NodeId::new)
            .filter(|&n| !self.merged[n.index()] && !self.removed[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn precolored_mutually_interfere() {
        let g = InterferenceGraph::new(5, 3);
        assert!(g.interferes(n(0), n(1)));
        assert!(g.interferes(n(1), n(2)));
        assert!(!g.interferes(n(0), n(3)));
        assert_eq!(g.degree(n(0)), 2);
    }

    #[test]
    fn add_edge_and_degree() {
        let mut g = InterferenceGraph::new(4, 0);
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(1), n(0)));
        assert!(g.interferes(n(0), n(1)));
        assert_eq!(g.degree(n(0)), 1);
        assert_eq!(g.neighbors(n(0)), vec![n(1)]);
    }

    #[test]
    fn remove_updates_degrees() {
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        assert_eq!(g.degree(n(0)), 2);
        g.remove(n(1));
        assert_eq!(g.degree(n(0)), 1);
        assert!(g.is_removed(n(1)));
        assert_eq!(g.live_neighbors(n(0)), vec![n(2)]);
        assert_eq!(g.neighbors(n(0)).len(), 2);
        g.restore_all();
        assert!(!g.is_removed(n(1)));
        assert_eq!(g.degree(n(0)), 2);
    }

    #[test]
    fn merge_unions_neighbors() {
        let mut g = InterferenceGraph::new(5, 0);
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(4));
        g.add_edge(n(1), n(4));
        // Merge 1 into 0: 0 gains 3; 4's degree drops from 2 to 1.
        g.merge(n(0), n(1));
        assert_eq!(g.rep(n(1)), n(0));
        assert!(g.is_merged(n(1)));
        assert!(g.interferes(n(0), n(3)));
        assert!(g.interferes(n(1), n(2))); // resolves through rep
        let mut nb = g.neighbors(n(0));
        nb.sort();
        assert_eq!(nb, vec![n(2), n(3), n(4)]);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.degree(n(4)), 1);
        assert_eq!(g.degree(n(2)), 1);
        assert_eq!(g.active_live_ranges(), vec![n(0), n(2), n(3), n(4)]);
    }

    #[test]
    #[should_panic(expected = "interfering")]
    fn merge_interfering_panics() {
        let mut g = InterferenceGraph::new(2, 0);
        g.add_edge(n(0), n(1));
        g.merge(n(0), n(1));
    }

    #[test]
    fn merge_into_precolored() {
        let mut g = InterferenceGraph::new(4, 2);
        g.add_edge(n(2), n(3));
        g.merge(n(0), n(2));
        assert_eq!(g.rep(n(2)), n(0));
        assert!(g.interferes(n(0), n(3)));
        // Precolored-precolored edge still present.
        assert!(g.interferes(n(0), n(1)));
    }

    #[test]
    fn chained_merges_resolve() {
        let mut g = InterferenceGraph::new(4, 0);
        g.merge(n(0), n(1));
        g.merge(n(2), n(0));
        assert_eq!(g.rep(n(1)), n(2));
        assert_eq!(g.rep(n(0)), n(2));
        assert_eq!(g.active_live_ranges(), vec![n(2), n(3)]);
    }
}
