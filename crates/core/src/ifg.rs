//! The interference graph.
//!
//! Chaitin-style: nodes are allocation nodes (precolored registers and live
//! ranges), edges join nodes that are simultaneously live. The graph
//! supports the three mutations the allocators need:
//!
//! * **edge insertion** during construction;
//! * **coalescing** — merging one node into another (aggressive and
//!   conservative coalescers in [`crate::baselines`] use this);
//! * **removal marks** with live degree tracking, driving simplification.
//!
//! # Adjacency representation
//!
//! The per-node adjacency lists are kept **canonical** at all times: for an
//! unmerged node `n`, `adj[n]` holds exactly the distinct current
//! representatives adjacent to `n` — no duplicates, no stale merged
//! entries. [`add_edge`](Self::add_edge) inserts canonically and
//! [`merge`](Self::merge) rewrites the neighbors' lists in place, so
//! [`neighbors_slice`](Self::neighbors_slice) and
//! [`live_neighbors_iter`](Self::live_neighbors_iter) are allocation-free:
//! the select and simplify hot paths iterate adjacency directly instead of
//! materializing a fresh `Vec` + seen-set per call.
//!
//! # Degree accounting
//!
//! `degree[n]` of a **live** (unmerged, unremoved) node is the number of
//! its live neighbors. The degree of a **removed** node is *frozen* at its
//! removal-time value: no mutation may touch it until
//! [`restore_all`](Self::restore_all) recomputes every degree from the
//! adjacency lists. This freeze is what a future partial-restore needs to
//! stay correct, and it is enforced by the degree-accounting property test
//! in `tests/properties.rs`.

use crate::node::NodeId;
use pdgc_arena::{NestedPool, VecPool};

/// Resettable scratch pools for [`InterferenceGraph::new_in`].
///
/// The bit matrix is the single largest per-function allocation in the
/// pipeline (`n²` bits); the adjacency lists are the most numerous. Both
/// come out of these pools and go back via
/// [`InterferenceGraph::recycle`], so a worker colors a stream of
/// functions with a steady-state allocation count of zero here.
#[derive(Debug, Default)]
pub struct IfgScratch {
    words: VecPool<u64>,
    adj: NestedPool<NodeId>,
    alias: VecPool<NodeId>,
    flags: VecPool<bool>,
    degree: VecPool<usize>,
}

impl IfgScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pooled bit-matrix buffers (diagnostic; used by reuse
    /// tests).
    pub fn pooled_matrices(&self) -> usize {
        self.words.pooled()
    }
}

/// An undirected interference graph over a dense node universe.
///
/// The bit matrix is one flat row-major `Vec<u64>` (a single allocation
/// bump-style, rather than one `BitSet` per row) so pooled reuse is a
/// single buffer swap and row probes stay cache-local.
#[derive(Clone, Debug)]
pub struct InterferenceGraph {
    num_phys: usize,
    num_nodes: usize,
    /// Words per bit-matrix row.
    stride: usize,
    /// `num_nodes * stride` words; bit `b` of row `a` means `a` ↔ `b`.
    words: Vec<u64>,
    adj: Vec<Vec<NodeId>>,
    alias: Vec<NodeId>,
    merged: Vec<bool>,
    removed: Vec<bool>,
    degree: Vec<usize>,
}

impl InterferenceGraph {
    /// Creates a graph with `n` nodes, the first `num_phys` of which are
    /// precolored. Distinct precolored nodes are made mutually interfering.
    pub fn new(n: usize, num_phys: usize) -> Self {
        Self::new_in(n, num_phys, &mut IfgScratch::default())
    }

    /// Like [`InterferenceGraph::new`], drawing all storage from pooled
    /// scratch. Return the graph with [`InterferenceGraph::recycle`] when
    /// done to keep its buffers pooled.
    pub fn new_in(n: usize, num_phys: usize, scratch: &mut IfgScratch) -> Self {
        let stride = n.div_ceil(64);
        let mut alias = scratch.alias.take();
        alias.extend((0..n).map(NodeId::new));
        let mut g = InterferenceGraph {
            num_phys,
            num_nodes: n,
            stride,
            words: scratch.words.take_filled(n * stride, 0),
            adj: scratch.adj.take(n),
            alias,
            merged: scratch.flags.take_filled(n, false),
            removed: scratch.flags.take_filled(n, false),
            degree: scratch.degree.take_filled(n, 0),
        };
        for a in 0..num_phys {
            for b in (a + 1)..num_phys {
                g.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        g
    }

    /// Returns this graph's storage to `scratch` for reuse.
    pub fn recycle(self, scratch: &mut IfgScratch) {
        scratch.words.put(self.words);
        scratch.adj.put(self.adj);
        scratch.alias.put(self.alias);
        scratch.flags.put(self.merged);
        scratch.flags.put(self.removed);
        scratch.degree.put(self.degree);
    }

    /// Number of nodes in the universe.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Whether matrix bit (`a`, `b`) is set.
    fn bit(&self, a: usize, b: usize) -> bool {
        self.words[a * self.stride + b / 64] & (1 << (b % 64)) != 0
    }

    /// Sets matrix bit (`a`, `b`).
    fn set_bit(&mut self, a: usize, b: usize) {
        self.words[a * self.stride + b / 64] |= 1 << (b % 64);
    }

    /// Number of precolored nodes.
    pub fn num_phys(&self) -> usize {
        self.num_phys
    }

    /// Whether `n` is precolored.
    pub fn is_precolored(&self, n: NodeId) -> bool {
        n.index() < self.num_phys
    }

    /// The representative of `n` after coalescing (`n` itself if unmerged).
    pub fn rep(&self, n: NodeId) -> NodeId {
        let mut cur = n;
        while self.merged[cur.index()] {
            cur = self.alias[cur.index()];
        }
        cur
    }

    /// Whether `n` has been merged into another node.
    pub fn is_merged(&self, n: NodeId) -> bool {
        self.merged[n.index()]
    }

    /// Whether `n` is currently removed (simplified away).
    pub fn is_removed(&self, n: NodeId) -> bool {
        self.removed[n.index()]
    }

    /// Adds an interference edge between the representatives of `a` and
    /// `b`. Self-edges are ignored. Returns `true` if the edge is new.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.rep(a), self.rep(b));
        if a == b || self.bit(a.index(), b.index()) {
            return false;
        }
        self.set_bit(a.index(), b.index());
        self.set_bit(b.index(), a.index());
        self.adj[a.index()].push(b);
        self.adj[b.index()].push(a);
        // Degrees are maintained for live nodes only; a removed endpoint
        // neither counts toward the other's degree nor has its own frozen
        // degree touched.
        if !self.removed[a.index()] && !self.removed[b.index()] {
            self.degree[a.index()] += 1;
            self.degree[b.index()] += 1;
        }
        true
    }

    /// Whether the representatives of `a` and `b` interfere.
    pub fn interferes(&self, a: NodeId, b: NodeId) -> bool {
        let (a, b) = (self.rep(a), self.rep(b));
        self.bit(a.index(), b.index())
    }

    /// The current degree of `n` — the number of distinct, non-removed
    /// neighbors. For a removed node this is frozen at its removal-time
    /// value; meaningless for merged nodes.
    pub fn degree(&self, n: NodeId) -> usize {
        self.degree[self.rep(n).index()]
    }

    /// The distinct current neighbors of `n`'s representative as a slice
    /// (merged entries already resolved, removed nodes *included*).
    /// Allocation-free; the canonical adjacency invariant guarantees the
    /// slice has no duplicates and no merged entries.
    pub fn neighbors_slice(&self, n: NodeId) -> &[NodeId] {
        &self.adj[self.rep(n).index()]
    }

    /// Iterates the non-removed neighbors of `n`'s representative without
    /// allocating.
    pub fn live_neighbors_iter(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors_slice(n)
            .iter()
            .copied()
            .filter(|&x| !self.removed[x.index()])
    }

    /// The distinct current neighbors of `n`'s representative (merged
    /// entries resolved, removed nodes *included*). Prefer
    /// [`neighbors_slice`](Self::neighbors_slice) on hot paths — this
    /// allocates a fresh `Vec` for callers that need ownership.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.neighbors_slice(n).to_vec()
    }

    /// Like [`neighbors`](Self::neighbors), skipping removed nodes.
    /// Prefer [`live_neighbors_iter`](Self::live_neighbors_iter) on hot
    /// paths.
    pub fn live_neighbors(&self, n: NodeId) -> Vec<NodeId> {
        self.live_neighbors_iter(n).collect()
    }

    /// Merges node `b` into node `a` (coalescing). The merged node's
    /// interferences become the union of both. `b`'s queries afterwards
    /// resolve through [`rep`](Self::rep).
    ///
    /// Degree accounting: a neighbor `x` shared by `a` and `b` loses one
    /// distinct neighbor (the `a`/`b` pair collapses), a neighbor of `b`
    /// alone swaps `b` for `a` (count unchanged) — and in both cases the
    /// degree of a *removed* `x` is left frozen.
    ///
    /// # Panics
    ///
    /// Panics if the nodes interfere, are equal, either is removed, or `b`
    /// is precolored.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        let (a, b) = (self.rep(a), self.rep(b));
        assert_ne!(a, b, "merging a node with itself");
        assert!(!self.interferes(a, b), "merging interfering nodes");
        assert!(!self.is_precolored(b), "merging a precolored node away");
        assert!(!self.removed[a.index()] && !self.removed[b.index()]);
        // Audit note (mem::take scratch pattern): taking `b`'s list is
        // intentional — a merged node's adjacency must stay empty so the
        // canonical-adjacency invariant holds. No fallible path runs before
        // the buffer is restored (cleared) below, and restoring it keeps
        // its capacity alive for pooled reuse instead of dropping it.
        let mut b_adj = std::mem::take(&mut self.adj[b.index()]);
        for &x in &b_adj {
            let pos = self.adj[x.index()]
                .iter()
                .position(|&y| y == b)
                .expect("canonical adjacency is symmetric");
            if self.bit(a.index(), x.index()) {
                // `x` was adjacent to both: drop the `b` entry; `x` has one
                // fewer distinct neighbor (if `x` is live — a removed
                // node's degree stays frozen).
                self.adj[x.index()].remove(pos);
                if !self.removed[x.index()] {
                    self.degree[x.index()] -= 1;
                }
            } else {
                // `x` was adjacent to `b` alone: splice `a` into `b`'s
                // slot. `x`'s distinct-neighbor count is unchanged; `a`
                // gains a neighbor (counted only if `x` is live).
                self.adj[x.index()][pos] = a;
                self.set_bit(a.index(), x.index());
                self.set_bit(x.index(), a.index());
                self.adj[a.index()].push(x);
                if !self.removed[x.index()] {
                    self.degree[a.index()] += 1;
                }
            }
        }
        b_adj.clear();
        self.adj[b.index()] = b_adj;
        self.merged[b.index()] = true;
        self.alias[b.index()] = a;
    }

    /// Marks `n` as removed (simplified), decrementing live neighbors'
    /// degrees. `n`'s own degree is frozen at its current value.
    ///
    /// # Panics
    ///
    /// Panics if `n` is precolored, merged, or already removed.
    pub fn remove(&mut self, n: NodeId) {
        let n = self.rep(n);
        assert!(!self.is_precolored(n), "removing precolored {n}");
        assert!(!self.removed[n.index()], "removing {n} twice");
        self.removed[n.index()] = true;
        for j in 0..self.adj[n.index()].len() {
            let x = self.adj[n.index()][j];
            if !self.removed[x.index()] {
                self.degree[x.index()] -= 1;
            }
        }
    }

    /// Clears all removal marks and recomputes degrees (used between the
    /// simplify and select phases, which work on the full graph).
    pub fn restore_all(&mut self) {
        self.removed.iter_mut().for_each(|r| *r = false);
        // The recompute below counts *every* adjacency entry, which is
        // only the live-neighbor count because the clearing loop above ran
        // first. A partial-restore refactor that leaves any node marked
        // removed here would silently corrupt every degree.
        debug_assert!(
            self.removed.iter().all(|r| !*r),
            "restore_all: recomputing degrees while nodes are still removed"
        );
        for i in 0..self.num_nodes() {
            if self.merged[i] {
                continue;
            }
            self.degree[i] = self.adj[i].len();
        }
    }

    /// The active (unmerged, unremoved) live-range nodes.
    pub fn active_live_ranges(&self) -> Vec<NodeId> {
        (self.num_phys..self.num_nodes())
            .map(NodeId::new)
            .filter(|&n| !self.merged[n.index()] && !self.removed[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn precolored_mutually_interfere() {
        let g = InterferenceGraph::new(5, 3);
        assert!(g.interferes(n(0), n(1)));
        assert!(g.interferes(n(1), n(2)));
        assert!(!g.interferes(n(0), n(3)));
        assert_eq!(g.degree(n(0)), 2);
    }

    #[test]
    fn add_edge_and_degree() {
        let mut g = InterferenceGraph::new(4, 0);
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(1), n(0)));
        assert!(g.interferes(n(0), n(1)));
        assert_eq!(g.degree(n(0)), 1);
        assert_eq!(g.neighbors(n(0)), vec![n(1)]);
        assert_eq!(g.neighbors_slice(n(0)), &[n(1)]);
    }

    #[test]
    fn remove_updates_degrees() {
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        assert_eq!(g.degree(n(0)), 2);
        g.remove(n(1));
        assert_eq!(g.degree(n(0)), 1);
        assert!(g.is_removed(n(1)));
        assert_eq!(g.live_neighbors(n(0)), vec![n(2)]);
        assert_eq!(g.neighbors(n(0)).len(), 2);
        assert_eq!(g.live_neighbors_iter(n(0)).count(), 1);
        g.restore_all();
        assert!(!g.is_removed(n(1)));
        assert_eq!(g.degree(n(0)), 2);
    }

    #[test]
    fn merge_unions_neighbors() {
        let mut g = InterferenceGraph::new(5, 0);
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(4));
        g.add_edge(n(1), n(4));
        // Merge 1 into 0: 0 gains 3; 4's degree drops from 2 to 1.
        g.merge(n(0), n(1));
        assert_eq!(g.rep(n(1)), n(0));
        assert!(g.is_merged(n(1)));
        assert!(g.interferes(n(0), n(3)));
        assert!(g.interferes(n(1), n(2))); // resolves through rep
        let mut nb = g.neighbors(n(0));
        nb.sort();
        assert_eq!(nb, vec![n(2), n(3), n(4)]);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.degree(n(4)), 1);
        assert_eq!(g.degree(n(2)), 1);
        assert_eq!(g.active_live_ranges(), vec![n(0), n(2), n(3), n(4)]);
        // Canonical adjacency: 4's list resolved 1 → 0 in place, no dups.
        assert_eq!(g.neighbors_slice(n(4)), &[n(0)]);
    }

    #[test]
    fn merge_leaves_removed_neighbor_degree_frozen() {
        // 2 is adjacent to both 0 and 1; 3 is adjacent to 1 alone. Remove
        // both, then merge 1 into 0: the frozen degrees must not move.
        let mut g = InterferenceGraph::new(4, 0);
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(2));
        g.add_edge(n(1), n(3));
        g.remove(n(2));
        g.remove(n(3));
        let (d2, d3) = (g.degree(n(2)), g.degree(n(3)));
        g.merge(n(0), n(1));
        assert_eq!(g.degree(n(2)), d2, "shared removed neighbor mutated");
        assert_eq!(g.degree(n(3)), d3, "spliced removed neighbor mutated");
        // Live accounting still holds for the representative: its only
        // live neighbor count excludes the removed 2 and 3.
        assert_eq!(g.degree(n(0)), g.live_neighbors(n(0)).len());
    }

    #[test]
    fn add_edge_to_removed_node_freezes_its_degree() {
        let mut g = InterferenceGraph::new(3, 0);
        g.add_edge(n(0), n(1));
        g.remove(n(1));
        let frozen = g.degree(n(1));
        assert!(g.add_edge(n(1), n(2)));
        assert_eq!(g.degree(n(1)), frozen);
        // The live endpoint gains no live neighbor either.
        assert_eq!(g.degree(n(2)), 0);
        g.restore_all();
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.degree(n(2)), 1);
    }

    #[test]
    #[should_panic(expected = "interfering")]
    fn merge_interfering_panics() {
        let mut g = InterferenceGraph::new(2, 0);
        g.add_edge(n(0), n(1));
        g.merge(n(0), n(1));
    }

    #[test]
    fn merge_into_precolored() {
        let mut g = InterferenceGraph::new(4, 2);
        g.add_edge(n(2), n(3));
        g.merge(n(0), n(2));
        assert_eq!(g.rep(n(2)), n(0));
        assert!(g.interferes(n(0), n(3)));
        // Precolored-precolored edge still present.
        assert!(g.interferes(n(0), n(1)));
    }

    #[test]
    fn chained_merges_resolve() {
        let mut g = InterferenceGraph::new(4, 0);
        g.merge(n(0), n(1));
        g.merge(n(2), n(0));
        assert_eq!(g.rep(n(1)), n(2));
        assert_eq!(g.rep(n(0)), n(2));
        assert_eq!(g.active_live_ranges(), vec![n(2), n(3)]);
    }

    #[test]
    fn merge_keeps_merged_adjacency_capacity() {
        let mut g = InterferenceGraph::new(6, 0);
        g.add_edge(n(1), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(1), n(4));
        g.merge(n(0), n(1));
        // The merged node's list is empty (canonical invariant) but its
        // allocation must survive for pooled reuse.
        assert!(g.neighbors_slice(n(1)).is_empty() || g.rep(n(1)) == n(0));
        assert!(g.adj[1].is_empty());
        assert!(g.adj[1].capacity() >= 3, "merge dropped the taken buffer");
    }

    #[test]
    fn scratch_reuse_matches_fresh_graph() {
        let mut scratch = IfgScratch::new();
        let build = |scratch: &mut IfgScratch| {
            let mut g = InterferenceGraph::new_in(5, 2, scratch);
            g.add_edge(n(2), n(3));
            g.add_edge(n(3), n(4));
            g.remove(n(3));
            g
        };
        let g1 = build(&mut scratch);
        let deg1: Vec<usize> = (0..5).map(|i| g1.degree(n(i))).collect();
        g1.recycle(&mut scratch);
        assert_eq!(scratch.pooled_matrices(), 1);
        // Second build reuses the pooled buffers and must behave fresh.
        let g2 = build(&mut scratch);
        assert_eq!(scratch.pooled_matrices(), 0);
        let deg2: Vec<usize> = (0..5).map(|i| g2.degree(n(i))).collect();
        assert_eq!(deg1, deg2);
        assert!(g2.interferes(n(0), n(1)));
        assert!(g2.interferes(n(2), n(3)));
        assert!(!g2.interferes(n(2), n(4)));
        assert!(g2.is_removed(n(3)));
    }

    #[test]
    fn restore_all_requires_full_clear_and_recomputes() {
        let mut g = InterferenceGraph::new(4, 0);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.remove(n(1));
        g.remove(n(2));
        g.restore_all();
        for i in 0..4 {
            assert!(!g.is_removed(n(i)));
            assert_eq!(g.degree(n(i)), g.live_neighbors(n(i)).len());
        }
    }
}
