//! Per-worker phase scratch.
//!
//! One [`PhaseScratch`] aggregates every pooled buffer the pipeline needs —
//! liveness sets, the IFG bit matrix and adjacency pools, node-universe
//! storage, simplify/select working sets, and the checker's internals. A
//! batch worker allocates one per thread, threads it through
//! [`crate::pipeline::run_pipeline_scratch`] for every function it
//! processes, and after the first few functions warm the pools up the
//! steady state performs (near) zero heap allocation per function.
//!
//! Ownership contract: phases *take* buffers out of the pools (leaving the
//! pool entry empty) and either return them on their own (`recycle`
//! methods on `Liveness`, `NodeMap`, `InterferenceGraph`, `SelectResult`,
//! …) or hand them back inside a result the pipeline recycles. Dropping a
//! taken buffer is never unsound — the pool just re-allocates next time —
//! so error paths need no cleanup; the pools only ever hold *reset*
//! (logically empty, capacity-retaining) buffers. See `DESIGN.md` §6g.

use crate::build::BuildScratch;
use crate::cpg::CpgScratch;
use crate::ifg::IfgScratch;
use crate::node::NodeScratch;
use crate::select::SelectScratch;
use crate::simplify::SimplifyScratch;
use pdgc_analysis::LivenessScratch;
use pdgc_arena::{NestedPool, VecPool};
use pdgc_check::CheckScratch;
use pdgc_ir::VReg;
use pdgc_obs::MetricsRegistry;
use pdgc_target::{MInst, PhysReg};

/// Scratch for one class-strategy invocation: the simplify and select
/// phases' working sets.
///
/// Lives inside [`crate::pipeline::ClassCtx`]; a scratch-aware strategy
/// `std::mem::take`s it at the top of `allocate_class` and moves it back
/// before returning, so the pooled buffers survive into the next class.
#[derive(Debug, Default)]
pub struct ClassScratch {
    /// Simplify worklist heap and stack/spill-list pools.
    pub simplify: SimplifyScratch,
    /// CPG storage and construction temporaries.
    pub cpg: CpgScratch,
    /// Select queues, differential caches, and assignment pools.
    pub select: SelectScratch,
}

impl ClassScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Everything one worker reuses across functions.
#[derive(Debug, Default)]
pub struct PhaseScratch {
    /// Liveness bit-set and call-crossing pools.
    pub liveness: LivenessScratch,
    /// Interference-graph bit matrix and adjacency pools.
    pub ifg: IfgScratch,
    /// Node-universe (vreg→node, members) pools.
    pub node: NodeScratch,
    /// IFG-construction temporaries and the copy-record pool.
    pub build: BuildScratch,
    /// Per-class simplify/select scratch.
    pub class: ClassScratch,
    /// Post-allocation checker scratch.
    pub check: CheckScratch,
    /// Pool for per-node spill-cost vectors.
    pub costs: VecPool<u64>,
    /// Pool for per-node / per-vreg flag vectors.
    pub flags: VecPool<bool>,
    /// Pool for vreg work lists (the round's spill set).
    pub vregs: VecPool<VReg>,
    /// Pool for per-vreg assignment vectors. Unlike the other pools this
    /// one feeds a *result*: the final round's vector escapes into
    /// [`crate::pipeline::AllocOutput`] and comes back through
    /// [`crate::pipeline::AllocOutput::recycle`] once the caller has
    /// consumed the output. Abandoned rounds (spill, iterate) return
    /// theirs directly.
    pub assignments: VecPool<Option<PhysReg>>,
    /// Pool for rewritten machine-code block storage
    /// (`MachFunction::blocks`), the other result buffer
    /// [`crate::pipeline::AllocOutput::recycle`] brings home.
    pub mach_blocks: NestedPool<MInst>,
    /// Always-on metrics accumulated by every function pushed through
    /// this scratch: per-phase latency histograms plus the
    /// allocation-quality scorecard. Fixed-size arrays — recording never
    /// allocates. Batch workers drain this per function
    /// ([`MetricsRegistry::drain_into`]) and merge at the slot-keyed
    /// join, so totals are bit-identical across job counts.
    pub metrics: MetricsRegistry,
}

impl PhaseScratch {
    /// Creates an empty scratch; the pools warm up over the first few
    /// functions pushed through it.
    pub fn new() -> Self {
        Self::default()
    }
}
