//! Graphviz DOT renderings of the allocator's three graphs, for the
//! per-round dump sink: a select decision recorded in a trace can be
//! replayed against the exact interference, preference, and precedence
//! graphs that produced it.
//!
//! Node labels use the allocation-node index (`n4`) plus the member vregs
//! (`v7`) or the physical register for precolored nodes, matching the
//! `node` / `members` fields of decision events.

use crate::cpg::Cpg;
use crate::ifg::InterferenceGraph;
use crate::node::{NodeId, NodeMap};
use crate::rpg::{PrefKind, PrefTarget, Rpg};
use std::fmt::Write as _;

fn node_label(nodes: &NodeMap, n: NodeId) -> String {
    if nodes.is_precolored(n) {
        format!("n{} ({})", n.index(), nodes.phys_reg(n))
    } else {
        let members: Vec<String> = nodes.members(n).iter().map(|v| format!("v{}", v.index())).collect();
        format!("n{} [{}]", n.index(), members.join(","))
    }
}

fn emit_nodes(buf: &mut String, nodes: &NodeMap, include: impl Fn(NodeId) -> bool) {
    for n in nodes.all_nodes() {
        if !include(n) {
            continue;
        }
        let shape = if nodes.is_precolored(n) { "box" } else { "ellipse" };
        let _ = writeln!(
            buf,
            "  n{} [label=\"{}\", shape={shape}];",
            n.index(),
            node_label(nodes, n)
        );
    }
}

/// Renders the interference graph (undirected; merged nodes collapse into
/// their representative, removed nodes are skipped).
pub fn ifg_to_dot(ifg: &InterferenceGraph, nodes: &NodeMap) -> String {
    let mut buf = String::from("graph ifg {\n");
    emit_nodes(&mut buf, nodes, |n| !ifg.is_merged(n));
    for i in 0..ifg.num_nodes() {
        let n = NodeId::new(i);
        if ifg.is_merged(n) {
            continue;
        }
        for m in ifg.neighbors(n) {
            if m.index() > i {
                let _ = writeln!(buf, "  n{} -- n{};", i, m.index());
            }
        }
    }
    buf.push_str("}\n");
    buf
}

/// Renders the Register Preference Graph: one directed edge per
/// preference, labeled `kind s=vol/nonvol`.
pub fn rpg_to_dot(rpg: &Rpg, nodes: &NodeMap) -> String {
    let mut buf = String::from("digraph rpg {\n");
    emit_nodes(&mut buf, nodes, |_| true);
    let show = |s: i64| {
        if s == i64::MIN {
            "-inf".to_string()
        } else {
            s.to_string()
        }
    };
    for n in nodes.all_nodes() {
        for p in rpg.prefs(n) {
            let kind = match p.kind {
                PrefKind::Coalesce => "coalesce",
                PrefKind::SequentialPlus => "seq+",
                PrefKind::SequentialMinus => "seq-",
                PrefKind::Prefers => "prefers",
            };
            let label = format!(
                "{kind} {}/{}",
                show(p.strength_vol),
                show(p.strength_nonvol)
            );
            match p.target {
                PrefTarget::Node(m) => {
                    let _ = writeln!(
                        buf,
                        "  n{} -> n{} [label=\"{label}\"];",
                        n.index(),
                        m.index()
                    );
                }
                PrefTarget::Volatile | PrefTarget::NonVolatile | PrefTarget::Set(_) => {
                    // Class targets render as a shared sink node.
                    let sink = match p.target {
                        PrefTarget::Volatile => "volatile".to_string(),
                        PrefTarget::NonVolatile => "nonvolatile".to_string(),
                        PrefTarget::Set(mask) => format!("set_{mask:x}"),
                        PrefTarget::Node(_) => unreachable!(),
                    };
                    let _ = writeln!(
                        buf,
                        "  n{} -> {sink} [label=\"{label}\"];",
                        n.index()
                    );
                }
            }
        }
    }
    buf.push_str("}\n");
    buf
}

/// Renders the Coloring Precedence Graph with its `top`/`bottom`
/// sentinels.
pub fn cpg_to_dot(cpg: &Cpg, nodes: &NodeMap) -> String {
    let mut buf = String::from("digraph cpg {\n");
    buf.push_str("  top [shape=plaintext];\n  bottom [shape=plaintext];\n");
    emit_nodes(&mut buf, nodes, |n| cpg.contains(n));
    for n in cpg.nodes() {
        if cpg.from_top(n) {
            let _ = writeln!(buf, "  top -> n{};", n.index());
        }
        for &s in cpg.succs(n) {
            let _ = writeln!(buf, "  n{} -> n{};", n.index(), s.index());
        }
        if cpg.to_bottom(n) {
            let _ = writeln!(buf, "  n{} -> bottom;", n.index());
        }
    }
    buf.push_str("}\n");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_ifg, collect_copies};
    use crate::cost::CostModel;
    use crate::pipeline::analyze;
    use crate::rpg::{build_rpg, PreferenceSet};
    use crate::simplify::{simplify, SimplifyMode};
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::TargetDesc;

    fn graphs() -> (InterferenceGraph, NodeMap, Rpg, Cpg) {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.load(p, 0);
        let y = b.load(p, 8);
        let s = b.bin(BinOp::Add, x, y);
        let d = b.copy(s);
        b.ret(Some(d));
        let f = b.finish();
        let target = TargetDesc::toy(4);
        let lowered = crate::lower::lower_abi(&f, &target).unwrap();
        let analyses = analyze(&lowered.func);
        let nodes = NodeMap::build(&lowered.func, &target, RegClass::Int, &lowered.pinned);
        let mut ifg = build_ifg(&lowered.func, &analyses.liveness, &nodes);
        let cost = CostModel::new(
            &lowered.func,
            &analyses.defuse,
            &analyses.loops,
            &analyses.crossings,
        );
        let copies = collect_copies(&lowered.func, &analyses.loops, &nodes);
        let rpg = build_rpg(&lowered.func, &nodes, &cost, &copies, PreferenceSet::full(), &target);
        let costs = vec![1u64; nodes.num_nodes()];
        let sr = simplify(&mut ifg, 4, &costs, SimplifyMode::Optimistic);
        ifg.restore_all();
        let cpg = Cpg::build(&ifg, &sr.stack, &sr.optimistic, 4);
        (ifg, nodes, rpg, cpg)
    }

    #[test]
    fn ifg_dot_is_undirected_and_mentions_members() {
        let (ifg, nodes, _, _) = graphs();
        let dot = ifg_to_dot(&ifg, &nodes);
        assert!(dot.starts_with("graph ifg {"));
        assert!(dot.contains(" -- "), "{dot}");
        assert!(dot.contains('['), "{dot}");
    }

    #[test]
    fn rpg_dot_labels_strengths() {
        let (_, nodes, rpg, _) = graphs();
        let dot = rpg_to_dot(&rpg, &nodes);
        assert!(dot.starts_with("digraph rpg {"));
        assert!(dot.contains("seq+"), "{dot}");
        assert!(dot.contains("coalesce"), "{dot}");
    }

    #[test]
    fn cpg_dot_has_sentinels() {
        let (_, nodes, _, cpg) = graphs();
        let dot = cpg_to_dot(&cpg, &nodes);
        assert!(dot.starts_with("digraph cpg {"));
        assert!(dot.contains("top"), "{dot}");
        assert!(dot.contains("bottom"), "{dot}");
    }
}
