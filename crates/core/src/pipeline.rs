//! The shared allocation pipeline.
//!
//! Every allocator in this crate — the preference-directed one and the five
//! baselines — is a *class strategy* plugged into the same driver:
//!
//! ```text
//! lower ABI → loop {
//!     analyze (CFG, liveness, loops, def-use, call crossings)
//!     for each register class:
//!         build nodes + interference graph (+ copies)
//!         strategy: coalesce/simplify/select however it likes
//!     no spills? → rewrite to machine code, done
//!     insert spill code, iterate
//! }
//! ```

use crate::build::{build_ifg_in, collect_copies_in, CopyRel};
use crate::cost::CostModel;
use crate::ifg::InterferenceGraph;
use crate::lower::{lower_abi, Lowered, LowerError};
use crate::node::{NodeId, NodeMap};
use crate::rewrite::rewrite_in;
use crate::scratch::{ClassScratch, PhaseScratch};
use crate::select::SelectResult;
use crate::spill::{insert_spill_code_fwd, SPL_FORWARD_MAX_ROUNDS};
use crate::stats::AllocStats;
use pdgc_analysis::{CallCrossing, Cfg, DefUse, Dominators, Liveness, LivenessScratch, Loops, Spl};
use pdgc_check::{check_allocation_in, CheckError, CheckMode, CheckScope, CheckScratch};
use pdgc_ir::{Function, RegClass, VReg};
use pdgc_obs::{with_span, Counter, Event, NoopTracer, Phase, Tracer, ValueHist};
use pdgc_target::{MachFunction, PhysReg, TargetDesc};
use std::fmt;
use std::time::Instant;

/// Upper bound on spill iterations before giving up.
pub const MAX_ROUNDS: usize = 16;

/// The function-level analyses a round computes once.
#[derive(Debug)]
pub struct Analyses {
    /// CFG structure.
    pub cfg: Cfg,
    /// Liveness sets.
    pub liveness: Liveness,
    /// Loop nesting and frequencies.
    pub loops: Loops,
    /// Def/use sites.
    pub defuse: DefUse,
    /// Live-across-call records.
    pub crossings: CallCrossing,
    /// SPL region decomposition of the CFG. When the function is
    /// SPL-shaped it is what computed `liveness` (and, when
    /// [`Spl::depth_fast_ok`], `loops`); it also drives run-based reload
    /// forwarding in the spill phase. On irreducible or otherwise
    /// non-SPL functions it records the fallback.
    pub spl: Spl,
}

/// Runs all of a round's analyses.
pub fn analyze(func: &Function) -> Analyses {
    analyze_in(func, &mut LivenessScratch::default())
}

/// Like [`analyze`], drawing the liveness sets and crossing records from
/// pooled scratch; return them with [`Analyses::recycle`] when done.
///
/// Liveness and loop frequency go through the SPL region fast paths when
/// the CFG is SPL-shaped — bit-identical to the iterative solvers by the
/// [`Spl`] contract — and fall back to [`Liveness::compute_in`] and the
/// dominator-based [`Loops::compute`] otherwise.
pub fn analyze_in(func: &Function, scratch: &mut LivenessScratch) -> Analyses {
    let cfg = Cfg::compute(func);
    let spl = Spl::compute_in(&cfg, &mut scratch.spl);
    let liveness = match spl.liveness_in(func, &cfg, scratch) {
        Some(lv) => lv,
        None => Liveness::compute_in(func, &cfg, scratch),
    };
    let loops = match spl.loops() {
        Some(l) => l,
        None => {
            let dom = Dominators::compute(&cfg);
            Loops::compute(&cfg, &dom)
        }
    };
    let defuse = DefUse::compute_in(func, scratch);
    let crossings = liveness.call_crossings_in(func, scratch);
    Analyses {
        cfg,
        liveness,
        loops,
        defuse,
        crossings,
        spl,
    }
}

impl Analyses {
    /// Returns the pooled liveness, crossing, def/use, and SPL storage to
    /// `scratch`.
    pub fn recycle(self, scratch: &mut LivenessScratch) {
        self.crossings.recycle(scratch);
        self.liveness.recycle(scratch);
        self.defuse.recycle(scratch);
        self.spl.recycle(&mut scratch.spl);
    }
}

/// Everything a class strategy gets to work with in one round.
pub struct ClassCtx<'a> {
    /// The spill round this context belongs to (1-based), for tracing.
    pub round: usize,
    /// The class being allocated.
    pub class: RegClass,
    /// The lowered function.
    pub func: &'a Function,
    /// Node universe for the class.
    pub nodes: NodeMap,
    /// Interference graph over the universe.
    pub ifg: InterferenceGraph,
    /// Copy-relatedness records.
    pub copies: Vec<CopyRel>,
    /// Per-node spill costs (`u64::MAX` = unspillable).
    pub spill_costs: Vec<u64>,
    /// Per-node unspillable marks (spill temporaries, precolored).
    pub no_spill: Vec<bool>,
    /// Number of colors.
    pub k: usize,
    /// Pooled simplify/select scratch. Scratch-aware strategies
    /// `std::mem::take` this at the top of `allocate_class` and move it
    /// back before returning; the pipeline then hoists it into the
    /// worker's [`PhaseScratch`] for the next class.
    pub scratch: ClassScratch,
}

impl ClassCtx<'_> {
    /// The Appendix cost model over this round's analyses.
    pub fn cost_model<'b>(&'b self, analyses: &'b Analyses) -> CostModel<'b> {
        CostModel::new(self.func, &analyses.defuse, &analyses.loops, &analyses.crossings)
    }
}

/// One class round's outcome: an assignment per node, plus spill decisions.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Register per node (`None` for spilled / untouched).
    pub assignment: Vec<Option<PhysReg>>,
    /// Nodes to spill (the pipeline splits their member vregs).
    pub spilled: Vec<NodeId>,
}

/// A register-allocation strategy for one class, one round.
pub trait ClassStrategy {
    /// Produces an assignment (and possibly spill decisions) for the
    /// class universe in `ctx`.
    ///
    /// `tracer` receives phase spans and decision events; strategies must
    /// check [`Tracer::enabled`] before constructing events so the
    /// [`NoopTracer`] path stays free.
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome;
}

/// Errors the pipeline can report.
#[derive(Debug)]
pub enum AllocError {
    /// ABI lowering failed.
    Lower(LowerError),
    /// Spilling did not converge within [`MAX_ROUNDS`].
    TooManyRounds {
        /// The function that failed to converge.
        func: String,
    },
    /// The post-allocation symbolic checker rejected the allocation.
    CheckFailed(CheckError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::Lower(e) => write!(f, "{e}"),
            AllocError::TooManyRounds { func } => {
                write!(f, "allocation of {func} did not converge in {MAX_ROUNDS} rounds")
            }
            AllocError::CheckFailed(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AllocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AllocError::Lower(e) => Some(e),
            AllocError::TooManyRounds { .. } => None,
            AllocError::CheckFailed(e) => Some(e),
        }
    }
}

impl From<LowerError> for AllocError {
    fn from(e: LowerError) -> Self {
        AllocError::Lower(e)
    }
}

impl From<CheckError> for AllocError {
    fn from(e: CheckError) -> Self {
        AllocError::CheckFailed(e)
    }
}

/// A complete allocation result.
#[derive(Clone, Debug)]
pub struct AllocOutput {
    /// The allocated machine code.
    pub mach: MachFunction,
    /// Statistics (the paper's evaluation quantities).
    pub stats: AllocStats,
    /// The final lowered IR (post-spill), for inspection and simulation.
    pub lowered: Function,
    /// Final register per virtual register of `lowered`.
    pub assignment: Vec<Option<PhysReg>>,
}

impl AllocOutput {
    /// Returns a consumed output's pooled buffers — the assignment vector
    /// and the machine function's block storage — to `scratch`, so the
    /// next function on this worker reuses their capacity. Dropping an
    /// output instead of recycling it is always safe; the pools just
    /// re-allocate next time.
    pub fn recycle(self, scratch: &mut PhaseScratch) {
        scratch.assignments.put(self.assignment);
        scratch.mach_blocks.put(self.mach.blocks);
    }
}

/// Builds a [`ClassCtx`] for one class of the lowered function.
pub fn class_ctx<'a>(
    lowered: &'a Lowered,
    target: &TargetDesc,
    class: RegClass,
    analyses: &Analyses,
    no_spill_vregs: &[bool],
) -> ClassCtx<'a> {
    class_ctx_for_round(lowered, target, class, analyses, no_spill_vregs, 1)
}

/// [`class_ctx`] with an explicit round number recorded for tracing.
pub fn class_ctx_for_round<'a>(
    lowered: &'a Lowered,
    target: &TargetDesc,
    class: RegClass,
    analyses: &Analyses,
    no_spill_vregs: &[bool],
    round: usize,
) -> ClassCtx<'a> {
    class_ctx_for_round_in(
        lowered,
        target,
        class,
        analyses,
        no_spill_vregs,
        round,
        &mut PhaseScratch::default(),
    )
}

/// [`class_ctx_for_round`] drawing the node universe, interference graph,
/// copy records, and cost vectors from pooled scratch. Return the consumed
/// context with [`recycle_class_ctx`] when done.
pub fn class_ctx_for_round_in<'a>(
    lowered: &'a Lowered,
    target: &TargetDesc,
    class: RegClass,
    analyses: &Analyses,
    no_spill_vregs: &[bool],
    round: usize,
    scratch: &mut PhaseScratch,
) -> ClassCtx<'a> {
    let nodes = NodeMap::build_in(&lowered.func, target, class, &lowered.pinned, &mut scratch.node);
    let ifg = build_ifg_in(
        &lowered.func,
        &analyses.liveness,
        &nodes,
        &mut scratch.ifg,
        &mut scratch.build,
    );
    let copies = collect_copies_in(&lowered.func, &analyses.loops, &nodes, &mut scratch.build);
    let cost = CostModel::new(
        &lowered.func,
        &analyses.defuse,
        &analyses.loops,
        &analyses.crossings,
    );
    let mut spill_costs = scratch.costs.take_filled(nodes.num_nodes(), u64::MAX);
    let mut no_spill = scratch.flags.take_filled(nodes.num_nodes(), true);
    for n in nodes.live_range_nodes() {
        let mut c = 0u64;
        let mut blocked = false;
        for &v in nodes.members(n) {
            if no_spill_vregs.get(v.index()).copied().unwrap_or(false) {
                blocked = true;
            }
            c = c.saturating_add(cost.spill_cost(v));
        }
        if !blocked {
            spill_costs[n.index()] = c;
            no_spill[n.index()] = false;
        }
    }
    ClassCtx {
        round,
        class,
        func: &lowered.func,
        nodes,
        ifg,
        copies,
        spill_costs,
        no_spill,
        k: target.num_regs(class),
        scratch: std::mem::take(&mut scratch.class),
    }
}

/// Returns a consumed [`ClassCtx`]'s pooled storage to `scratch`.
pub fn recycle_class_ctx(ctx: ClassCtx<'_>, scratch: &mut PhaseScratch) {
    let ClassCtx {
        nodes,
        ifg,
        copies,
        spill_costs,
        no_spill,
        scratch: class_scratch,
        ..
    } = ctx;
    nodes.recycle(&mut scratch.node);
    ifg.recycle(&mut scratch.ifg);
    scratch.build.recycle_copies(copies);
    scratch.costs.put(spill_costs);
    scratch.flags.put(no_spill);
    scratch.class = class_scratch;
}

/// Runs the full pipeline with the given strategy.
///
/// # Errors
///
/// Returns [`AllocError::Lower`] if the function cannot be lowered against
/// the convention, or [`AllocError::TooManyRounds`] if spilling fails to
/// converge.
pub fn run_pipeline(
    func: &Function,
    target: &TargetDesc,
    strategy: &dyn ClassStrategy,
) -> Result<AllocOutput, AllocError> {
    run_pipeline_traced(func, target, strategy, &mut NoopTracer)
}

/// [`run_pipeline`] with an attached [`Tracer`].
///
/// Every phase is wrapped in a span (lower, analyze, build, then whatever
/// phases the strategy emits, spill, rewrite); spill-code insertion and
/// the final statistics are reported as events. With [`NoopTracer`] this
/// is exactly [`run_pipeline`]: no clock reads, no allocation, no I/O.
///
/// # Errors
///
/// Same as [`run_pipeline`].
pub fn run_pipeline_traced(
    func: &Function,
    target: &TargetDesc,
    strategy: &dyn ClassStrategy,
    tracer: &mut dyn Tracer,
) -> Result<AllocOutput, AllocError> {
    run_pipeline_scratch(func, target, strategy, tracer, &mut PhaseScratch::default())
}

/// [`run_pipeline_traced`] drawing every phase's working storage from a
/// per-worker [`PhaseScratch`].
///
/// With a fresh scratch this is exactly [`run_pipeline_traced`] — every
/// pooled phase has a single code path, so the result is bit-identical
/// whether the pools are warm, cold, or shared across thousands of
/// functions. Batch drivers keep one scratch per worker thread; after
/// warm-up the steady state performs (near) zero heap allocation per
/// function.
///
/// # Errors
///
/// Same as [`run_pipeline`].
pub fn run_pipeline_scratch(
    func: &Function,
    target: &TargetDesc,
    strategy: &dyn ClassStrategy,
    tracer: &mut dyn Tracer,
    scratch: &mut PhaseScratch,
) -> Result<AllocOutput, AllocError> {
    // Always-on metrics: each phase gets a manual `Instant` pair recorded
    // into `scratch.metrics` (an array bump, no allocation), independent
    // of whether the opt-in tracer is attached.
    let t0 = Instant::now();
    let mut lowered = with_span(tracer, Phase::Lower, 0, None, || lower_abi(func, target))?;
    scratch
        .metrics
        .observe_latency(Phase::Lower, t0.elapsed().as_nanos() as u64);
    let mut no_spill_vregs = scratch.flags.take_filled(lowered.func.num_vregs(), false);
    let mut slots = 0u32;
    let mut stats = AllocStats::default();

    for round in 1..=MAX_ROUNDS {
        if tracer.enabled() {
            tracer.record(&Event::RoundStart { round: round as u32 });
        }
        let t0 = Instant::now();
        let analyses = with_span(tracer, Phase::Analyze, round as u32, None, || {
            analyze_in(&lowered.func, &mut scratch.liveness)
        });
        scratch
            .metrics
            .observe_latency(Phase::Analyze, t0.elapsed().as_nanos() as u64);
        scratch.metrics.bump(if analyses.spl.is_spl() {
            Counter::SplAnalysesFast
        } else {
            Counter::SplAnalysesFallback
        });
        if analyses.spl.depth_fast_ok() {
            scratch.metrics.bump(Counter::SplFreqFast);
        }
        scratch
            .metrics
            .add(Counter::SplRegions, analyses.spl.regions() as u64);
        scratch
            .metrics
            .add(Counter::SplLoopRegions, analyses.spl.loop_regions() as u64);
        // The assignment is part of the result (it escapes into
        // `AllocOutput`), but it is still pooled: abandoned rounds return
        // it below, and consumers hand the final one back through
        // [`AllocOutput::recycle`].
        let mut assignment: Vec<Option<PhysReg>> =
            scratch.assignments.take_filled(lowered.func.num_vregs(), None);
        let mut spilled_vregs: Vec<VReg> = scratch.vregs.take();

        for class in RegClass::ALL {
            let t0 = Instant::now();
            let mut ctx = with_span(tracer, Phase::Build, round as u32, Some(class), || {
                class_ctx_for_round_in(
                    &lowered,
                    target,
                    class,
                    &analyses,
                    &no_spill_vregs,
                    round,
                    scratch,
                )
            });
            scratch
                .metrics
                .observe_latency(Phase::Build, t0.elapsed().as_nanos() as u64);
            let outcome = strategy.allocate_class(&mut ctx, &analyses, target, tracer);
            for n in ctx.nodes.all_nodes() {
                if let Some(r) = outcome.assignment[n.index()] {
                    for &v in ctx.nodes.members(n) {
                        assignment[v.index()] = Some(r);
                    }
                }
            }
            for &n in &outcome.spilled {
                for &v in ctx.nodes.members(n) {
                    spilled_vregs.push(v);
                }
            }
            recycle_class_ctx(ctx, scratch);
            SelectResult {
                assignment: outcome.assignment,
                spilled: outcome.spilled,
            }
            .recycle(&mut scratch.class.select);
            // The strategy recorded its per-class metrics (coalesce/
            // simplify/select latency, screening outcomes) into the class
            // scratch it took; hoist them into the worker registry.
            scratch
                .class
                .select
                .metrics
                .drain_into(&mut scratch.metrics);
        }
        // `analyses` stays alive past the class loop: the spill phase
        // below consults the SPL decomposition for reload forwarding.

        // A vreg must be spilled at most once per round: classes partition
        // the universe and strategies spill whole nodes, so a duplicate here
        // means node bookkeeping broke (it would burn a second frame slot
        // and leave a stale `slot_of` entry downstream). Dedup in release,
        // loudly in debug, preserving insertion order for the trace event.
        let mut seen = scratch.flags.take_filled(lowered.func.num_vregs(), false);
        spilled_vregs.retain(|v| {
            let dup = seen[v.index()];
            debug_assert!(!dup, "vreg {v} spilled twice in one round");
            seen[v.index()] = true;
            !dup
        });
        scratch.flags.put(seen);

        if spilled_vregs.is_empty() {
            analyses.recycle(&mut scratch.liveness);
            scratch.vregs.put(spilled_vregs);
            stats.rounds = round;
            let t0 = Instant::now();
            let mach = with_span(tracer, Phase::Rewrite, round as u32, None, || {
                rewrite_in(&lowered.func, &assignment, target, slots, &mut stats, scratch)
            });
            scratch
                .metrics
                .observe_latency(Phase::Rewrite, t0.elapsed().as_nanos() as u64);
            record_scorecard(&mut scratch.metrics, &stats);
            if tracer.enabled() {
                tracer.record(&Event::Finish {
                    rounds: round as u32,
                    spill_instructions: stats.spill_instructions as u64,
                    moves_eliminated: stats.moves_eliminated as u64,
                });
            }
            scratch.flags.put(no_spill_vregs);
            return Ok(AllocOutput {
                mach,
                stats,
                lowered: lowered.func,
                assignment,
            });
        }

        // This round spills and iterates; its assignment is abandoned, so
        // return the vector to the pool for the next round to refill.
        scratch.assignments.put(assignment);
        let t0 = Instant::now();
        // Region-aware spill placement: forward reloads along SPL linear
        // runs for the early rounds; late rounds fall back to minimal
        // per-use reloads so temporary pressure cannot stall convergence.
        let fwd = if round <= SPL_FORWARD_MAX_ROUNDS {
            Some(&analyses.spl)
        } else {
            None
        };
        let outcome = with_span(tracer, Phase::Spill, round as u32, None, || {
            insert_spill_code_fwd(&mut lowered.func, &spilled_vregs, &mut slots, fwd)
        });
        scratch
            .metrics
            .observe_latency(Phase::Spill, t0.elapsed().as_nanos() as u64);
        scratch
            .metrics
            .add(Counter::SplForwardedReloads, outcome.forwarded as u64);
        analyses.recycle(&mut scratch.liveness);
        if tracer.enabled() {
            tracer.record(&Event::SpillCode {
                round: round as u32,
                vregs: spilled_vregs.iter().map(|v| v.index() as u32).collect(),
                slots,
            });
        }
        scratch.vregs.put(spilled_vregs);
        lowered.sync_pinned_len();
        no_spill_vregs.resize(lowered.func.num_vregs(), false);
        for v in outcome.new_temps {
            no_spill_vregs[v.index()] = true;
        }
    }
    scratch.flags.put(no_spill_vregs);
    Err(AllocError::TooManyRounds {
        func: func.name.clone(),
    })
}

/// Records one finished function's [`AllocStats`] into the always-on
/// scorecard: every evaluation quantity becomes a named counter, and the
/// per-function distributions (rounds, spill instructions) feed the
/// scorecard histograms.
fn record_scorecard(m: &mut pdgc_obs::MetricsRegistry, stats: &AllocStats) {
    m.bump(Counter::FuncsAllocated);
    m.add(Counter::RoundsTotal, stats.rounds as u64);
    m.add(Counter::CopiesBefore, stats.copies_before as u64);
    m.add(Counter::MovesEliminated, stats.moves_eliminated as u64);
    m.add(Counter::CopiesRemaining, stats.copies_remaining as u64);
    m.add(Counter::SpillLoads, stats.spill_loads as u64);
    m.add(Counter::SpillStores, stats.spill_stores as u64);
    m.add(Counter::SpillInstructions, stats.spill_instructions as u64);
    m.add(Counter::CallerSaveInsts, stats.caller_save_insts as u64);
    m.add(Counter::NonvolatilesUsed, stats.nonvolatiles_used as u64);
    m.add(Counter::PairedLoadCandidates, stats.paired_candidates as u64);
    m.add(Counter::PairedLoadsFused, stats.paired_loads as u64);
    m.add(Counter::ZeroExtensions, stats.zero_extensions as u64);
    m.add(Counter::FrameSlots, u64::from(stats.frame_slots));
    m.observe_value(ValueHist::RoundsPerFunc, stats.rounds as u64);
    m.observe_value(ValueHist::SpillsPerFunc, stats.spill_instructions as u64);
}

/// [`run_pipeline_scratch`] followed by [`check_output_metered`]: the
/// pooled, metered pipeline plus the symbolic checker, in one call. Every
/// allocator's `allocate_scratch` routes through here so batch workers
/// share one code path (and one metrics contract) regardless of strategy.
///
/// # Errors
///
/// Same as [`run_pipeline_scratch`], plus [`AllocError::CheckFailed`]
/// when the checker finds a violation.
pub fn run_pipeline_scratch_checked(
    func: &Function,
    target: &TargetDesc,
    strategy: &dyn ClassStrategy,
    tracer: &mut dyn Tracer,
    mode: CheckMode,
    scope: CheckScope,
    scratch: &mut PhaseScratch,
) -> Result<AllocOutput, AllocError> {
    let out = run_pipeline_scratch(func, target, strategy, tracer, scratch)?;
    check_output_metered(&out, target, tracer, mode, scope, scratch)?;
    Ok(out)
}

/// [`run_pipeline_traced`] followed by the post-allocation symbolic
/// checker (when `mode` says so): the returned allocation is
/// independently proven semantics-preserving before anyone consumes it.
///
/// # Errors
///
/// Same as [`run_pipeline_traced`], plus [`AllocError::CheckFailed`] when
/// the checker finds a violation.
pub fn run_pipeline_checked(
    func: &Function,
    target: &TargetDesc,
    strategy: &dyn ClassStrategy,
    tracer: &mut dyn Tracer,
    mode: CheckMode,
) -> Result<AllocOutput, AllocError> {
    let out = run_pipeline_traced(func, target, strategy, tracer)?;
    check_output(&out, target, tracer, mode)?;
    Ok(out)
}

/// Runs the symbolic checker over a finished allocation, honoring `mode`.
///
/// Emits a [`Phase::Check`] span and, on rejection, an
/// [`Event::CheckFailed`] carrying every violation, so `--trace` artifacts
/// capture exactly what was wrong.
///
/// # Errors
///
/// [`AllocError::CheckFailed`] when the checker finds a violation.
pub fn check_output(
    out: &AllocOutput,
    target: &TargetDesc,
    tracer: &mut dyn Tracer,
    mode: CheckMode,
) -> Result<(), AllocError> {
    check_output_in(
        out,
        target,
        tracer,
        mode,
        CheckScope::Full,
        &mut CheckScratch::default(),
    )
}

/// [`check_output`] with an explicit [`CheckScope`] and pooled checker
/// scratch. Batch drivers pass [`CheckScope::Rewritten`] so
/// re-verification pays per rewrite instead of per function; the `Full`
/// scope with a fresh scratch is exactly [`check_output`].
///
/// # Errors
///
/// [`AllocError::CheckFailed`] when the checker finds a violation.
pub fn check_output_in(
    out: &AllocOutput,
    target: &TargetDesc,
    tracer: &mut dyn Tracer,
    mode: CheckMode,
    scope: CheckScope,
    scratch: &mut CheckScratch,
) -> Result<(), AllocError> {
    if !mode.should_check() {
        return Ok(());
    }
    let round = out.stats.rounds as u32;
    let result = with_span(tracer, Phase::Check, round, None, || {
        check_allocation_in(&out.lowered, &out.assignment, &out.mach, target, scope, scratch)
    });
    match result {
        Ok(_) => Ok(()),
        Err(e) => {
            if tracer.enabled() {
                tracer.record(&Event::CheckFailed {
                    func: e.func.clone(),
                    violations: e.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
            Err(AllocError::CheckFailed(e))
        }
    }
}

/// [`check_output_in`] against a full [`PhaseScratch`], with the run
/// recorded in the always-on metrics: check latency, runs by scope, the
/// proof's coverage (blocks/instructions/pairs, from the [`CheckReport`]
/// that [`check_output_in`] discards), and violation counts on rejection.
///
/// [`CheckReport`]: pdgc_check::CheckReport
///
/// # Errors
///
/// [`AllocError::CheckFailed`] when the checker finds a violation.
pub fn check_output_metered(
    out: &AllocOutput,
    target: &TargetDesc,
    tracer: &mut dyn Tracer,
    mode: CheckMode,
    scope: CheckScope,
    scratch: &mut PhaseScratch,
) -> Result<(), AllocError> {
    if !mode.should_check() {
        return Ok(());
    }
    let round = out.stats.rounds as u32;
    let t0 = Instant::now();
    let result = with_span(tracer, Phase::Check, round, None, || {
        check_allocation_in(
            &out.lowered,
            &out.assignment,
            &out.mach,
            target,
            scope,
            &mut scratch.check,
        )
    });
    let m = &mut scratch.metrics;
    m.observe_latency(Phase::Check, t0.elapsed().as_nanos() as u64);
    m.bump(Counter::CheckRuns);
    m.bump(match scope {
        CheckScope::Full => Counter::CheckScopeFull,
        CheckScope::Rewritten => Counter::CheckScopeRewritten,
    });
    match result {
        Ok(report) => {
            m.add(Counter::CheckBlocksProven, report.blocks as u64);
            m.add(Counter::CheckIrInsts, report.ir_insts as u64);
            m.add(Counter::CheckMachInsts, report.mach_insts as u64);
            m.add(Counter::CheckPairedLoads, report.paired_loads as u64);
            Ok(())
        }
        Err(e) => {
            m.add(Counter::CheckViolations, e.violations.len() as u64);
            if tracer.enabled() {
                tracer.record(&Event::CheckFailed {
                    func: e.func.clone(),
                    violations: e.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
            Err(AllocError::CheckFailed(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal strategy: plain Briggs simplify + stack coloring, no
    /// coalescing. Exercises the pipeline plumbing.
    struct Plain;

    impl ClassStrategy for Plain {
        fn allocate_class(
            &self,
            ctx: &mut ClassCtx<'_>,
            _analyses: &Analyses,
            target: &TargetDesc,
            _tracer: &mut dyn Tracer,
        ) -> RoundOutcome {
            use crate::baselines::aggressive_coalesce;
            use crate::simplify::{simplify, SimplifyMode};
            let _ = aggressive_coalesce; // (not used: no coalescing)
            let sr = simplify(&mut ctx.ifg, ctx.k, &ctx.spill_costs, SimplifyMode::Optimistic);
            ctx.ifg.restore_all();
            let (assignment, spilled) = crate::baselines::color_stack(
                &ctx.ifg,
                &ctx.nodes,
                &sr.stack,
                target,
                None,
                false,
            );
            for &s in &spilled {
                assert!(!ctx.no_spill[s.index()], "spilled a temp");
            }
            RoundOutcome { assignment, spilled }
        }
    }
    use Plain as Greedy;

    #[test]
    fn pipeline_allocates_simple_function() {
        use pdgc_ir::{BinOp, FunctionBuilder};
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        b.ret(Some(x));
        let f = b.finish();
        let target = TargetDesc::ia64_like(pdgc_target::PressureModel::High);
        let out = run_pipeline(&f, &target, &Greedy).unwrap();
        assert_eq!(out.stats.rounds, 1);
        assert_eq!(out.stats.spill_instructions, 0);
        assert!(out.mach.num_insts() > 0);
    }

    #[test]
    fn pipeline_spills_under_pressure() {
        use pdgc_ir::{BinOp, FunctionBuilder};
        // Build pressure: 6 simultaneously-live values on a 3-register toy.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let vals: Vec<_> = (0..6).map(|i| b.load(p, 16 + 32 * i)).collect();
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let target = TargetDesc::toy(3);
        let out = run_pipeline(&f, &target, &Greedy).unwrap();
        assert!(out.stats.rounds > 1);
        assert!(out.stats.spill_instructions > 0);
        // Final code verifies and all vregs of the final IR got registers
        // (referenced ones).
        assert!(out.lowered.verify().is_ok());
    }
}
