//! The paper's Appendix cost model.
//!
//! All strengths derive from
//! `Str(V, P) = Mem_Cost(V) − Ideal_Cost(V, P)` with
//!
//! ```text
//! Mem_Cost(V)      = Spill_Cost(V) + Op_Cost(V)
//! Spill_Cost(V)    = Σ Load_Cost·Freq(uses)  + Σ Store_Cost·Freq(defs)
//! Op_Cost(V)       = Σ Inst_Cost·Freq(uses)  + Σ Inst_Cost·Freq(defs)
//! Ideal_Cost(V, P) = Call_Cost(V) + Ideal_Op_Cost(V, P)
//! Call_Cost(V)     = Σ Save_Restore_Cost·Freq(calls across V)   (volatile)
//!                  | Callee_Save_Cost                           (non-volatile)
//! ```
//!
//! with `Load_Cost = 2`, `Store_Cost = 1`, `Inst_Cost = 2` for loads and 1
//! otherwise (undefined — treated as 0 — for calls), `Save_Restore_Cost =
//! 3`, and `Callee_Save_Cost = 2`. `Ideal_Op_Cost` zeroes the cost of the
//! instructions a preference would eliminate (the coalesced move, or the
//! load folded into a paired load).

use pdgc_analysis::{CallCrossing, DefUse, InstRef, Loops};
use pdgc_ir::{Function, Inst, VReg};

/// `Load_Cost` — cycles to reload a spilled value before a use.
pub const LOAD_COST: u64 = 2;
/// `Store_Cost` — cycles to spill a value after a definition.
pub const STORE_COST: u64 = 1;
/// `Save_Restore_Cost` — caller-side save+restore around one call.
pub const SAVE_RESTORE_COST: u64 = 3;
/// `Callee_Save_Cost` — prologue/epilogue cost attributed to taking a
/// non-volatile register.
pub const CALLEE_SAVE_COST: u64 = 2;

/// Evaluates the Appendix cost functions over one function.
#[derive(Clone, Debug)]
pub struct CostModel<'a> {
    func: &'a Function,
    defuse: &'a DefUse,
    loops: &'a Loops,
    crossings: &'a CallCrossing,
}

impl<'a> CostModel<'a> {
    /// Bundles the analyses the model reads.
    pub fn new(
        func: &'a Function,
        defuse: &'a DefUse,
        loops: &'a Loops,
        crossings: &'a CallCrossing,
    ) -> Self {
        CostModel {
            func,
            defuse,
            loops,
            crossings,
        }
    }

    fn inst_at(&self, r: InstRef) -> &Inst {
        &self.func.block(r.block).insts[r.index]
    }

    /// `Freq_Fact` of the instruction's block.
    ///
    /// `depth` counts *natural loops* — all back edges sharing a header
    /// form one loop, so a two-latch (`continue`-shaped) loop weighs its
    /// body 10×, not 100×. On SPL-shaped functions the pipeline derives
    /// `Loops` from the region tree (`Spl::loops`), which is bit-identical
    /// to the iterative dominator-based computation; costs never depend on
    /// which path produced the analysis.
    pub fn freq(&self, r: InstRef) -> u64 {
        self.loops.freq(r.block)
    }

    /// `Inst_Cost`: 2 for memory loads, undefined (0) for calls, 1
    /// otherwise.
    pub fn inst_cost(&self, r: InstRef) -> u64 {
        match self.inst_at(r) {
            Inst::Load { .. } | Inst::Load8 { .. } | Inst::Reload { .. } => 2,
            Inst::Call { .. } => 0,
            _ => 1,
        }
    }

    /// `Spill_Cost(V)`: reload before every use, store after every def.
    pub fn spill_cost(&self, v: VReg) -> u64 {
        let loads: u64 = self
            .defuse
            .uses(v)
            .iter()
            .map(|&r| LOAD_COST * self.freq(r))
            .sum();
        let stores: u64 = self
            .defuse
            .defs(v)
            .iter()
            .map(|&r| STORE_COST * self.freq(r))
            .sum();
        loads + stores
    }

    /// `Op_Cost(V)`: the frequency-weighted cost of the instructions that
    /// touch `V`.
    pub fn op_cost(&self, v: VReg) -> u64 {
        self.sites(v).map(|r| self.inst_cost(r) * self.freq(r)).sum()
    }

    /// `Mem_Cost(V) = Spill_Cost(V) + Op_Cost(V)`.
    pub fn mem_cost(&self, v: VReg) -> u64 {
        self.spill_cost(v) + self.op_cost(v)
    }

    /// `Call_Cost(V)` when `V` lives in a volatile register: save+restore
    /// around every call it crosses.
    pub fn call_cost_volatile(&self, v: VReg) -> u64 {
        SAVE_RESTORE_COST * self.crossings.weighted(v, self.loops)
    }

    /// `Call_Cost(V)` when `V` lives in a non-volatile register.
    pub fn call_cost_nonvolatile(&self, _v: VReg) -> u64 {
        CALLEE_SAVE_COST
    }

    /// `Ideal_Op_Cost(V, P)`: like [`op_cost`](Self::op_cost) but the
    /// instructions in `zeroed` — those the preference `P` eliminates —
    /// cost nothing.
    pub fn ideal_op_cost(&self, v: VReg, zeroed: &[InstRef]) -> u64 {
        self.sites(v)
            .map(|r| {
                if zeroed.contains(&r) {
                    0
                } else {
                    self.inst_cost(r) * self.freq(r)
                }
            })
            .sum()
    }

    /// `Str(V, P)` for a preference that would be honored with a volatile
    /// register and eliminates the instructions in `zeroed`.
    pub fn strength_volatile(&self, v: VReg, zeroed: &[InstRef]) -> i64 {
        self.mem_cost(v) as i64
            - (self.call_cost_volatile(v) + self.ideal_op_cost(v, zeroed)) as i64
    }

    /// `Str(V, P)` for a preference honored with a non-volatile register.
    pub fn strength_nonvolatile(&self, v: VReg, zeroed: &[InstRef]) -> i64 {
        self.mem_cost(v) as i64
            - (self.call_cost_nonvolatile(v) + self.ideal_op_cost(v, zeroed)) as i64
    }

    /// `Str(V, P)` with the `Call_Cost` term omitted — the strength used
    /// by the "only coalescing" configuration of §6.1, where the allocator
    /// reflects nothing but the coalescing benefit (volatile and
    /// non-volatile registers look identical to it).
    pub fn strength_ignoring_volatility(&self, v: VReg, zeroed: &[InstRef]) -> i64 {
        self.mem_cost(v) as i64 - self.ideal_op_cost(v, zeroed) as i64
    }

    fn sites(&self, v: VReg) -> impl Iterator<Item = InstRef> + '_ {
        self.defuse
            .uses(v)
            .iter()
            .chain(self.defuse.defs(v).iter())
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_analysis::{Cfg, Dominators, Liveness};
    use pdgc_ir::{BinOp, CmpOp, FunctionBuilder, RegClass};

    struct Ctx {
        func: Function,
        cfg: Cfg,
    }

    /// The Figure 7 sample loop, in IR form (pre-ABI-lowering, with arg0
    /// modeled as an ordinary parameter vreg and the call argument copy
    /// kept explicit).
    ///
    /// ```text
    /// i0:     v0 = [arg0]
    /// i1: L1: v1 = [v0]
    /// i2:     v2 = [v0+4]
    /// i3:     v3 = v0
    /// i4:     v4 = v1 + v2
    /// i5:     arg0' = v3            (call argument copy)
    /// i6:     call g(arg0')
    /// i7:     v0' = v4 + 1
    /// i8:     if v0' != 0 goto L1
    /// i9:     ret
    /// ```
    fn figure7_ir() -> (Ctx, [VReg; 5]) {
        let mut b = FunctionBuilder::new("fig7", vec![RegClass::Int], None);
        let arg0 = b.param(0);
        let header = b.create_block();
        let exit = b.create_block();
        // i0 (entry, freq 1)
        let v0 = b.load(arg0, 0);
        b.jump(header);
        // loop body (freq 10)
        b.switch_to(header);
        let v1 = b.load(v0, 0);
        let v2 = b.load(v0, 4);
        let v3 = b.copy(v0);
        let v4 = b.bin(BinOp::Add, v1, v2);
        let arg0c = b.copy(v3); // i5: the explicit call-argument copy
        b.call("g", vec![arg0c], None);
        let v0b = b.bin_imm(BinOp::Add, v4, 1);
        let z = b.iconst(0);
        b.branch(CmpOp::Ne, v0b, z, header, exit);
        b.switch_to(exit);
        b.ret(None);
        // NOTE: v0b is the loop-carried redefinition; for cost purposes the
        // paper treats v0/v0' as one live range. The cost tests below use
        // the individual registers whose sites match the paper's table.
        let func = b.finish();
        let cfg = Cfg::compute(&func);
        (Ctx { func, cfg }, [v0, v1, v2, v3, v4])
    }

    fn model(ctx: &Ctx) -> (DefUse, Loops, CallCrossing) {
        let dom = Dominators::compute(&ctx.cfg);
        let loops = Loops::compute(&ctx.cfg, &dom);
        let lv = Liveness::compute(&ctx.func, &ctx.cfg);
        let du = DefUse::compute(&ctx.func);
        let cc = lv.call_crossings(&ctx.func);
        (du, loops, cc)
    }

    #[test]
    fn figure7_v4_prefers_nonvolatile_strength_28() {
        let (ctx, regs) = figure7_ir();
        let (du, loops, cc) = model(&ctx);
        let m = CostModel::new(&ctx.func, &du, &loops, &cc);
        let v4 = regs[4];
        assert_eq!(m.mem_cost(v4), 50);
        assert_eq!(m.strength_nonvolatile(v4, &[]), 28);
        // Volatile would need save/restore around the crossed call.
        assert_eq!(m.call_cost_volatile(v4), 30);
        assert_eq!(m.strength_volatile(v4, &[]), 0);
    }

    #[test]
    fn figure7_v3_coalesce_strengths_40_38() {
        let (ctx, regs) = figure7_ir();
        let (du, loops, cc) = model(&ctx);
        let m = CostModel::new(&ctx.func, &du, &loops, &cc);
        let v3 = regs[3];
        // The coalesce preference toward v0 zeroes only the move that
        // defines v3 (i3); the argument copy i5 still costs.
        let def_site = du.defs(v3)[0];
        assert_eq!(m.mem_cost(v3), 50);
        assert_eq!(m.strength_volatile(v3, &[def_site]), 40);
        assert_eq!(m.strength_nonvolatile(v3, &[def_site]), 38);
    }

    #[test]
    fn figure7_sequential_strengths_50_48() {
        let (ctx, regs) = figure7_ir();
        let (du, loops, cc) = model(&ctx);
        let m = CostModel::new(&ctx.func, &du, &loops, &cc);
        for v in [regs[1], regs[2]] {
            // The sequential± preference zeroes the paired-load candidate
            // that defines the register.
            let def_site = du.defs(v)[0];
            assert_eq!(m.mem_cost(v), 60);
            assert_eq!(m.strength_volatile(v, &[def_site]), 50);
            assert_eq!(m.strength_nonvolatile(v, &[def_site]), 48);
        }
    }

    #[test]
    fn spill_cost_weights_by_frequency() {
        let (ctx, regs) = figure7_ir();
        let (du, loops, cc) = model(&ctx);
        let m = CostModel::new(&ctx.func, &du, &loops, &cc);
        // v1: def by load in the loop (store-after-def 1×10), one use in
        // the loop (load-before-use 2×10).
        assert_eq!(m.spill_cost(regs[1]), 30);
        // v4: def 1×10 + use 2×10.
        assert_eq!(m.spill_cost(regs[4]), 30);
    }

    #[test]
    fn call_sites_cost_nothing_in_op_cost() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], None);
        let p = b.param(0);
        b.call("g", vec![p], None);
        b.ret(None);
        let func = b.finish();
        let cfg = Cfg::compute(&func);
        let ctx = Ctx { func, cfg };
        let (du, loops, cc) = model(&ctx);
        let m = CostModel::new(&ctx.func, &du, &loops, &cc);
        // p's only use is the call, whose Inst_Cost is undefined (0).
        assert_eq!(m.op_cost(p), 0);
        assert_eq!(m.spill_cost(p), 2);
    }
}
