//! Interference-graph construction.
//!
//! Chaitin semantics: at every definition point, the defined node interferes
//! with everything live *after* the instruction — so operands that die at
//! the instruction do **not** interfere with its result — and a copy's
//! source is exempted (copy-relatedness instead of interference). This is
//! the construction needed to reproduce the paper's Figure 7 interference
//! graph exactly.

use crate::ifg::{IfgScratch, InterferenceGraph};
use crate::node::{NodeId, NodeMap};
use pdgc_analysis::{BitSet, Liveness, Loops};
use pdgc_arena::VecPool;
use pdgc_ir::{Block, Function, Inst, VReg};

/// Resettable scratch for [`build_ifg_in`] and [`collect_copies_in`].
#[derive(Debug, Default)]
pub struct BuildScratch {
    entry_live: Vec<NodeId>,
    walk: BitSet,
    copies: VecPool<CopyRel>,
}

impl BuildScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy-relatedness vector taken from
    /// [`collect_copies_in`] to the pool.
    pub fn recycle_copies(&mut self, copies: Vec<CopyRel>) {
        self.copies.put(copies);
    }
}

/// A copy-relatedness record: the move `dst = src` at frequency `freq`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CopyRel {
    /// Node of the copy destination.
    pub dst: NodeId,
    /// Node of the copy source.
    pub src: NodeId,
    /// Frequency weight of the move (the benefit of coalescing it).
    pub freq: u64,
    /// Location of the move.
    pub block: Block,
    /// Instruction index within the block.
    pub index: usize,
}

/// Builds the interference graph for one class's node universe.
pub fn build_ifg(
    func: &Function,
    liveness: &Liveness,
    nodes: &NodeMap,
) -> InterferenceGraph {
    build_ifg_in(
        func,
        liveness,
        nodes,
        &mut IfgScratch::default(),
        &mut BuildScratch::default(),
    )
}

/// Like [`build_ifg`], drawing the graph's storage and the construction
/// temporaries from pooled scratch.
pub fn build_ifg_in(
    func: &Function,
    liveness: &Liveness,
    nodes: &NodeMap,
    ifg_scratch: &mut IfgScratch,
    scratch: &mut BuildScratch,
) -> InterferenceGraph {
    let mut g = InterferenceGraph::new_in(nodes.num_nodes(), nodes.num_phys(), ifg_scratch);

    // Values live into the entry block are all defined "at entry"
    // (pre-lowering parameters): make them pairwise interfere.
    let entry_live = &mut scratch.entry_live;
    entry_live.clear();
    entry_live.extend(
        liveness
            .live_in(Block::ENTRY)
            .iter()
            .filter_map(|v| nodes.node_of(VReg::new(v))),
    );
    for (i, &a) in entry_live.iter().enumerate() {
        for &b in &entry_live[i + 1..] {
            g.add_edge(a, b);
        }
    }

    for b in func.block_ids() {
        liveness.for_each_inst_backward_in(func, b, &mut scratch.walk, |_, inst, live_after| {
            let Some(d) = inst.def() else { return };
            let Some(nd) = nodes.node_of(d) else { return };
            let copy_src = inst.as_copy().map(|(_, s)| s);
            for v in live_after.iter() {
                let v = VReg::new(v);
                if v == d || copy_src == Some(v) {
                    continue;
                }
                if let Some(nv) = nodes.node_of(v) {
                    g.add_edge(nd, nv);
                }
            }
        });
    }
    g
}

/// Collects the copy-relatedness pairs of one class: every
/// `Copy { dst, src }` whose endpoints map to *distinct* nodes of this
/// universe, weighted by loop frequency.
pub fn collect_copies(func: &Function, loops: &Loops, nodes: &NodeMap) -> Vec<CopyRel> {
    collect_copies_in(func, loops, nodes, &mut BuildScratch::default())
}

/// Like [`collect_copies`], drawing the result vector from pooled scratch;
/// return it with [`BuildScratch::recycle_copies`] when done.
pub fn collect_copies_in(
    func: &Function,
    loops: &Loops,
    nodes: &NodeMap,
    scratch: &mut BuildScratch,
) -> Vec<CopyRel> {
    let mut out = scratch.copies.take();
    for b in func.block_ids() {
        for (i, inst) in func.block(b).insts.iter().enumerate() {
            if let Inst::Copy { dst, src } = inst {
                let (Some(nd), Some(ns)) = (nodes.node_of(*dst), nodes.node_of(*src)) else {
                    continue;
                };
                if nd != ns {
                    out.push(CopyRel {
                        dst: nd,
                        src: ns,
                        freq: loops.freq(b),
                        block: b,
                        index: i,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_analysis::{Cfg, Dominators};
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::TargetDesc;

    fn analyze(
        func: &Function,
    ) -> (Cfg, Liveness, Loops, NodeMap) {
        let cfg = Cfg::compute(func);
        let lv = Liveness::compute(func, &cfg);
        let dom = Dominators::compute(&cfg);
        let loops = Loops::compute(&cfg, &dom);
        let pinned = vec![None; func.num_vregs()];
        let nm = NodeMap::build(func, &TargetDesc::toy(4), RegClass::Int, &pinned);
        (cfg, lv, loops, nm)
    }

    #[test]
    fn dying_operand_does_not_interfere_with_def() {
        // x = p + p; y = x + x; x dies at the second add.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin(BinOp::Add, p, p);
        let y = b.bin(BinOp::Add, x, x);
        b.ret(Some(y));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        let (np, nx, ny) = (
            nm.node_of(p).unwrap(),
            nm.node_of(x).unwrap(),
            nm.node_of(y).unwrap(),
        );
        assert!(!g.interferes(np, nx)); // p dies at x's def
        assert!(!g.interferes(nx, ny)); // x dies at y's def
        assert!(!g.interferes(np, ny));
    }

    #[test]
    fn overlapping_ranges_interfere() {
        // x and p both live across the middle instruction.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let x = b.bin_imm(BinOp::Add, p, 1);
        let y = b.bin(BinOp::Add, x, p); // p still live here
        b.ret(Some(y));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        assert!(g.interferes(nm.node_of(p).unwrap(), nm.node_of(x).unwrap()));
    }

    #[test]
    fn copy_source_exempted() {
        // c = p; use both later => they do interfere only if both live
        // after; here p dies after the copy-use.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        b.ret(Some(c));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        assert!(!g.interferes(nm.node_of(p).unwrap(), nm.node_of(c).unwrap()));
    }

    #[test]
    fn copy_pair_shares_value_even_when_both_live() {
        // c = p; y = p + c : both are live after the copy but hold the
        // same value, so Chaitin's copy exemption correctly omits the
        // edge — they may share a register (and should coalesce).
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        let y = b.bin(BinOp::Add, p, c);
        b.ret(Some(y));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        assert!(!g.interferes(nm.node_of(p).unwrap(), nm.node_of(c).unwrap()));
    }

    #[test]
    fn redefined_copy_source_does_interfere() {
        // c = p; p = c + 1 (redefinition); y = p + c : after p's
        // redefinition the values diverge, so the edge must exist.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        b.emit(pdgc_ir::Inst::BinImm {
            op: BinOp::Add,
            dst: p,
            lhs: c,
            imm: 1,
        });
        let y = b.bin(BinOp::Add, p, c);
        b.ret(Some(y));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        assert!(g.interferes(nm.node_of(p).unwrap(), nm.node_of(c).unwrap()));
    }

    #[test]
    fn copies_collected_with_freq() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let c = b.copy(p);
        b.ret(Some(c));
        let f = b.finish();
        let (_, _, loops, nm) = analyze(&f);
        let copies = collect_copies(&f, &loops, &nm);
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].dst, nm.node_of(c).unwrap());
        assert_eq!(copies[0].src, nm.node_of(p).unwrap());
        assert_eq!(copies[0].freq, 1);
    }

    #[test]
    fn entry_liveins_pairwise_interfere() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![RegClass::Int, RegClass::Int],
            Some(RegClass::Int),
        );
        let p = b.param(0);
        let q = b.param(1);
        let y = b.bin(BinOp::Add, p, q);
        b.ret(Some(y));
        let f = b.finish();
        let (_, lv, _, nm) = analyze(&f);
        let g = build_ifg(&f, &lv, &nm);
        assert!(g.interferes(nm.node_of(p).unwrap(), nm.node_of(q).unwrap()));
    }
}
