//! Preference-directed graph-coloring register allocation.
//!
//! This crate implements the complete system of *Preference-Directed Graph
//! Coloring* (Koseki, Komatsu, Nakatani; PLDI 2002):
//!
//! * the **Register Preference Graph** ([`rpg`]) recording coalesce,
//!   sequential±, and prefers relationships with Appendix-model strengths
//!   ([`cost`]);
//! * the **Coloring Precedence Graph** ([`cpg`]) — the partial order
//!   extracted from graph simplification that preserves colorability;
//! * the **integrated select phase** ([`select`]) that resolves spilling,
//!   coalescing, and all preference types simultaneously;
//! * the shared substrate: call lowering against a calling convention
//!   ([`lower`]), interference graphs ([`ifg`], [`build`]), Chaitin/Briggs
//!   simplification ([`simplify`]), spill-code insertion ([`spill`]), and
//!   post-allocation rewriting with copy elimination, caller-save insertion,
//!   and paired-load fusion ([`rewrite`]);
//! * the comparison allocators of the paper's §6 ([`baselines`]): Chaitin
//!   with aggressive coalescing, Briggs optimistic coloring, George–Appel
//!   iterated coalescing, Park–Moon optimistic coalescing, and a
//!   Lueh–Gross-style call-cost-directed allocator.
//!
//! # Quick start
//!
//! ```
//! use pdgc_core::{PreferenceAllocator, RegisterAllocator};
//! use pdgc_ir::{FunctionBuilder, RegClass, BinOp};
//! use pdgc_target::{PressureModel, TargetDesc};
//!
//! # fn main() -> Result<(), pdgc_core::AllocError> {
//! let mut b = FunctionBuilder::new("double", vec![RegClass::Int], Some(RegClass::Int));
//! let p = b.param(0);
//! let r = b.bin(BinOp::Add, p, p);
//! b.ret(Some(r));
//! let func = b.finish();
//!
//! let target = TargetDesc::ia64_like(PressureModel::Middle);
//! let out = PreferenceAllocator::full().allocate(&func, &target)?;
//! assert_eq!(out.stats.spill_instructions, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod build;
pub mod cost;
pub mod cpg;
pub mod dot;
pub mod ifg;
pub mod lower;
pub mod node;
pub mod pipeline;
pub mod rewrite;
pub mod rpg;
pub mod scratch;
pub mod select;
pub mod simplify;
pub mod spill;
mod stats;

mod allocator;

pub use allocator::{
    AllocError, AllocOutput, CheckMode, CheckScope, PreferenceAllocator, PreferenceSet,
    RegisterAllocator,
};
pub use scratch::{ClassScratch, PhaseScratch};
pub use stats::{AllocStats, ClassStats};
