//! The comparison allocators of the paper's §6.
//!
//! * [`ChaitinAllocator`] — Chaitin-style coloring with aggressive
//!   coalescing (Figure 1(a)); the *base* of the Figure 9 ratios.
//! * [`BriggsAllocator`] — Briggs optimistic coloring with aggressive
//!   coalescing and biased selection (Figure 1(b)); "Briggs + aggressive".
//! * [`IteratedAllocator`] — George–Appel iterated (conservative)
//!   coalescing with freezing (Figure 2(a)).
//! * [`OptimisticAllocator`] — Park–Moon optimistic coalescing: aggressive
//!   coalescing undone on spill (Figure 2(b)); "optimistic" in Figures
//!   9–11.
//! * [`CallCostAllocator`] — a Lueh–Gross-style call-cost-directed
//!   allocator: aggressive coalescing, benefit-driven simplification, and
//!   volatility-aware selection with a preference decision
//!   ("aggressive+volatility" in Figure 11).
//! * [`PriorityAllocator`] — Chow–Hennessy-style priority-based coloring,
//!   the contrasting school discussed in §7 (simplified: spill-everywhere
//!   instead of live-range splitting).

mod briggs;
mod callcost;
mod chaitin;
mod coalesce;
mod iterated;
mod optimistic;
mod priority;

pub use briggs::BriggsAllocator;
pub use callcost::CallCostAllocator;
pub use chaitin::ChaitinAllocator;
pub use coalesce::{
    aggressive_coalesce, briggs_conservative_ok, color_stack, fold_spill_costs, george_ok,
    propagate_merged,
};
pub use iterated::IteratedAllocator;
pub use optimistic::OptimisticAllocator;
pub use priority::PriorityAllocator;
