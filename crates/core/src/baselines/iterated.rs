//! George–Appel iterated register coalescing — Figure 2(a).
//!
//! Simplification removes only non-move-related low-degree nodes; when it
//! blocks, a *conservative* coalesce (Briggs' criterion, George's toward
//! precolored nodes) is attempted; failing that, one low-degree
//! move-related node is *frozen* (its moves abandoned); failing that, a
//! potential spill is removed optimistically. Select uses biased coloring
//! to recover some of the frozen moves.

use super::coalesce::{
    briggs_conservative_ok, color_stack, fold_spill_costs, george_ok, propagate_merged,
};
use crate::node::NodeId;
use crate::pipeline::{
    run_pipeline, run_pipeline_traced, Analyses, ClassCtx, ClassStrategy, RoundOutcome,
};
use crate::{AllocError, AllocOutput, RegisterAllocator};
use pdgc_ir::Function;
use pdgc_obs::{with_span, Phase, Tracer};
use pdgc_target::TargetDesc;

/// The iterated-coalescing allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct IteratedAllocator;

impl ClassStrategy for IteratedAllocator {
    fn allocate_class(
        &self,
        ctx: &mut ClassCtx<'_>,
        _analyses: &Analyses,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> RoundOutcome {
        let round = ctx.round as u32;
        let class = ctx.class;
        let k = ctx.k;
        let mut frozen = vec![false; ctx.nodes.num_nodes()];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut optimistic: Vec<NodeId> = Vec::new();
        let mut costs = ctx.spill_costs.clone();

        // A copy is live while both endpoints are unfrozen, distinct, and
        // still coalescable (non-interfering).
        let live_copies = |ifg: &crate::ifg::InterferenceGraph, frozen: &[bool]| {
            ctx.copies
                .iter()
                .filter_map(|c| {
                    let a = ifg.rep(c.dst);
                    let b = ifg.rep(c.src);
                    (a != b
                        && !frozen[a.index()]
                        && !frozen[b.index()]
                        && !ifg.interferes(a, b)
                        && !ifg.is_removed(a)
                        && !ifg.is_removed(b))
                    .then_some((a, b))
                })
                .collect::<Vec<_>>()
        };

        // Simplify / conservative-coalesce / freeze / potential-spill are
        // interleaved in one worklist loop, so one Coalesce span covers it.
        with_span(tracer, Phase::Coalesce, round, Some(class), || loop {
            let active = ctx.ifg.active_live_ranges();
            if active.is_empty() {
                break;
            }
            let copies = live_copies(&ctx.ifg, &frozen);
            let move_related =
                |n: NodeId| copies.iter().any(|&(a, b)| a == n || b == n);

            // 1. Simplify a non-move-related low-degree node.
            if let Some(&n) = active
                .iter()
                .find(|&&n| ctx.ifg.degree(n) < k && !move_related(n))
            {
                ctx.ifg.remove(n);
                stack.push(n);
                continue;
            }
            // 2. Conservative coalesce.
            let mut merged = false;
            for &(a, b) in &copies {
                let ok = if ctx.ifg.is_precolored(a) {
                    george_ok(&ctx.ifg, a, b, k)
                } else if ctx.ifg.is_precolored(b) {
                    george_ok(&ctx.ifg, b, a, k)
                } else {
                    briggs_conservative_ok(&ctx.ifg, a, b, k)
                };
                if ok {
                    if ctx.ifg.is_precolored(b) {
                        ctx.ifg.merge(b, a);
                    } else {
                        ctx.ifg.merge(a, b);
                    }
                    fold_spill_costs(&ctx.ifg, &mut costs);
                    merged = true;
                    break;
                }
            }
            if merged {
                continue;
            }
            // 3. Freeze a low-degree move-related node.
            if let Some(&n) = active
                .iter()
                .find(|&&n| ctx.ifg.degree(n) < k && move_related(n))
            {
                frozen[n.index()] = true;
                continue;
            }
            // 4. Potential spill (optimistic removal).
            let cand = active
                .iter()
                .copied()
                .filter(|&n| costs[n.index()] != u64::MAX)
                .min_by(|&a, &b| {
                    let lhs = costs[a.index()] as u128 * ctx.ifg.degree(b) as u128;
                    let rhs = costs[b.index()] as u128 * ctx.ifg.degree(a) as u128;
                    lhs.cmp(&rhs).then(a.index().cmp(&b.index()))
                })
                .expect("iterated coalescing: only unspillable nodes remain");
            ctx.ifg.remove(cand);
            stack.push(cand);
            optimistic.push(cand);
        });

        ctx.ifg.restore_all();
        let (mut assignment, spilled_reps) =
            with_span(tracer, Phase::Select, round, Some(class), || {
                color_stack(&ctx.ifg, &ctx.nodes, &stack, target, Some(&ctx.copies), true)
            });
        propagate_merged(&ctx.ifg, &mut assignment);
        let mut spilled = Vec::new();
        for &s in &spilled_reps {
            for i in 0..ctx.nodes.num_nodes() {
                let n = NodeId::new(i);
                if ctx.ifg.rep(n) == s && !ctx.nodes.is_precolored(n) {
                    assignment[n.index()] = None;
                    spilled.push(n);
                }
            }
        }
        RoundOutcome { assignment, spilled }
    }
}

impl RegisterAllocator for IteratedAllocator {
    fn name(&self) -> &'static str {
        "iterated-coalescing"
    }

    fn allocate(&self, func: &Function, target: &TargetDesc) -> Result<AllocOutput, AllocError> {
        run_pipeline(func, target, self)
    }

    fn allocate_traced(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
    ) -> Result<AllocOutput, AllocError> {
        run_pipeline_traced(func, target, self, tracer)
    }

    fn allocate_scratch(
        &self,
        func: &Function,
        target: &TargetDesc,
        tracer: &mut dyn Tracer,
        check: crate::CheckMode,
        scope: crate::CheckScope,
        scratch: &mut crate::PhaseScratch,
    ) -> Result<AllocOutput, AllocError> {
        crate::pipeline::run_pipeline_scratch_checked(
            func, target, self, tracer, check, scope, scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdgc_ir::{BinOp, FunctionBuilder, RegClass};
    use pdgc_target::PressureModel;

    #[test]
    fn coalesces_conservatively_without_spilling() {
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let a = b.copy(p);
        let c = b.copy(a);
        b.ret(Some(c));
        let f = b.finish();
        let target = TargetDesc::ia64_like(PressureModel::High);
        let out = IteratedAllocator.allocate(&f, &target).unwrap();
        assert_eq!(out.stats.spill_instructions, 0);
        // Low pressure: conservative coalescing removes every copy.
        assert_eq!(out.stats.copies_remaining, 0);
    }

    #[test]
    fn freezing_unblocks_move_heavy_pressure() {
        // Many copy-related values under tight pressure: freezing must
        // kick in rather than looping forever.
        let mut b = FunctionBuilder::new("f", vec![RegClass::Int], Some(RegClass::Int));
        let p = b.param(0);
        let vals: Vec<_> = (0..5).map(|i| b.load(p, 16 + 32 * i)).collect();
        let copies: Vec<_> = vals.iter().map(|&v| b.copy(v)).collect();
        let mut acc = copies[0];
        for &v in &copies[1..] {
            acc = b.bin(BinOp::Add, acc, v);
        }
        // Keep the originals alive so copies cannot all coalesce.
        let mut acc2 = vals[0];
        for &v in &vals[1..] {
            acc2 = b.bin(BinOp::Add, acc2, v);
        }
        let r = b.bin(BinOp::Add, acc, acc2);
        b.ret(Some(r));
        let f = b.finish();
        let target = TargetDesc::toy(4);
        let out = IteratedAllocator.allocate(&f, &target).unwrap();
        assert!(out.lowered.verify().is_ok());
    }
}
